//! Property-based tests (proptest) of the core invariants across the stack.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use usf::blas::{BlasConfig, BlasHandle, Matrix};
use usf::framework::exec::ExecMode;
use usf::framework::sync::{BusyBarrier, Mutex, Semaphore};
use usf::framework::Usf;
use usf::nosv::{CoopPolicy, FifoPolicy, Policy, TaskMeta, Topology};
use usf::simsched::{Engine, Machine, Program, SchedModel, SimTime};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The scheduler never runs more tasks than virtual cores, for arbitrary spawn counts
    /// and core counts.
    #[test]
    fn never_more_running_threads_than_cores(cores in 1usize..4, threads in 1usize..12) {
        let usf = Usf::builder().cores(cores).build();
        let p = usf.process("prop");
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let running = Arc::clone(&running);
                let max_seen = Arc::clone(&max_seen);
                p.spawn(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    // Busy a little without any scheduling point, then leave.
                    let mut acc = 0u64;
                    for i in 0..2_000u64 { acc = acc.wrapping_add(i); }
                    std::hint::black_box(acc);
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles { h.join().unwrap(); }
        prop_assert!(max_seen.load(Ordering::SeqCst) <= cores,
            "saw {} concurrent threads on {} cores", max_seen.load(Ordering::SeqCst), cores);
        usf.shutdown();
    }

    /// Both ready-queue policies hand out every enqueued task exactly once, regardless of
    /// the enqueue order and core the pick happens on.
    #[test]
    fn policies_serve_every_task_exactly_once(
        tasks in proptest::collection::vec((0u32..4, proptest::option::of(0usize..4)), 1..40),
        use_coop in proptest::bool::ANY,
    ) {
        let topo = Topology::new(4, 2);
        let mut policy: Box<dyn Policy> = if use_coop {
            Box::new(CoopPolicy::new(topo.clone(), Duration::from_millis(5)))
        } else {
            Box::new(FifoPolicy::new())
        };
        let now = Instant::now();
        for (id, (proc_, pref)) in tasks.iter().enumerate() {
            policy.enqueue(&topo, TaskMeta { id: id as u64, process: *proc_, preferred_core: *pref }, now);
        }
        let mut picked = Vec::new();
        let mut core = 0;
        while let Some(meta) = policy.pick(&topo, core, now) {
            picked.push(meta.id);
            core = (core + 1) % topo.num_cores();
        }
        picked.sort_unstable();
        let expected: Vec<u64> = (0..tasks.len() as u64).collect();
        prop_assert_eq!(picked, expected);
        prop_assert!(!policy.has_ready());
        prop_assert_eq!(policy.ready_count(), 0);
    }

    /// The cooperative mutex never loses increments for arbitrary thread/iteration counts.
    #[test]
    fn mutex_counter_is_exact(threads in 1usize..5, iters in 1usize..300) {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..threads).map(|_| {
            let m = Arc::clone(&m);
            std::thread::spawn(move || { for _ in 0..iters { *m.lock() += 1; } })
        }).collect();
        for h in handles { h.join().unwrap(); }
        prop_assert_eq!(*m.lock(), threads * iters);
    }

    /// A semaphore with `p` permits never admits more than `p` holders.
    #[test]
    fn semaphore_bounds_concurrency(permits in 1usize..4, threads in 1usize..8) {
        let sem = Arc::new(Semaphore::new(permits));
        let inside = Arc::new(AtomicUsize::new(0));
        let max_inside = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..threads).map(|_| {
            let sem = Arc::clone(&sem);
            let inside = Arc::clone(&inside);
            let max_inside = Arc::clone(&max_inside);
            std::thread::spawn(move || {
                sem.with_permit(|| {
                    let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                    max_inside.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    inside.fetch_sub(1, Ordering::SeqCst);
                });
            })
        }).collect();
        for h in handles { h.join().unwrap(); }
        prop_assert!(max_inside.load(Ordering::SeqCst) <= permits);
    }

    /// The busy barrier produces exactly one leader per round for any participant count and
    /// round count.
    #[test]
    fn busy_barrier_one_leader_per_round(participants in 1usize..4, rounds in 1usize..20) {
        let bar = Arc::new(BusyBarrier::new(participants, Some(32)));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..participants).map(|_| {
            let bar = Arc::clone(&bar);
            let leaders = Arc::clone(&leaders);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    if bar.wait().is_leader() { leaders.fetch_add(1, Ordering::SeqCst); }
                }
            })
        }).collect();
        for h in handles { h.join().unwrap(); }
        prop_assert_eq!(leaders.load(Ordering::SeqCst), rounds);
    }

    /// The parallel BLAS gemm matches the naive reference for arbitrary shapes and thread
    /// counts.
    #[test]
    fn parallel_gemm_matches_reference(m in 1usize..24, k in 1usize..24, n in 1usize..24, threads in 1usize..5) {
        let a = Matrix::pseudo_random(m, k, 3);
        let b = Matrix::pseudo_random(k, n, 4);
        let handle = BlasHandle::new(BlasConfig::omp(threads, ExecMode::Os));
        let c = handle.gemm(&a, &b);
        let reference = Matrix::multiply_reference(&a, &b);
        prop_assert!(c.max_abs_diff(&reference) < 1e-10);
    }

    /// Simulated makespan of independent equal compute phases is never better than the ideal
    /// (work / cores) and never worse than running everything serially, for both schedulers.
    #[test]
    fn simulated_makespan_is_bounded(threads in 1usize..20, cores in 1usize..8, coop in proptest::bool::ANY) {
        let work_ms = 5u64;
        let model = if coop { SchedModel::coop_default() } else { SchedModel::Fair };
        let mut machine = Machine::small(cores);
        // Remove overhead noise from the bound check.
        machine.ctx_switch_cost = SimTime::ZERO;
        machine.migration_cost = SimTime::ZERO;
        machine.cross_socket_penalty = SimTime::ZERO;
        let mut engine = Engine::new(machine, &model);
        let p = engine.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(work_ms)).build();
        for _ in 0..threads {
            engine.add_thread(p, prog.clone());
        }
        let report = engine.run();
        prop_assert!(!report.deadlocked);
        let total_work = SimTime::from_millis(work_ms * threads as u64);
        let ideal = SimTime::from_nanos(total_work.as_nanos() / cores as u64);
        prop_assert!(report.makespan.as_nanos() >= ideal.as_nanos());
        prop_assert!(report.makespan.as_nanos() <= total_work.as_nanos() + 1_000_000);
    }
}
