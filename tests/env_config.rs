//! Environment-variable configuration (`USF_ENABLE` and friends, §4.3.3). Kept in its own
//! integration-test binary because mutating the process environment is only safe while no
//! other test threads are running; the tests run sequentially within this file.

use std::time::Duration;
use usf::framework::{PolicyKind, UsfConfig};

fn clear_env() {
    for var in [
        "USF_ENABLE",
        "USF_CORES",
        "USF_NUMA_NODES",
        "USF_POLICY",
        "USF_QUANTUM_MS",
        "USF_WAIT_SLICE_MS",
        "USF_CACHE",
        "USF_INSTANCE",
    ] {
        std::env::remove_var(var);
    }
}

#[test]
fn env_configuration_round_trip() {
    // Disabled when USF_ENABLE is unset.
    clear_env();
    assert!(UsfConfig::from_env().unwrap().is_none());

    // Disabled when explicitly off.
    std::env::set_var("USF_ENABLE", "0");
    assert!(UsfConfig::from_env().unwrap().is_none());

    // Fully configured.
    std::env::set_var("USF_ENABLE", "1");
    std::env::set_var("USF_CORES", "3");
    std::env::set_var("USF_NUMA_NODES", "1");
    std::env::set_var("USF_POLICY", "fifo");
    std::env::set_var("USF_QUANTUM_MS", "7");
    std::env::set_var("USF_WAIT_SLICE_MS", "2");
    std::env::set_var("USF_CACHE", "9");
    std::env::set_var("USF_INSTANCE", "shared-seg");
    let cfg = UsfConfig::from_env().unwrap().expect("enabled");
    assert_eq!(cfg.cores, 3);
    assert_eq!(cfg.numa_nodes, 1);
    assert!(matches!(cfg.policy, PolicyKind::Fifo));
    assert_eq!(cfg.quantum, Duration::from_millis(7));
    assert_eq!(cfg.wait_slice, Duration::from_millis(2));
    assert_eq!(cfg.thread_cache_capacity, 9);
    assert_eq!(cfg.instance_name.as_deref(), Some("shared-seg"));

    // Invalid values are reported, not silently ignored.
    std::env::set_var("USF_CORES", "not-a-number");
    assert!(UsfConfig::from_env().is_err());
    std::env::set_var("USF_CORES", "4");
    std::env::set_var("USF_POLICY", "strange");
    assert!(UsfConfig::from_env().is_err());

    // An instance built from the environment works end to end.
    std::env::set_var("USF_POLICY", "coop");
    let usf = usf::framework::Usf::from_env().expect("USF_ENABLE is set");
    let p = usf.process("env-app");
    let out = p.spawn(|| 21 * 2).join().unwrap();
    assert_eq!(out, 42);
    assert_eq!(usf.topology().num_cores(), 4);
    usf.shutdown();
    clear_env();
}
