//! Property tests driving the schedule fuzzer (`usf_nosv::fuzz`) over the real scheduler:
//! seeded random op sequences, forced shutdown interleavings, the injected lost-submit
//! canary, and counterexample shrinking. These run without any cargo feature — the fuzzer
//! checks its invariants directly against scheduler state; the `sched-trace` feature only
//! adds the record/replay cross-check (tests/sched_trace_replay.rs).

use proptest::prelude::*;
use usf::nosv::fuzz::{execute, generate, shrink, FuzzConfig, FuzzOp, Mutation, Violation};

/// Keep only ops that cannot legitimately cancel a pending wake-up, so an injected
/// dropped submit is guaranteed to surface as a lost task.
fn without_healing_ops(ops: Vec<FuzzOp>) -> Vec<FuzzOp> {
    ops.into_iter()
        .filter(|op| {
            matches!(
                op,
                FuzzOp::Submit { .. }
                    | FuzzOp::SubmitLocked { .. }
                    | FuzzOp::PinNode { .. }
                    | FuzzOp::Unpin { .. }
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random seeded schedules keep every invariant (no double grant, gauges consistent,
    /// domains respected, no ghost grants, nothing lost) across the config matrix.
    #[test]
    fn random_schedules_hold_invariants(seed in 0u64..100_000, which in 0usize..6) {
        let cfg = match which {
            0 => FuzzConfig::base(),
            1 => FuzzConfig::valve(),
            2 => FuzzConfig::shutdown_biased(),
            3 => FuzzConfig::domain_heavy(),
            4 => FuzzConfig::split_lock(),
            _ => FuzzConfig::split_valve(),
        };
        let ops = generate(&cfg, seed);
        let stats = execute(&cfg, &ops, None)
            .unwrap_or_else(|f| panic!("seed {seed} cfg {which}: {f}"));
        prop_assert_eq!(stats.ops, ops.len());
    }

    /// `Scheduler::shutdown` forced at an arbitrary cut point, with submits and
    /// `set_process_domain` calls continuing against the shut-down scheduler, never
    /// violates an invariant or strands a waiter.
    #[test]
    fn shutdown_interleavings_hold_invariants(seed in 0u64..100_000, cut in 0usize..65) {
        let cfg = FuzzConfig::shutdown_biased();
        let mut ops = generate(&cfg, seed);
        let cut = cut.min(ops.len());
        ops.insert(cut, FuzzOp::Shutdown);
        execute(&cfg, &ops, None)
            .unwrap_or_else(|f| panic!("seed {seed} shutdown at {cut}: {f}"));
    }

    /// The lost-task oracle has teeth: dropping any early submit from a heal-free
    /// sequence is always detected as a LostTask.
    #[test]
    fn canary_lost_submit_is_caught(seed in 0u64..100_000, nth in 0usize..4) {
        let cfg = FuzzConfig::base();
        let ops = without_healing_ops(generate(&cfg, seed));
        // With no healing ops, the effective submits are exactly the first submit of each
        // distinct slot (later ones are redundant while the slot is pending or running).
        let mut seen = std::collections::HashSet::new();
        let effective = ops
            .iter()
            .filter_map(|o| match o {
                FuzzOp::Submit { slot } | FuzzOp::SubmitLocked { slot } => Some(*slot),
                _ => None,
            })
            .filter(|s| seen.insert(*s))
            .count();
        // nth beyond the effective submits means nothing is dropped; only assert when
        // the mutation actually fires.
        if nth < effective {
            let failure = execute(&cfg, &ops, Some(Mutation::DropSubmit { nth }))
                .expect_err("a dropped submit must be detected");
            prop_assert!(
                matches!(failure.violation, Violation::LostTask { .. }),
                "seed {}: expected LostTask, got {}", seed, failure
            );
        }
    }

    /// Shrinking reduces any canary counterexample to the minimal one-op reproduction.
    #[test]
    fn counterexamples_shrink_to_one_op(seed in 0u64..10_000) {
        let cfg = FuzzConfig::base();
        let ops = without_healing_ops(generate(&cfg, seed));
        let mutation = Some(Mutation::DropSubmit { nth: 0 });
        if execute(&cfg, &ops, mutation).is_err() {
            let minimal = shrink(&cfg, &ops, mutation);
            prop_assert_eq!(minimal.len(), 1, "seed {}: minimal = {:?}", seed, &minimal);
            prop_assert!(execute(&cfg, &minimal, mutation).is_err());
        }
    }
}
