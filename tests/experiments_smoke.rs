//! Integration smoke tests of the experiment harness: every paper experiment (Figure 3,
//! Table 2, Figure 4, Figure 5, and the repo's own scenario-engine figures 6/7) can be
//! regenerated at reduced scale, and the headline qualitative results hold.

use usf::simsched::{Machine, SimTime};
use usf::workloads::md::{run_md_scenario, MdConfig, MdScenario};
use usf::workloads::microservices::{run_microservices, MicroservicesConfig, PartitionScheme};
use usf::workloads::sim_cholesky::{
    run_sim_cholesky, CholeskyScheduler, Composition, Parallelism, SimCholeskyConfig,
};
use usf::workloads::sim_matmul::{run_sim_matmul, MatmulVariant, SimMatmulConfig};

/// Figure 3 (one oversubscribed cell): SCHED_COOP and the yield-patched baseline beat the
/// unmodified busy-wait stack, and nothing deadlocks except where the paper says it may.
#[test]
fn fig3_cell_shape_holds() {
    let run = |variant| {
        // A reduced cell (8 cores, 16 outer workers × 4 inner threads = 64 busy threads)
        // keeps the smoke test fast; the full 56-core sweep is the fig3_matmul binary.
        let mut cfg = SimMatmulConfig::new(2048, 512, 4, variant);
        cfg.machine = Machine::small(8);
        cfg.max_outer_workers = 16;
        run_sim_matmul(&cfg)
    };
    let baseline = run(MatmulVariant::Baseline);
    let coop = run(MatmulVariant::SchedCoop);
    let manual = run(MatmulVariant::Manual);
    let original = run(MatmulVariant::Original);
    eprintln!(
        "fig3 cell MFLOP/s: baseline {:.0}, manual {:.0}, sched_coop {:.0}, original {:.0}",
        baseline.mflops, manual.mflops, coop.mflops, original.mflops
    );
    assert!(!baseline.deadlocked && !coop.deadlocked && !manual.deadlocked);
    assert!(baseline.mflops > 0.0);
    assert!(
        coop.mflops >= original.mflops,
        "SCHED_COOP ({:.0}) must not lose to the unmodified busy-wait stack ({:.0})",
        coop.mflops,
        original.mflops
    );
    assert!(
        manual.mflops >= baseline.mflops * 0.9,
        "manual nOS-V integration ({:.0}) should be comparable or better than the baseline ({:.0})",
        manual.mflops,
        baseline.mflops
    );
}

/// Table 2 (one column): SCHED_COOP speedups grow with oversubscription and the pth
/// composition gains the most.
#[test]
fn table2_shape_holds() {
    let cell = |row: usize, par: Parallelism, sched: CholeskyScheduler| {
        let mut cfg = SimCholeskyConfig::new(Composition::table2_rows()[row].clone(), par, sched);
        cfg.machine = Machine::small(8);
        cfg.task_size = 256;
        cfg.tasks_per_worker = 2;
        run_sim_cholesky(&cfg).mflops
    };
    // Row 1 = tbb/llvm/opb (persistent team), row 4 = gnu/pth/blis (thread churn). The
    // "heavier" point uses the Medium (14×14) column so the reduced smoke test stays fast;
    // the full High (28×28) column is exercised by the table2_cholesky binary and the
    // usf-workloads unit tests.
    let omp_high_base = cell(1, Parallelism::Medium, CholeskyScheduler::Baseline);
    let omp_high_coop = cell(1, Parallelism::Medium, CholeskyScheduler::SchedCoop);
    let pth_high_base = cell(4, Parallelism::Medium, CholeskyScheduler::Baseline);
    let pth_high_coop = cell(4, Parallelism::Medium, CholeskyScheduler::SchedCoop);
    let pth_mild_base = cell(4, Parallelism::Mild, CholeskyScheduler::Baseline);
    let pth_mild_coop = cell(4, Parallelism::Mild, CholeskyScheduler::SchedCoop);
    let omp_high_speedup = omp_high_coop / omp_high_base;
    let pth_high_speedup = pth_high_coop / pth_high_base;
    let pth_mild_speedup = pth_mild_coop / pth_mild_base;
    eprintln!(
        "table2: omp High {omp_high_base:.0}->{omp_high_coop:.0} ({omp_high_speedup:.2}x), \
         pth High {pth_high_base:.0}->{pth_high_coop:.0} ({pth_high_speedup:.2}x), \
         pth Mild {pth_mild_base:.0}->{pth_mild_coop:.0} ({pth_mild_speedup:.2}x)"
    );
    assert!(
        pth_high_speedup > 1.0,
        "SCHED_COOP must win for pth at high oversubscription ({pth_high_speedup:.2})"
    );
    assert!(
        pth_high_speedup > omp_high_speedup,
        "pth must gain more than the persistent team ({pth_high_speedup:.2} vs {omp_high_speedup:.2})"
    );
    // The paper's High-column speedups are far larger than the Mild ones; allow a small
    // tolerance because the reduced smoke configuration compresses the gap.
    assert!(
        pth_high_speedup > pth_mild_speedup * 0.9,
        "speedups must not shrink with oversubscription ({pth_high_speedup:.2} vs mild {pth_mild_speedup:.2})"
    );
}

/// Figure 4 (one rate): under heavy load SCHED_COOP keeps latency at least as low as the
/// rigid equal partitioning and the unpartitioned fair baseline.
#[test]
fn fig4_shape_holds() {
    let run = |scheme| {
        let mut cfg = MicroservicesConfig::new(2.0, scheme);
        cfg.requests = 8;
        cfg.batches = 2;
        cfg.time_scale = 0.02;
        cfg.machine = Machine::small_numa(32, 2);
        cfg.yield_slice = SimTime::from_micros(500);
        run_microservices(&cfg)
    };
    let coop = run(PartitionScheme::SchedCoop);
    let bl_eq = run(PartitionScheme::BlEq);
    let bl_none = run(PartitionScheme::BlNone);
    assert!(!coop.report.deadlocked && !bl_eq.report.deadlocked && !bl_none.report.deadlocked);
    assert!(
        coop.mean_latency.as_secs_f64() <= bl_eq.mean_latency.as_secs_f64() * 1.05,
        "SCHED_COOP ({:.2}s) must not lose to equal partitioning ({:.2}s)",
        coop.mean_latency.as_secs_f64(),
        bl_eq.mean_latency.as_secs_f64()
    );
    assert!(
        coop.mean_latency.as_secs_f64() <= bl_none.mean_latency.as_secs_f64() * 1.10,
        "SCHED_COOP ({:.2}s) must be competitive with bl-none ({:.2}s)",
        coop.mean_latency.as_secs_f64(),
        bl_none.mean_latency.as_secs_f64()
    );
    assert_eq!(coop.request_timeline.len(), 8);
}

/// Figure 5 (reduced): concurrent ensembles beat exclusive execution in aggregate and
/// SCHED_COOP achieves the highest bandwidth utilisation of the concurrent scenarios.
#[test]
fn fig5_shape_holds() {
    let run = |scenario| {
        let mut cfg = MdConfig::new(scenario);
        cfg.machine = Machine::small_numa(16, 2);
        cfg.machine.memory_bw_gbps = 60.0;
        cfg.ranks_per_ensemble = 8;
        cfg.threads_per_rank = 2;
        cfg.steps = 5;
        cfg.atoms = 4_000;
        cfg.regions = 4;
        cfg.per_atom_cost = SimTime::from_micros(5);
        cfg.bw_per_thread_gbps = 5.0;
        cfg.init_time = SimTime::from_millis(20);
        cfg.yield_slice = SimTime::from_micros(200);
        run_md_scenario(&cfg)
    };
    let exclusive = run(MdScenario::Exclusive);
    let colocation = run(MdScenario::ColocationNode);
    let coop = run(MdScenario::SchedCoopNode);
    eprintln!(
        "fig5: exclusive {:.0} Katom/s ({:.1} GB/s), colocation {:.0} ({:.1}), sched_coop {:.0} ({:.1})",
        exclusive.katom_steps_per_sec,
        exclusive.average_bandwidth_gbps,
        colocation.katom_steps_per_sec,
        colocation.average_bandwidth_gbps,
        coop.katom_steps_per_sec,
        coop.average_bandwidth_gbps
    );
    assert!(!coop.report.deadlocked);
    assert!(
        coop.katom_steps_per_sec > exclusive.katom_steps_per_sec,
        "SCHED_COOP co-execution ({:.0}) must beat exclusive ({:.0})",
        coop.katom_steps_per_sec,
        exclusive.katom_steps_per_sec
    );
    assert!(
        coop.katom_steps_per_sec >= colocation.katom_steps_per_sec * 0.95,
        "SCHED_COOP ({:.0}) must not lose to static co-location ({:.0})",
        coop.katom_steps_per_sec,
        colocation.katom_steps_per_sec
    );
    assert!(
        coop.average_bandwidth_gbps >= exclusive.average_bandwidth_gbps * 0.95,
        "co-execution must not reduce bandwidth utilisation ({:.1} vs {:.1})",
        coop.average_bandwidth_gbps,
        exclusive.average_bandwidth_gbps
    );
}

/// Figure 6 (scenario engine): the canned oversubscription ramp runs unmodified on all
/// three executors, and on the deterministic simulated stack SCHED_COOP's slowdown does
/// not exceed the preemptive baseline's at >= 2x oversubscription.
#[test]
fn fig6_shape_holds() {
    use std::time::Duration;
    use usf::scenarios::spec::ProblemSize;
    use usf::scenarios::{library, Executor, OsExecutor, SimExecutor, UsfExecutor};
    use usf::simsched::SchedModel;

    // One spec, three stacks: tiny real runs just demonstrate completion.
    let tiny = library::oversub_ramp(2, 2, ProblemSize::Tiny);
    for report in [
        OsExecutor.run_spec(&tiny),
        UsfExecutor::new().run_spec(&tiny),
    ] {
        assert_eq!(report.processes.len(), 2, "{}", report.executor);
        for p in &report.processes {
            assert_eq!(p.unit_latencies_s.len(), 6, "{}", report.executor);
            assert!(p.makespan > Duration::ZERO);
        }
    }

    // Deterministic shape on the simulator: 16 cores, units well above the quantum.
    let size = ProblemSize::Custom {
        unit_work_us: 10_000 * 16,
    };
    let mut slowdowns = Vec::new();
    for model in [SchedModel::Fair, SchedModel::coop_default()] {
        let machine = usf::simsched::Machine::small_numa(16, 2);
        let exec = SimExecutor::new(machine, model);
        let solo = exec.run_spec(&library::oversub_ramp(16, 1, size));
        let solo_makespan = solo.processes[0].makespan;
        let mut corun = exec.run_spec(&library::oversub_ramp(16, 2, size));
        corun.apply_solo_baseline(&[Some(solo_makespan), Some(solo_makespan)]);
        slowdowns.push(corun.mean_slowdown().expect("baseline applied"));
    }
    let (os, coop) = (slowdowns[0], slowdowns[1]);
    eprintln!("fig6: mean slowdown at 2x — os {os:.3}, sched_coop {coop:.3}");
    assert!(
        os > 1.0,
        "co-running must cost something under the baseline ({os:.3})"
    );
    assert!(
        coop <= os * 1.001,
        "SCHED_COOP slowdown ({coop:.3}) must not exceed the OS baseline ({os:.3})"
    );
}

/// Figure 7 (scheduler-model matrix): one canned ≥2×-oversubscribed spec swept over
/// Fair/Coop/bl-eq/bl-opt — SCHED_COOP's mean slowdown must not exceed the equal static
/// partition's, because an idle partition core cannot be donated to the other process.
#[test]
fn fig7_shape_holds() {
    use std::time::Duration;
    use usf::scenarios::spec::ProblemSize;
    use usf::scenarios::{library, Executor, ModelSel, SimExecutor};
    use usf::simsched::SchedModel;

    let machine = usf::simsched::Machine::small_numa(16, 2);
    let size = ProblemSize::Custom {
        unit_work_us: 10_000 * 16,
    };
    let spec = library::oversub_ramp(16, 2, size).models(ModelSel::ALL.to_vec());
    assert!(spec.oversubscription() >= 2.0);

    // Solo baseline under fair scheduling on the whole node (the paper's denominator).
    let solo = SimExecutor::new(machine.clone(), SchedModel::Fair).run_spec(&spec.solo_of(0));
    let solo_makespan: Vec<Option<Duration>> =
        vec![solo.processes.first().map(|p| p.makespan); spec.procs.len()];

    let mut reports = SimExecutor::sweep_models(&machine, &spec);
    for r in &mut reports {
        r.apply_solo_baseline(&solo_makespan);
    }
    let mean = |sel: ModelSel| {
        reports
            .iter()
            .find(|r| r.model == Some(sel))
            .and_then(|r| r.mean_slowdown())
            .expect("baseline applied")
    };
    let (coop, bleq, blopt, fair) = (
        mean(ModelSel::Coop),
        mean(ModelSel::BlEq),
        mean(ModelSel::BlOpt),
        mean(ModelSel::Fair),
    );
    eprintln!("fig7: mean slowdown at 2x — fair {fair:.3}, coop {coop:.3}, bl-eq {bleq:.3}, bl-opt {blopt:.3}");
    assert!(
        bleq > 1.0 && blopt > 1.0,
        "partitioned co-runs must cost something ({bleq:.3}/{blopt:.3})"
    );
    assert!(
        coop <= bleq * 1.001,
        "SCHED_COOP ({coop:.3}) must not lose to equal partitioning ({bleq:.3})"
    );
    // The matrix reports measured per-unit latencies everywhere (non-degenerate bundles).
    for r in &reports {
        for p in &r.processes {
            let s = p.unit_summary();
            assert!(s.count > 0 && s.p99 > 0.0, "{}: {s:?}", r.executor);
        }
    }
}

/// Figure 8 (socket placement, §5.6): on the two-socket machine with the NUMA-locality
/// compute model on, node-pinning the HPC pair must record exactly zero *measured*
/// cross-socket migrations and beat the anywhere placement on p99 unit latency under
/// SCHED_COOP, while the anywhere variant demonstrably pays cross-socket traffic.
#[test]
fn fig8_shape_holds() {
    use usf::scenarios::spec::ProblemSize;
    use usf::scenarios::{library, Executor, ModelSel, Placement, SimExecutor};

    let mut machine = usf::simsched::Machine::small_numa(16, 2);
    machine.remote_numa_penalty = 1.3;
    let size = ProblemSize::Custom {
        unit_work_us: 10_000 * 16,
    };
    let base = library::hpc_pair(16, size);
    let p99 = |r: &usf::scenarios::ScenarioReport| {
        r.processes
            .iter()
            .map(|p| p.unit_summary().p99)
            .fold(0.0, f64::max)
    };

    let anywhere = SimExecutor::for_model(machine.clone(), ModelSel::Coop, &base).run_spec(&base);
    let pinned_spec = base
        .clone()
        .with_placements(&[Placement::Node(0), Placement::Node(1)]);
    let pinned = SimExecutor::for_model(machine.clone(), ModelSel::Coop, &pinned_spec)
        .run_spec(&pinned_spec);

    let (any_p99, pin_p99) = (p99(&anywhere), p99(&pinned));
    eprintln!(
        "fig8: coop p99 — anywhere {any_p99:.4}s ({} cross-socket), pinned {pin_p99:.4}s ({} cross-socket)",
        anywhere.total_cross_socket_migrations().unwrap(),
        pinned.total_cross_socket_migrations().unwrap(),
    );
    assert_eq!(
        pinned.total_cross_socket_migrations(),
        Some(0),
        "node-pinned co-runs must never migrate across sockets (measured counter)"
    );
    assert!(
        anywhere.total_cross_socket_migrations().unwrap() > 0,
        "the anywhere placement must actually exercise cross-socket migration"
    );
    assert!(
        pin_p99 <= any_p99 * 1.001,
        "pinned-Coop p99 ({pin_p99:.4}) must not exceed anywhere-Coop p99 ({any_p99:.4})"
    );
}
