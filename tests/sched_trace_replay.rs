//! Record/replay equivalence gate (requires `--features sched-trace`): schedules recorded
//! from the *real* scheduler must re-execute deterministically through the *simulator's*
//! instantiation of the shared SCHED_COOP core with an identical pick sequence. Any drift
//! between the runtime policy and the simulated policy fails these tests — this is the CI
//! tripwire on top of the sampled equivalence of tests/readyq_equivalence.rs.
#![cfg(feature = "sched-trace")]

use proptest::prelude::*;
use std::time::Duration;
use usf::nosv::fuzz::{execute_traced, generate, FuzzConfig};
use usf::nosv::scheduler::Scheduler;
use usf::nosv::{NosvConfig, PickTier, TraceEvent};
use usf::simsched::replay::assert_replays_clean;

/// A scripted oversubscribed run (2 cores, 6 tasks, FIFO drain) records pops and grants,
/// and the recorded schedule replays with zero drift.
#[test]
fn scripted_run_replays_without_drift() {
    let mut sched = Scheduler::new(NosvConfig::with_cores(2));
    let rec = sched.install_tracer();
    let p = sched.register_process("p");
    let tasks: Vec<_> = (0..6)
        .map(|_| sched.create_task(p, None).unwrap())
        .collect();
    for t in &tasks {
        sched.submit(t);
    }
    for t in &tasks {
        sched.detach(t);
    }
    assert_eq!(sched.busy_cores(), 0);
    let report = assert_replays_clean(rec.meta(), &rec.snapshot());
    // 2 immediate grants onto the idle cores at submit, a 3rd at the first detach's
    // intake drain (the freed core is idle and the policy still empty), then the 3
    // enqueued tasks are popped as running ones detach: the replay must be non-vacuous.
    assert_eq!(report.pops, 3, "expected 3 policy pops: {report:?}");
    assert_eq!(report.grants, 6, "expected 6 grants: {report:?}");
    assert_eq!(report.mismatched_grants, 0);
}

/// Satellite: under starvation (1 core, 1 ns quantum so the aging valve is always armed)
/// the recorded schedule contains aged grants, and the simulated replay serves them from
/// the aging tier at exactly the same logical steps.
#[test]
fn aged_pops_replay_at_the_same_steps() {
    let mut sched = Scheduler::new(NosvConfig::with_cores(1).quantum(Duration::from_nanos(1)));
    let rec = sched.install_tracer();
    let p = sched.register_process("p");
    let tasks: Vec<_> = (0..4)
        .map(|_| sched.create_task(p, None).unwrap())
        .collect();
    for t in &tasks {
        sched.submit(t); // first one runs, the rest queue behind the single core
    }
    // Let the queued entries age well past the 1 ns valve window.
    std::thread::sleep(Duration::from_micros(50));
    for t in &tasks {
        sched.detach(t);
    }
    let entries = rec.snapshot();
    let recorded_aged: Vec<u64> = entries
        .iter()
        .filter_map(|e| match &e.event {
            TraceEvent::Pop {
                tier: Some(PickTier::Aged),
                ..
            } => Some(e.step),
            _ => None,
        })
        .collect();
    assert!(
        !recorded_aged.is_empty(),
        "a starving 1 ns-quantum run must record aged pops"
    );
    let report = assert_replays_clean(rec.meta(), &entries);
    assert_eq!(
        report.aged_steps, recorded_aged,
        "aged grants must replay at the same logical steps as recorded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The drift gate proper: arbitrary seeded fuzz schedules, recorded from the real
    /// scheduler across the whole config matrix, replay through the simulator's policy
    /// with an identical pick sequence.
    #[test]
    fn recorded_fuzz_runs_replay_without_drift(seed in 0u64..100_000, which in 0usize..6) {
        let cfg = match which {
            0 => FuzzConfig::base(),
            1 => FuzzConfig::valve(),
            2 => FuzzConfig::shutdown_biased(),
            3 => FuzzConfig::domain_heavy(),
            // The split-lock scheduler records `sched_coop_split` traces, which replay
            // through the simulator's per-shard path (local tiers, cross-shard steal,
            // cross-shard aging valve) — the drift gate for the per-node dispatch locks.
            4 => FuzzConfig::split_lock(),
            _ => FuzzConfig::split_valve(),
        };
        let ops = generate(&cfg, seed);
        let (result, meta, entries) = execute_traced(&cfg, &ops);
        result.unwrap_or_else(|f| panic!("seed {seed} cfg {which}: {f}"));
        let report = assert_replays_clean(&meta, &entries);
        prop_assert_eq!(report.mismatched_grants, 0);
    }
}
