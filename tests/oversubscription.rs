//! Integration tests: the core SCHED_COOP behaviours under oversubscription, spanning
//! `usf-nosv`, `usf-core` and `usf-runtimes`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use usf::prelude::*;
use usf_core::sync::{Barrier, Condvar, Mutex, Semaphore};

/// Many more threads than virtual cores, across two process domains: everything completes,
/// no involuntary preemption is ever recorded, and both processes' threads got served.
#[test]
fn two_process_domains_oversubscribed_complete() {
    let usf = Usf::builder()
        .cores(2)
        .quantum(Duration::from_millis(2))
        .build();
    let a = usf.process("proc-a");
    let b = usf.process("proc-b");
    let counter = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for i in 0..12 {
        let domain = if i % 2 == 0 { &a } else { &b };
        let counter = Arc::clone(&counter);
        handles.push(domain.spawn(move || {
            // A little compute, a yield, a little sleep: several scheduling points.
            let mut acc = 0u64;
            for k in 0..5_000 {
                acc = acc.wrapping_add(k);
            }
            usf_core::timing::yield_now();
            usf_core::timing::sleep(Duration::from_millis(1));
            counter.fetch_add(1, Ordering::SeqCst);
            acc
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 12);
    let m = usf.metrics();
    assert_eq!(m.attaches, 12);
    assert_eq!(m.detaches, 12);
    assert!(m.grants >= 12);
    // The sleeps guarantee real scheduling points happened.
    assert!(m.waitfors >= 12);
    usf.shutdown();
}

/// The full set of blocking primitives used together on one virtual core: if any of them
/// failed to release the core while blocked, this test would deadlock.
#[test]
fn primitives_release_cores_on_single_core_instance() {
    let usf = Usf::builder().cores(1).build();
    let p = usf.process("primitives");
    let state = Arc::new((Mutex::new(0u32), Condvar::new()));
    let sem = Arc::new(Semaphore::new(0));
    let barrier = Arc::new(Barrier::new(3));

    let mut handles = Vec::new();
    for _ in 0..2 {
        let state = Arc::clone(&state);
        let sem = Arc::clone(&sem);
        let barrier = Arc::clone(&barrier);
        handles.push(p.spawn(move || {
            // Wait for the go signal through the condvar.
            {
                let (m, cv) = &*state;
                let _g = cv.wait_while(m.lock(), |v| *v == 0);
            }
            sem.acquire();
            barrier.wait();
        }));
    }
    let signaller = {
        let state = Arc::clone(&state);
        let sem = Arc::clone(&sem);
        let barrier = Arc::clone(&barrier);
        p.spawn(move || {
            usf_core::timing::sleep(Duration::from_millis(5));
            {
                let (m, cv) = &*state;
                *m.lock() = 1;
                cv.notify_all();
            }
            sem.release_n(2);
            barrier.wait();
        })
    };
    for h in handles {
        h.join().unwrap();
    }
    signaller.join().unwrap();
    usf.shutdown();
}

/// SCHED_COOP threads never preempt each other: a long-running compute thread on a single
/// core delays later-submitted threads until it blocks (run-to-block semantics), unlike the
/// time-slicing OS baseline.
#[test]
fn run_to_block_ordering_on_one_core() {
    let usf = Usf::builder().cores(1).build();
    let p = usf.process("order");
    let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));

    let o1 = Arc::clone(&order);
    let first = p.spawn(move || {
        // Runs uninterrupted: no USF scheduling point inside.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_mul(31).wrapping_add(i);
        }
        std::hint::black_box(x);
        o1.lock().push("first-done");
    });
    // Give the first thread time to be granted the single core.
    std::thread::sleep(Duration::from_millis(10));
    let o2 = Arc::clone(&order);
    let second = p.spawn(move || {
        o2.lock().push("second-done");
    });
    first.join().unwrap();
    second.join().unwrap();
    let order = order.lock().clone();
    assert_eq!(
        order,
        vec!["first-done", "second-done"],
        "the running thread must not be preempted by the second"
    );
    usf.shutdown();
}

/// Runtime composition end-to-end: an outer task runtime plus inner fork-join teams on a
/// 2-core USF instance, with more live threads than cores throughout.
#[test]
fn nested_runtime_composition_under_sched_coop() {
    let usf = Usf::builder().cores(2).build();
    let p = usf.process("nested");
    let exec = ExecMode::Usf(p.clone());
    let rt = TaskRuntime::with_workers(3, exec.clone());
    let total = Arc::new(AtomicUsize::new(0));
    for _ in 0..6 {
        let total = Arc::clone(&total);
        let exec = exec.clone();
        rt.submit_independent(move || {
            let team = Team::with_threads(3, exec.clone());
            team.parallel(3, |_ctx| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
    }
    rt.taskwait();
    assert_eq!(total.load(Ordering::SeqCst), 18);
    drop(rt);
    usf.shutdown();
}

/// The thread cache masks joins and reuses workers across spawn waves (§4.3.1) — the effect
/// behind the Table 2 "pth" speedups.
#[test]
fn thread_cache_reuse_across_transient_pool_waves() {
    let usf = Usf::builder().cores(2).cache_capacity(32).build();
    let p = usf.process("pth");
    let pool = TransientPool::new(ExecMode::Usf(p));
    for wave in 0..4 {
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.run(4, move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4, "wave {wave}");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = usf.thread_cache_stats();
    assert_eq!(stats.created + stats.reused, 16);
    assert!(
        stats.reused > 0,
        "later waves must reuse cached workers: {stats:?}"
    );
    usf.shutdown();
}

/// Affinity hints are stored and echoed back but the scheduler keeps control (§4.3.2).
/// Hints are validated against the instance topology: cores that cannot exist are
/// clamped away instead of round-tripping as silently dead hints.
#[test]
fn affinity_hints_are_stored_not_applied() {
    use usf_core::affinity::{get_affinity_hint, set_affinity_hint, CpuSet};
    let usf = Usf::builder().cores(2).build();
    let p = usf.process("affinity");
    let h = p.spawn(|| {
        let mut mask = CpuSet::single(1);
        mask.set(99); // outside the 2-core instance: clamped
        set_affinity_hint(mask);
        let echoed = get_affinity_hint();
        let actual = usf_core::affinity::current_scheduler_core();
        (echoed, actual)
    });
    let (echoed, actual) = h.join().unwrap();
    assert_eq!(
        echoed,
        Some(CpuSet::single(1)),
        "in-range cores echo back, out-of-range cores are clamped"
    );
    assert!(
        actual.unwrap() < 2,
        "the scheduler placement ignores the hint"
    );
    usf.shutdown();
}
