//! Property tests pinning the unified SCHED_COOP ready-queue (`usf_nosv::readyq`) to its
//! specification, and enforcing the simulator-validates-runtime invariant:
//!
//! 1. for random enqueue/pop/aging traces, `ProcQueues` (lazy head-heaps, compaction)
//!    picks the identical item sequence as a straightforward reference model written with
//!    plain linear scans; and
//! 2. `CoopPolicy` (real time, `Instant`) and the simulator's `CoopScheduler` (virtual
//!    time, `SimTime`) agree on the task sequence for the same trace — they are the same
//!    `CoopCore` instantiated at two time types, and this test keeps it that way; and
//! 3. the per-NUMA-node sharded backing (`ShardedProcQueues` / `ShardedCoopPolicy`) picks
//!    the identical sequence as the flat one — including aging-valve steps — and its
//!    hand-recorded traces replay divergence-free through `usf::simsched::replay`.

use proptest::prelude::*;
use std::collections::VecDeque;
use std::time::{Duration, Instant};
use usf::nosv::readyq::{CoreMap, ProcQueues, ReadyQueues, ShardedProcQueues};
use usf::nosv::{CoopPolicy, PickTier, Policy, ShardedCoopPolicy, TaskMeta, Topology};
use usf::nosv::{TraceEntry, TraceEvent, TraceMeta};
use usf::simsched::replay::replay;
use usf::simsched::sched::{CoopScheduler, ReadyThread, SimPolicy};
use usf::simsched::{Machine, SimTime};

const CORES: usize = 4;
const NODES: usize = 2;
const AGING: u64 = 50_000; // ns

/// Straightforward executable specification of the tiered pop: linear scans everywhere.
struct RefQueues {
    per_core: Vec<VecDeque<(u64, u64, u64)>>, // (item, seq, enqueued_at)
    unbound: VecDeque<(u64, u64, u64)>,
    next_seq: u64,
    next_valve_at: Option<u64>,
    topo: Topology,
}

impl RefQueues {
    fn new(topo: Topology) -> Self {
        RefQueues {
            per_core: (0..topo.num_cores()).map(|_| VecDeque::new()).collect(),
            unbound: VecDeque::new(),
            next_seq: 0,
            next_valve_at: None,
            topo,
        }
    }

    fn push(&mut self, item: u64, pref: Option<usize>, now: u64) {
        let e = (item, self.next_seq, now);
        self.next_seq += 1;
        match pref {
            Some(c) if c < self.per_core.len() => self.per_core[c].push_back(e),
            _ => self.unbound.push_back(e),
        }
    }

    /// `(seq, at, source)` of the globally oldest head; `None` source is the unbound queue.
    fn oldest(&self) -> Option<(u64, u64, Option<usize>)> {
        let mut best: Option<(u64, u64, Option<usize>)> = None;
        for (c, q) in self.per_core.iter().enumerate() {
            if let Some(&(_, seq, at)) = q.front() {
                if best.map_or(true, |(s, _, _)| seq < s) {
                    best = Some((seq, at, Some(c)));
                }
            }
        }
        if let Some(&(_, seq, at)) = self.unbound.front() {
            if best.map_or(true, |(s, _, _)| seq < s) {
                best = Some((seq, at, None));
            }
        }
        best
    }

    fn pop_from(&mut self, source: Option<usize>) -> u64 {
        let q = match source {
            Some(c) => &mut self.per_core[c],
            None => &mut self.unbound,
        };
        q.pop_front().expect("candidate queue has a head").0
    }

    fn pop_for(&mut self, core: usize, now: u64, aging: u64) -> Option<u64> {
        // Tier 1: the rate-limited aging valve.
        if self.next_valve_at.map_or(true, |t| now >= t) {
            match self.oldest() {
                Some((_, at, src)) => {
                    if now.saturating_sub(at) >= aging {
                        self.next_valve_at = Some(now + aging);
                        return Some(self.pop_from(src));
                    }
                    self.next_valve_at = Some(at + aging);
                }
                None => self.next_valve_at = Some(now + aging),
            }
        }
        // Tier 2: affinity.
        if !self.per_core[core].is_empty() {
            return Some(self.pop_from(Some(core)));
        }
        // Tier 3: oldest of (same-node queues, unbound).
        let node = self.topo.node_of(core);
        let mut best: Option<(u64, Option<usize>)> = None;
        for c in self.topo.cores_in_node(node) {
            if c == core {
                continue;
            }
            if let Some(&(_, seq, _)) = self.per_core[c].front() {
                if best.map_or(true, |(s, _)| seq < s) {
                    best = Some((seq, Some(c)));
                }
            }
        }
        if let Some(&(_, seq, _)) = self.unbound.front() {
            if best.map_or(true, |(s, _)| seq < s) {
                best = Some((seq, None));
            }
        }
        if let Some((_, src)) = best {
            return Some(self.pop_from(src));
        }
        // Tier 4: oldest remote entry.
        let mut best: Option<(u64, usize)> = None;
        for c in self.topo.cores() {
            if self.topo.node_of(c) == node {
                continue;
            }
            if let Some(&(_, seq, _)) = self.per_core[c].front() {
                if best.map_or(true, |(s, _)| seq < s) {
                    best = Some((seq, c));
                }
            }
        }
        best.map(|(_, c)| self.pop_from(Some(c)))
    }
}

/// Decode a preference selector: values below `CORES` are a core, the rest `None`. Each
/// trace step is a `(kind, sel, core, dt)` tuple — `kind < 2` enqueues, otherwise picks,
/// with `dt` the time advance in ns.
fn pref_of(sel: u8) -> Option<usize> {
    if sel < CORES as u8 {
        Some(sel as usize)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The heap-indexed `ProcQueues` and the linear-scan reference model serve identical
    /// item sequences for arbitrary traces (including aging-valve service and empty pops).
    #[test]
    fn proc_queues_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u8..8, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let mut fast: ProcQueues<u64, u64> =
            ProcQueues::new(std::sync::Arc::new(CoreMap::from_view(&topo)));
        let mut reference = RefQueues::new(topo);
        let mut now = 0u64;
        let mut next_item = 0u64;
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            if kind < 2 {
                fast.push(next_item, pref_of(sel), now);
                reference.push(next_item, pref_of(sel), now);
                next_item += 1;
            } else {
                let core = core as usize;
                let got = fast.pop_for(core, now, AGING);
                let want = reference.pop_for(core, now, AGING);
                prop_assert_eq!(got, want, "divergence at t={}", now);
            }
        }
        // Drain both completely: the tails must agree too.
        loop {
            now += 1_000;
            let got = fast.pop_for(0, now, AGING);
            let want = reference.pop_for(0, now, AGING);
            prop_assert_eq!(got, want);
            if want.is_none() { break; }
        }
        prop_assert!(fast.is_empty());
    }

    /// The real-time `CoopPolicy` and the virtual-time simulated `CoopScheduler` pick the
    /// same task sequence for the same trace — the simulator validates the exact policy
    /// the runtime ships.
    #[test]
    fn coop_policy_matches_simulated_coop(
        ops in proptest::collection::vec((0u8..4, 0u8..10, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let machine = Machine::small_numa(CORES, NODES); // contiguous split, identical to Topology::new(4, 2)
        let quantum = 50_000u64; // ns; doubles as the aging window in both

        let mut real = CoopPolicy::new(topo.clone(), Duration::from_nanos(quantum));
        let mut sim = CoopScheduler::new(SimTime::from_nanos(quantum));
        sim.init(&machine, &[]);

        let base = Instant::now();
        let mut now = 0u64;
        let mut next_id = 1u64;
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            let real_now = base + Duration::from_nanos(now);
            let sim_now = SimTime::from_nanos(now);
            if kind < 2 {
                // Processes 0/1, preference from the same selector for both.
                let process = u32::from(sel % 2);
                let pref = pref_of(sel / 2);
                real.enqueue(&topo, TaskMeta {
                    id: next_id,
                    process,
                    preferred_core: pref,
                }, real_now);
                sim.enqueue(ReadyThread {
                    id: next_id as usize,
                    process: process as usize,
                    last_core: pref,
                    vruntime: 0.0,
                }, sim_now);
                next_id += 1;
            } else {
                let core = core as usize;
                let got_real = real.pick(&topo, core, real_now).map(|m| m.id);
                let got_sim = sim.pick(core, sim_now).map(|t| t as u64);
                prop_assert_eq!(got_real, got_sim, "divergence at t={}ns", now);
                prop_assert_eq!(real.ready_count(), sim.ready_count());
            }
        }
        // Drain both: every queued task must come out, in the same order.
        loop {
            now += 1_000;
            let got_real = real
                .pick(&topo, 0, base + Duration::from_nanos(now))
                .map(|m| m.id);
            let got_sim = sim.pick(0, SimTime::from_nanos(now)).map(|t| t as u64);
            prop_assert_eq!(got_real, got_sim);
            if got_sim.is_none() { break; }
        }
        prop_assert!(!real.has_ready());
        prop_assert!(!sim.has_ready());
    }

    /// The replay harness closes the same loop through the trace format: a schedule
    /// hand-recorded from the real-time `CoopPolicy` (enqueues and tiered picks, stamped
    /// with the exact nanosecond offsets the policy saw) replays through
    /// `usf::simsched::replay` with zero divergence, and aged picks land at the same
    /// logical steps. Unlike tests/sched_trace_replay.rs this needs no cargo feature —
    /// the trace types compile unconditionally.
    #[test]
    fn hand_recorded_policy_trace_replays_in_sim(
        ops in proptest::collection::vec((0u8..4, 0u8..10, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let quantum = 50_000u64; // ns; aging window == quantum in SCHED_COOP
        let mut real = CoopPolicy::new(topo.clone(), Duration::from_nanos(quantum));

        let meta = TraceMeta {
            core_nodes: (0..CORES).map(|c| topo.node_of(c)).collect(),
            quantum_nanos: quantum,
            policy: "sched_coop".to_string(),
        };
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut expected_aged: Vec<u64> = Vec::new();
        let record = |at_nanos: u64, event: TraceEvent, entries: &mut Vec<TraceEntry>| {
            entries.push(TraceEntry { step: entries.len() as u64, at_nanos, event });
        };

        let base = Instant::now();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let pick = |real: &mut CoopPolicy,
                        core: usize,
                        now: u64,
                        entries: &mut Vec<TraceEntry>,
                        expected_aged: &mut Vec<u64>| {
            match real.pick_tiered(core, base + Duration::from_nanos(now)) {
                Some((meta, tier)) => {
                    if tier == PickTier::Aged {
                        expected_aged.push(entries.len() as u64);
                    }
                    entries.push(TraceEntry {
                        step: entries.len() as u64,
                        at_nanos: now,
                        event: TraceEvent::Pop { core, tier: Some(tier), task: meta.id },
                    });
                }
                // Even an empty pick re-arms the aging valve; record it so the replayed
                // valve stays in lockstep (TraceEvent::PopEmpty's raison d'être).
                None => entries.push(TraceEntry {
                    step: entries.len() as u64,
                    at_nanos: now,
                    event: TraceEvent::PopEmpty { core },
                }),
            }
        };
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            if kind < 2 {
                let process = u32::from(sel % 2);
                let pref = pref_of(sel / 2);
                real.enqueue(&topo, TaskMeta {
                    id: next_id,
                    process,
                    preferred_core: pref,
                }, base + Duration::from_nanos(now));
                record(now, TraceEvent::Enqueue {
                    process,
                    task: next_id,
                    preferred: pref,
                }, &mut entries);
                next_id += 1;
            } else {
                pick(&mut real, core as usize, now, &mut entries, &mut expected_aged);
            }
        }
        while real.has_ready() {
            now += 1_000;
            pick(&mut real, 0, now, &mut entries, &mut expected_aged);
        }

        let expected_pops =
            entries.iter().filter(|e| matches!(e.event, TraceEvent::Pop { .. })).count();
        let report = replay(&meta, &entries);
        prop_assert!(report.divergence.is_none(), "drift: {:?}", report.divergence);
        prop_assert_eq!(report.pops, expected_pops as u64);
        prop_assert_eq!(report.aged_steps, expected_aged,
            "aged picks must replay at the recorded logical steps");
    }

    /// The per-node sharded queues serve the identical item sequence as the linear-scan
    /// reference model (hence, by test 1, as the flat `ProcQueues`) for arbitrary traces —
    /// aging-valve service, node-vs-unbound tie-breaks and cross-shard steals included.
    #[test]
    fn sharded_queues_match_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u8..8, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let mut sharded: ShardedProcQueues<u64, u64> =
            ShardedProcQueues::new(std::sync::Arc::new(CoreMap::from_view(&topo)));
        let mut reference = RefQueues::new(topo);
        let mut now = 0u64;
        let mut next_item = 0u64;
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            if kind < 2 {
                sharded.push(next_item, pref_of(sel), now);
                reference.push(next_item, pref_of(sel), now);
                next_item += 1;
            } else {
                let core = core as usize;
                let got = sharded.pop_for_tiered(core, now, AGING).map(|(t, _)| t);
                let want = reference.pop_for(core, now, AGING);
                prop_assert_eq!(got, want, "divergence at t={}", now);
            }
        }
        loop {
            now += 1_000;
            let got = sharded.pop_for_tiered(0, now, AGING).map(|(t, _)| t);
            let want = reference.pop_for(0, now, AGING);
            prop_assert_eq!(got, want);
            if want.is_none() { break; }
        }
        prop_assert!(sharded.is_empty());
    }

    /// `ShardedCoopPolicy` and `CoopPolicy` pick the same task at the same tier for the
    /// same trace: the sharding changes queue storage and locking, never the schedule.
    #[test]
    fn sharded_policy_matches_flat_policy(
        ops in proptest::collection::vec((0u8..4, 0u8..10, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let quantum = Duration::from_nanos(50_000);
        let mut flat = CoopPolicy::new(topo.clone(), quantum);
        let mut sharded = ShardedCoopPolicy::new(topo.clone(), quantum);

        let base = Instant::now();
        let mut now = 0u64;
        let mut next_id = 1u64;
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            let at = base + Duration::from_nanos(now);
            if kind < 2 {
                let meta = TaskMeta {
                    id: next_id,
                    process: u32::from(sel % 2),
                    preferred_core: pref_of(sel / 2),
                };
                flat.enqueue(&topo, meta, at);
                sharded.enqueue(&topo, meta, at);
                next_id += 1;
            } else {
                let core = core as usize;
                let got_flat = flat.pick_tiered(core, at).map(|(m, t)| (m.id, t));
                let got_sharded = sharded.pick_tiered(core, at).map(|(m, t)| (m.id, t));
                prop_assert_eq!(got_flat, got_sharded, "divergence at t={}ns", now);
                prop_assert_eq!(flat.ready_count(), sharded.ready_count());
            }
        }
        loop {
            now += 1_000;
            let at = base + Duration::from_nanos(now);
            let got_flat = flat.pick_tiered(0, at).map(|(m, t)| (m.id, t));
            let got_sharded = sharded.pick_tiered(0, at).map(|(m, t)| (m.id, t));
            prop_assert_eq!(got_flat, got_sharded.clone());
            if got_sharded.is_none() { break; }
        }
        prop_assert!(!sharded.has_ready());
    }

    /// Schedules hand-recorded from the *sharded* policy replay through the simulator's
    /// (unsharded) SCHED_COOP instantiation with zero divergence, and the aging-valve
    /// picks land at the same logical steps — the replay-level statement of
    /// sharded/unsharded equivalence the acceptance criteria pin.
    #[test]
    fn sharded_policy_trace_replays_in_sim(
        ops in proptest::collection::vec((0u8..4, 0u8..10, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let quantum = 50_000u64; // ns; aging window == quantum in SCHED_COOP
        let mut real = ShardedCoopPolicy::new(topo.clone(), Duration::from_nanos(quantum));

        let meta = TraceMeta {
            core_nodes: (0..CORES).map(|c| topo.node_of(c)).collect(),
            quantum_nanos: quantum,
            policy: "sched_coop_sharded".to_string(),
        };
        let mut entries: Vec<TraceEntry> = Vec::new();
        let mut expected_aged: Vec<u64> = Vec::new();
        let record = |at_nanos: u64, event: TraceEvent, entries: &mut Vec<TraceEntry>| {
            entries.push(TraceEntry { step: entries.len() as u64, at_nanos, event });
        };

        let base = Instant::now();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let pick = |real: &mut ShardedCoopPolicy,
                        core: usize,
                        now: u64,
                        entries: &mut Vec<TraceEntry>,
                        expected_aged: &mut Vec<u64>| {
            match real.pick_tiered(core, base + Duration::from_nanos(now)) {
                Some((meta, tier)) => {
                    if tier == PickTier::Aged {
                        expected_aged.push(entries.len() as u64);
                    }
                    entries.push(TraceEntry {
                        step: entries.len() as u64,
                        at_nanos: now,
                        event: TraceEvent::Pop { core, tier: Some(tier), task: meta.id },
                    });
                }
                None => entries.push(TraceEntry {
                    step: entries.len() as u64,
                    at_nanos: now,
                    event: TraceEvent::PopEmpty { core },
                }),
            }
        };
        for (kind, sel, core, dt) in ops {
            now += u64::from(dt);
            if kind < 2 {
                let process = u32::from(sel % 2);
                let pref = pref_of(sel / 2);
                real.enqueue(&topo, TaskMeta {
                    id: next_id,
                    process,
                    preferred_core: pref,
                }, base + Duration::from_nanos(now));
                record(now, TraceEvent::Enqueue {
                    process,
                    task: next_id,
                    preferred: pref,
                }, &mut entries);
                next_id += 1;
            } else {
                pick(&mut real, core as usize, now, &mut entries, &mut expected_aged);
            }
        }
        while real.has_ready() {
            now += 1_000;
            pick(&mut real, 0, now, &mut entries, &mut expected_aged);
        }

        let expected_pops =
            entries.iter().filter(|e| matches!(e.event, TraceEvent::Pop { .. })).count();
        let report = replay(&meta, &entries);
        prop_assert!(report.divergence.is_none(), "drift: {:?}", report.divergence);
        prop_assert_eq!(report.pops, expected_pops as u64);
        prop_assert_eq!(report.aged_steps, expected_aged,
            "sharded aged picks must replay at the recorded logical steps");
    }
}

/// One split pick step against two per-node policies: local tiers first, then a steal
/// from the other shard — the readyq-level model of `Scheduler::split_pick_once` with
/// the aging valve disabled (quantum longer than any run).
fn split_pick(
    shards: &mut [CoopPolicy],
    topo: &Topology,
    core: usize,
    at: Instant,
) -> Option<(TaskMeta, PickTier)> {
    let si = topo.node_of(core);
    if let Some(p) = shards[si].pick_tiered(core, at) {
        return Some(p);
    }
    for off in 1..shards.len() {
        let vi = (si + off) % shards.len();
        if let Some(p) = shards[vi].pick_tiered(core, at) {
            return Some(p);
        }
    }
    None
}

proptest! {
    /// Split-lock satellite gate: with bound-only tasks, a single process and a quantum
    /// longer than any run (the aging valves never fire), the split model — one flat
    /// SCHED_COOP policy per NUMA node, enqueues routed by the preferred core's node,
    /// local-first picks with a cross-shard steal on local exhaustion — produces the
    /// identical (task, tier) sequence as one flat policy over the whole machine. A
    /// steal surfaces as exactly the flat pick's `Remote` tier: the stolen entry is the
    /// oldest in the victim shard, which is the oldest remote entry of the flat view.
    #[test]
    fn split_steals_match_the_flat_pick_sequence(
        ops in proptest::collection::vec((0u8..2, 0u8..4, 0u32..40_000), 1..80),
    ) {
        let topo = Topology::new(CORES, NODES);
        let quantum = Duration::from_secs(3600);
        let mut flat = CoopPolicy::new(topo.clone(), quantum);
        let mut shards: Vec<CoopPolicy> =
            (0..NODES).map(|_| CoopPolicy::new(topo.clone(), quantum)).collect();
        let base = Instant::now();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let mut drain_cores = std::collections::VecDeque::new();
        for (kind, core, dt) in ops {
            now += u64::from(dt);
            let at = base + Duration::from_nanos(now);
            let core = core as usize % CORES;
            if kind == 0 {
                let meta = TaskMeta { id: next_id, process: 1, preferred_core: Some(core) };
                flat.enqueue(&topo, meta, at);
                shards[topo.node_of(core)].enqueue(&topo, meta, at);
                next_id += 1;
            } else {
                let expect = flat.pick_tiered(core, at);
                let got = split_pick(&mut shards, &topo, core, at);
                prop_assert_eq!(got, expect, "split pick at core {} diverged", core);
                drain_cores.push_back(core);
            }
        }
        // Drain both models to empty through the same core sequence: every residual
        // entry must also be picked identically (steals included).
        let mut drain_core = 0usize;
        while flat.has_ready() || shards.iter().any(|s| s.has_ready()) {
            now += 1_000;
            let at = base + Duration::from_nanos(now);
            let expect = flat.pick_tiered(drain_core, at);
            let got = split_pick(&mut shards, &topo, drain_core, at);
            prop_assert_eq!(got, expect, "drain pick at core {} diverged", drain_core);
            prop_assert!(got.is_some(), "both report ready work but neither picks");
            drain_core = (drain_core + 1) % CORES;
        }
    }
}

/// Deterministic steal scenario: work bound to node 0 only, picked from a node-1 core.
/// The split model must steal it and report the flat pick's `Remote` tier.
#[test]
fn split_steal_reports_the_flat_remote_tier() {
    let topo = Topology::new(CORES, NODES);
    let quantum = Duration::from_secs(3600);
    let mut flat = CoopPolicy::new(topo.clone(), quantum);
    let mut shards: Vec<CoopPolicy> = (0..NODES)
        .map(|_| CoopPolicy::new(topo.clone(), quantum))
        .collect();
    let base = Instant::now();
    let meta = TaskMeta {
        id: 1,
        process: 1,
        preferred_core: Some(0),
    };
    flat.enqueue(&topo, meta, base);
    shards[0].enqueue(&topo, meta, base);
    // Core 3 lives in node 1: its shard is empty, so the split pick must steal from
    // shard 0 — and agree with the flat policy that this is a Remote-tier pick.
    let at = base + Duration::from_nanos(10);
    let expect = flat.pick_tiered(3, at);
    assert_eq!(expect, Some((meta, PickTier::Remote)));
    let got = split_pick(&mut shards, &topo, 3, at);
    assert_eq!(got, expect);
    assert!(!shards.iter().any(|s| s.has_ready()));
}
