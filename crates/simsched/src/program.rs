//! Thread programs: the synthetic workload description executed by the simulator.

use crate::thread::ProcessId;
use crate::time::SimTime;
use std::sync::Arc;

/// Identifier of a simulated mutex.
pub type LockId = u64;
/// Identifier of a simulated barrier.
pub type BarrierId = u64;
/// Identifier of a simulated one-shot event (counting).
pub type EventId = u64;

/// How a thread waits at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierWaitKind {
    /// Block: the core is released while waiting (a well-behaved pthread barrier).
    Block,
    /// Busy-wait without ever yielding (the unmodified OpenBLAS/BLIS/MPICH barrier,
    /// "Original" in §5.3): the waiter burns its core until preempted or released.
    Spin,
    /// Busy-wait but call `sched_yield` every `slice` of spinning (the paper's one-line
    /// fix, "Baseline"/"SCHED_COOP").
    SpinYield {
        /// How long the waiter spins before each yield.
        slice: SimTime,
    },
}

/// One operation of a thread program.
#[derive(Debug, Clone)]
pub enum Op {
    /// Execute on-core for `work` of nominal time; while running, demand `bw_gbps` of memory
    /// bandwidth (0.0 = fully compute bound). If the node bandwidth is oversubscribed the
    /// compute takes proportionally longer.
    Compute {
        /// Nominal duration at full speed.
        work: SimTime,
        /// Memory bandwidth demand while running, in GB/s.
        bw_gbps: f64,
    },
    /// Acquire a mutex (blocks if held; FIFO handoff on release).
    Lock(LockId),
    /// Release a mutex.
    Unlock(LockId),
    /// Wait at barrier `id` until `participants` threads have arrived, with the given wait
    /// behaviour.
    Barrier {
        /// Barrier identity (shared by all participants).
        id: BarrierId,
        /// Number of arrivals that release one round of the barrier.
        participants: usize,
        /// Blocking or busy-waiting behaviour.
        kind: BarrierWaitKind,
    },
    /// Sleep (off-core) for the given duration.
    Sleep(SimTime),
    /// Voluntarily yield the core (a scheduling point; under preemptive policies it simply
    /// requeues the thread).
    Yield,
    /// Increment event `0`'s counter by one and wake threads waiting for it.
    Signal(EventId),
    /// Block until event `id` has been signalled at least `count` times.
    WaitEvent {
        /// Event identity.
        id: EventId,
        /// Number of signals to wait for.
        count: u64,
    },
    /// Spawn `count` child threads running `program` in process `process`, recording them as
    /// children of the current thread (for `JoinChildren`).
    Spawn {
        /// The child program.
        program: ProgramRef,
        /// The process the children belong to.
        process: ProcessId,
        /// Number of children.
        count: usize,
    },
    /// Block until every child spawned so far by this thread has finished.
    JoinChildren,
    /// Record that this thread completed the given unit of its workload: the engine stamps
    /// the current virtual time into the report's per-thread unit-mark trace. Costs no
    /// time — it is pure instrumentation, which is how scenario lowering extracts
    /// *measured* per-unit latencies instead of dividing the makespan uniformly.
    UnitMark(usize),
}

/// A shareable, immutable thread program.
pub type ProgramRef = Arc<Program>;

/// A sequence of [`Op`]s with a builder API.
#[derive(Debug, Clone, Default)]
pub struct Program {
    ops: Vec<Op>,
    /// Label used in traces and reports.
    pub label: String,
}

impl Program {
    /// Empty program with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Program {
            ops: Vec::new(),
            label: label.into(),
        }
    }

    /// The operations of the program.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append an arbitrary op.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Append a compute phase without bandwidth demand.
    pub fn compute(self, work: SimTime) -> Self {
        self.op(Op::Compute { work, bw_gbps: 0.0 })
    }

    /// Append a compute phase with a bandwidth demand.
    pub fn compute_bw(self, work: SimTime, bw_gbps: f64) -> Self {
        self.op(Op::Compute { work, bw_gbps })
    }

    /// Append a lock acquisition.
    pub fn lock(self, id: LockId) -> Self {
        self.op(Op::Lock(id))
    }

    /// Append a lock release.
    pub fn unlock(self, id: LockId) -> Self {
        self.op(Op::Unlock(id))
    }

    /// Append a critical section: lock, compute, unlock.
    pub fn critical_section(self, id: LockId, work: SimTime) -> Self {
        self.lock(id).compute(work).unlock(id)
    }

    /// Append a barrier wait.
    pub fn barrier(self, id: BarrierId, participants: usize, kind: BarrierWaitKind) -> Self {
        self.op(Op::Barrier {
            id,
            participants,
            kind,
        })
    }

    /// Append a sleep.
    pub fn sleep(self, d: SimTime) -> Self {
        self.op(Op::Sleep(d))
    }

    /// Append a yield.
    pub fn yield_now(self) -> Self {
        self.op(Op::Yield)
    }

    /// Append an event signal.
    pub fn signal(self, id: EventId) -> Self {
        self.op(Op::Signal(id))
    }

    /// Append an event wait.
    pub fn wait_event(self, id: EventId, count: u64) -> Self {
        self.op(Op::WaitEvent { id, count })
    }

    /// Append a spawn of `count` children.
    pub fn spawn(self, program: ProgramRef, process: ProcessId, count: usize) -> Self {
        self.op(Op::Spawn {
            program,
            process,
            count,
        })
    }

    /// Append a join of all children spawned so far.
    pub fn join_children(self) -> Self {
        self.op(Op::JoinChildren)
    }

    /// Append a unit-completion mark (pure instrumentation, costs no simulated time).
    pub fn unit_mark(self, unit: usize) -> Self {
        self.op(Op::UnitMark(unit))
    }

    /// Append `body`'s operations `n` times.
    pub fn repeat(mut self, n: usize, body: &Program) -> Self {
        for _ in 0..n {
            self.ops.extend(body.ops.iter().cloned());
        }
        self
    }

    /// Program-builder hook: thread the builder through `build` once per unit in
    /// `0..units`, so callers can append per-unit op sequences that differ by index
    /// (different barrier ids, ramped compute costs, per-unit events) without breaking the
    /// chain. This is how scenario lowering turns "N units of work" into a program.
    pub fn extend_with(self, units: usize, build: impl FnMut(Self, usize) -> Self) -> Self {
        (0..units).fold(self, build)
    }

    /// Freeze into a shareable reference.
    pub fn build(self) -> ProgramRef {
        Arc::new(self)
    }

    /// Total nominal compute time of the program (ignores contention and spawned children).
    pub fn nominal_compute(&self) -> SimTime {
        self.ops
            .iter()
            .map(|op| match op {
                Op::Compute { work, .. } => *work,
                _ => SimTime::ZERO,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_appends_ops_in_order() {
        let p = Program::new("t")
            .compute(SimTime::from_micros(10))
            .lock(1)
            .unlock(1)
            .sleep(SimTime::from_millis(1))
            .yield_now()
            .signal(3)
            .wait_event(3, 2)
            .barrier(7, 4, BarrierWaitKind::Block)
            .join_children();
        assert_eq!(p.len(), 9);
        assert!(matches!(p.ops()[0], Op::Compute { .. }));
        assert!(matches!(p.ops()[8], Op::JoinChildren));
        assert!(!p.is_empty());
    }

    #[test]
    fn repeat_expands_body() {
        let body = Program::new("body")
            .compute(SimTime::from_micros(1))
            .yield_now();
        let p = Program::new("outer").repeat(3, &body);
        assert_eq!(p.len(), 6);
        assert_eq!(p.nominal_compute(), SimTime::from_micros(3));
    }

    #[test]
    fn extend_with_threads_the_builder_per_unit() {
        let p = Program::new("units").extend_with(3, |p, unit| {
            p.compute(SimTime::from_micros(unit as u64 + 1)).barrier(
                100 + unit as u64,
                2,
                BarrierWaitKind::Block,
            )
        });
        assert_eq!(p.len(), 6);
        assert_eq!(p.nominal_compute(), SimTime::from_micros(6));
        assert!(matches!(p.ops()[5], Op::Barrier { id: 102, .. }));
        // Zero units is a no-op.
        let empty = Program::new("none").extend_with(0, |p, _| p.yield_now());
        assert!(empty.is_empty());
    }

    #[test]
    fn unit_mark_is_instrumentation_only() {
        let p = Program::new("m").extend_with(2, |p, unit| {
            p.compute(SimTime::from_micros(5)).unit_mark(unit)
        });
        assert_eq!(p.len(), 4);
        assert!(matches!(p.ops()[1], Op::UnitMark(0)));
        assert!(matches!(p.ops()[3], Op::UnitMark(1)));
        // Marks add no nominal work.
        assert_eq!(p.nominal_compute(), SimTime::from_micros(10));
    }

    #[test]
    fn critical_section_is_three_ops() {
        let p = Program::new("cs").critical_section(9, SimTime::from_micros(5));
        assert_eq!(p.len(), 3);
        assert!(matches!(p.ops()[0], Op::Lock(9)));
        assert!(matches!(p.ops()[2], Op::Unlock(9)));
    }

    #[test]
    fn nominal_compute_sums_compute_ops_only() {
        let p = Program::new("x")
            .compute(SimTime::from_micros(4))
            .sleep(SimTime::from_secs(10))
            .compute_bw(SimTime::from_micros(6), 5.0);
        assert_eq!(p.nominal_compute(), SimTime::from_micros(10));
    }
}
