//! The discrete-event simulation engine.
//!
//! The engine owns the simulated cores, threads and synchronization objects and advances
//! virtual time event by event. Scheduling decisions are delegated to a
//! [`crate::sched::SimPolicy`]; everything else — op execution, blocking,
//! barriers, busy-waiting, bandwidth contention, accounting — is handled here so that the
//! fair, cooperative and partitioned policies are compared on exactly the same mechanics.

use crate::machine::Machine;
use crate::metrics::{BwSample, SimMetrics, SimReportData};
use crate::program::{BarrierId, BarrierWaitKind, EventId, LockId, Op, ProgramRef};
use crate::sched::{ReadyThread, SchedModel, SimPolicy};
use crate::thread::{BlockReason, ProcessDesc, ProcessId, SimThread, ThreadId, ThreadRunState};
use crate::time::SimTime;
use std::collections::{BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};

/// Full report of a simulation run (re-exported as the crate-level `SimReport`).
pub type SimReport = SimReportData;

/// Kinds of scheduled events.
#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// A thread arrives (becomes ready for the first time).
    Arrival(ThreadId),
    /// The running compute op of a thread finishes.
    OpComplete { thread: ThreadId, op_seq: u64 },
    /// The preemption quantum of a running thread expires.
    Quantum { thread: ThreadId, run_seq: u64 },
    /// A sleeping thread's deadline passes.
    SleepDone { thread: ThreadId },
    /// A busy-waiting thread reaches its yield point.
    SpinSlice { thread: ThreadId, op_seq: u64 },
}

/// An event in the priority queue (ordered by time, then insertion order).
#[derive(Debug, Clone, PartialEq, Eq)]
struct QueuedEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest event first.
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct LockState {
    owner: Option<ThreadId>,
    waiters: VecDeque<ThreadId>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: usize,
    waiting: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct EventState {
    count: u64,
    waiters: Vec<(ThreadId, u64)>,
}

/// The simulation engine. Build it, add processes and threads, then [`Engine::run`].
pub struct Engine {
    machine: Machine,
    policy: Box<dyn SimPolicy>,
    policy_label: String,
    processes: Vec<ProcessDesc>,
    threads: Vec<SimThread>,

    // Engine-side per-thread state.
    op_seq: Vec<u64>,
    run_seq: Vec<u64>,
    locks_held: Vec<usize>,
    pending_overhead: Vec<SimTime>,
    on_core_since: Vec<SimTime>,
    spinning: Vec<bool>,
    spin_kind: Vec<Option<BarrierWaitKind>>,
    unit_marks: Vec<Vec<(usize, SimTime)>>,
    cores_used: Vec<BTreeSet<usize>>,

    // Cores.
    cores: Vec<Option<ThreadId>>,
    core_idle_since: Vec<SimTime>,
    core_last_thread: Vec<Option<ThreadId>>,

    // Event queue.
    queue: BinaryHeap<QueuedEvent>,
    event_counter: u64,

    // Synchronization objects.
    locks: HashMap<LockId, LockState>,
    barriers: HashMap<BarrierId, BarrierState>,
    events: HashMap<EventId, EventState>,

    // Bandwidth model.
    computing: HashSet<ThreadId>,
    bw_factor: f64,
    bw_last_update: SimTime,
    bw_trace: Vec<BwSample>,

    /// First-touch home node of each process (set when its first thread is dispatched);
    /// drives the NUMA-locality compute penalty (`Machine::remote_numa_penalty`).
    process_home: Vec<Option<usize>>,

    now: SimTime,
    metrics: SimMetrics,
    max_sim_time: SimTime,
    deadlocked: bool,
}

impl Engine {
    /// Create an engine for the given machine and scheduling model.
    pub fn new(machine: Machine, model: &SchedModel) -> Self {
        let policy = model.build(&machine);
        let cores = machine.cores();
        Engine {
            policy_label: model.label().to_string(),
            policy,
            processes: Vec::new(),
            threads: Vec::new(),
            op_seq: Vec::new(),
            run_seq: Vec::new(),
            locks_held: Vec::new(),
            pending_overhead: Vec::new(),
            on_core_since: Vec::new(),
            spinning: Vec::new(),
            spin_kind: Vec::new(),
            unit_marks: Vec::new(),
            cores_used: Vec::new(),
            cores: vec![None; cores],
            core_idle_since: vec![SimTime::ZERO; cores],
            core_last_thread: vec![None; cores],
            queue: BinaryHeap::new(),
            event_counter: 0,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            events: HashMap::new(),
            computing: HashSet::new(),
            bw_factor: 1.0,
            bw_last_update: SimTime::ZERO,
            bw_trace: Vec::new(),
            process_home: Vec::new(),
            now: SimTime::ZERO,
            metrics: SimMetrics::default(),
            max_sim_time: SimTime::from_secs(24 * 3600),
            deadlocked: false,
            machine,
        }
    }

    /// Label of the installed policy.
    pub fn policy_label(&self) -> &str {
        &self.policy_label
    }

    /// Register a process with a scheduling weight (1.0 = nice 0).
    pub fn add_process(&mut self, name: impl Into<String>, weight: f64) -> ProcessId {
        let id = self.processes.len();
        self.processes
            .push(ProcessDesc::new(id, name).weight(weight));
        self.process_home.push(None);
        id
    }

    /// Restrict a process to a set of cores (NUMA-aware placement): its threads will only
    /// ever be dispatched there by the placement-aware policies (fair, SCHED_COOP). Cores
    /// outside the machine are dropped; an empty or fully out-of-range set clears the
    /// restriction. Call before [`Engine::run`].
    ///
    /// # Panics
    /// Panics if `process` is unknown.
    pub fn restrict_process(&mut self, process: ProcessId, cores: Vec<usize>) {
        let kept: Vec<usize> = cores
            .into_iter()
            .filter(|&c| c < self.machine.cores())
            .collect();
        self.processes[process].allowed_cores = (!kept.is_empty()).then_some(kept);
    }

    /// Add a thread arriving at time zero.
    pub fn add_thread(&mut self, process: ProcessId, program: ProgramRef) -> ThreadId {
        self.add_thread_at(process, program, SimTime::ZERO)
    }

    /// Add a thread arriving at `arrival`.
    pub fn add_thread_at(
        &mut self,
        process: ProcessId,
        program: ProgramRef,
        arrival: SimTime,
    ) -> ThreadId {
        assert!(process < self.processes.len(), "unknown process {process}");
        let id = self.threads.len();
        self.threads
            .push(SimThread::new(id, process, program, arrival));
        self.op_seq.push(0);
        self.run_seq.push(0);
        self.locks_held.push(0);
        self.pending_overhead.push(SimTime::ZERO);
        self.on_core_since.push(SimTime::ZERO);
        self.spinning.push(false);
        self.spin_kind.push(None);
        self.unit_marks.push(Vec::new());
        self.cores_used.push(BTreeSet::new());
        self.push_event(arrival, EventKind::Arrival(id));
        id
    }

    /// Add `count` threads of the same program arriving together at `arrival` — the bulk
    /// entry point scenario lowering uses for processes whose region threads all run the
    /// same program (imbalanced processes add distinct per-thread programs instead).
    pub fn add_threads_at(
        &mut self,
        process: ProcessId,
        program: ProgramRef,
        count: usize,
        arrival: SimTime,
    ) -> Vec<ThreadId> {
        (0..count)
            .map(|_| self.add_thread_at(process, ProgramRef::clone(&program), arrival))
            .collect()
    }

    /// Abort the run (reporting a deadlock) if simulated time exceeds this bound.
    pub fn set_max_sim_time(&mut self, t: SimTime) {
        self.max_sim_time = t;
    }

    /// Number of threads added so far.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    // -------------------------------------------------------------------------------------
    // Event queue helpers
    // -------------------------------------------------------------------------------------

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        self.event_counter += 1;
        self.queue.push(QueuedEvent {
            time,
            seq: self.event_counter,
            kind,
        });
    }

    // -------------------------------------------------------------------------------------
    // Bandwidth / compute progress model
    // -------------------------------------------------------------------------------------

    fn per_thread_factor(&self, tid: ThreadId) -> f64 {
        let bw = if self.threads[tid].current_bw <= 0.0 {
            1.0
        } else {
            self.bw_factor
        };
        bw * self.numa_factor(tid)
    }

    /// NUMA-locality factor of a computing thread: `1 / remote_numa_penalty` while it
    /// runs on a core outside its process's first-touch home node, `1.0` otherwise (or
    /// when the machine disables the model). Constant for the duration of one dispatch —
    /// the home node never changes and a migration passes through `leave_core`, which
    /// reschedules the completion with the new factor.
    fn numa_factor(&self, tid: ThreadId) -> f64 {
        if self.machine.remote_numa_penalty <= 1.0 {
            return 1.0;
        }
        let ThreadRunState::Running(core) = self.threads[tid].state else {
            return 1.0;
        };
        match self.process_home[self.threads[tid].process] {
            Some(home) if self.machine.socket_of(core) != home => {
                1.0 / self.machine.remote_numa_penalty
            }
            _ => 1.0,
        }
    }

    /// Advance the remaining work of every computing thread up to `to`.
    fn advance_compute_progress(&mut self, to: SimTime) {
        if to <= self.bw_last_update {
            return;
        }
        let elapsed = to - self.bw_last_update;
        let ids: Vec<ThreadId> = self.computing.iter().copied().collect();
        for tid in ids {
            let factor = self.per_thread_factor(tid);
            let progressed = elapsed.scale(factor);
            let t = &mut self.threads[tid];
            t.remaining_work = t.remaining_work.saturating_sub(progressed);
        }
        self.bw_last_update = to;
    }

    /// Recompute the bandwidth share factor after the set of computing threads changed, and
    /// reschedule the completion events of affected threads.
    fn bandwidth_changed(&mut self) {
        let total_demand: f64 = self
            .computing
            .iter()
            .map(|t| self.threads[*t].current_bw)
            .sum();
        let cap = self.machine.memory_bw_gbps;
        let new_factor = if total_demand > cap && total_demand > 0.0 {
            cap / total_demand
        } else {
            1.0
        };
        let consumed = total_demand.min(cap);
        if self
            .bw_trace
            .last()
            .map(|s| (s.gbps - consumed).abs() > 1e-9)
            .unwrap_or(true)
        {
            self.bw_trace.push(BwSample {
                time: self.now,
                gbps: consumed,
            });
        }
        let factor_changed = (new_factor - self.bw_factor).abs() > 1e-12;
        self.bw_factor = new_factor;
        // Reschedule completion of bandwidth-bound computing threads (their speed changed).
        if factor_changed {
            let ids: Vec<ThreadId> = self
                .computing
                .iter()
                .copied()
                .filter(|t| self.threads[*t].current_bw > 0.0)
                .collect();
            for tid in ids {
                self.schedule_op_complete(tid);
            }
        }
    }

    /// (Re)schedule the completion event of the compute op `tid` is currently running.
    fn schedule_op_complete(&mut self, tid: ThreadId) {
        self.op_seq[tid] += 1;
        let factor = self.per_thread_factor(tid).max(1e-9);
        let remaining = self.threads[tid].remaining_work;
        let finish = self.now + remaining.scale(1.0 / factor);
        let seq = self.op_seq[tid];
        self.push_event(
            finish,
            EventKind::OpComplete {
                thread: tid,
                op_seq: seq,
            },
        );
    }

    // -------------------------------------------------------------------------------------
    // Accounting helpers
    // -------------------------------------------------------------------------------------

    /// Close the current on-core accounting interval of a running thread.
    fn close_core_interval(&mut self, tid: ThreadId) {
        let since = self.on_core_since[tid];
        let elapsed = self.now.saturating_sub(since);
        let weight = self.processes[self.threads[tid].process].weight;
        if self.spinning[tid] {
            self.threads[tid].stats.spin_time += elapsed;
            self.metrics.spin_time += elapsed;
        } else {
            self.threads[tid].stats.cpu_time += elapsed;
            self.metrics.busy_time += elapsed;
        }
        self.threads[tid].vruntime += elapsed.as_secs_f64() / weight;
        self.on_core_since[tid] = self.now;
    }

    /// Switch a running thread's accounting between useful work and spinning.
    fn set_spinning(&mut self, tid: ThreadId, spinning: bool) {
        if self.spinning[tid] != spinning {
            self.close_core_interval(tid);
            self.spinning[tid] = spinning;
        }
    }

    // -------------------------------------------------------------------------------------
    // Scheduling transitions
    // -------------------------------------------------------------------------------------

    fn make_ready(&mut self, tid: ThreadId) {
        let t = &mut self.threads[tid];
        t.state = ThreadRunState::Ready;
        t.ready_since = self.now;
        let ready = ReadyThread {
            id: tid,
            process: t.process,
            last_core: t.last_core,
            vruntime: t.vruntime,
        };
        self.policy.enqueue(ready, self.now);
    }

    /// Remove a running thread from its core (shared tail of block/preempt/yield/finish).
    fn leave_core(&mut self, tid: ThreadId) {
        self.close_core_interval(tid);
        if let ThreadRunState::Running(core) = self.threads[tid].state {
            self.cores[core] = None;
            self.core_idle_since[core] = self.now;
        }
        self.spinning[tid] = false;
        if self.computing.remove(&tid) {
            self.bandwidth_changed();
        }
        self.op_seq[tid] += 1;
        self.run_seq[tid] += 1;
    }

    fn block(&mut self, tid: ThreadId, reason: BlockReason) {
        self.leave_core(tid);
        let t = &mut self.threads[tid];
        t.state = ThreadRunState::Blocked;
        t.block_reason = reason;
    }

    fn deschedule_to_ready(&mut self, tid: ThreadId) {
        self.leave_core(tid);
        self.make_ready(tid);
    }

    /// Voluntarily hand the core to another ready thread (a `sched_yield`). The successor is
    /// picked *before* the yielder is requeued so an affinity-first policy cannot hand the
    /// core straight back to the yielder and starve everyone else.
    fn yield_core(&mut self, tid: ThreadId) {
        let core = match self.threads[tid].state {
            ThreadRunState::Running(c) => c,
            _ => return,
        };
        self.leave_core(tid);
        self.threads[tid].state = ThreadRunState::Ready;
        self.threads[tid].ready_since = self.now;
        let next = self.policy.pick(core, self.now);
        let t = &self.threads[tid];
        // A voluntary yield surrenders the affinity claim: requeueing with `last_core`
        // set would put the yielder in its core's queue, where affinity-first picking
        // hands the core back to it (or a fellow spinner) ahead of older ready threads —
        // a yield storm between barrier spinners then starves everybody else.
        let ready = ReadyThread {
            id: tid,
            process: t.process,
            last_core: None,
            vruntime: t.vruntime,
        };
        self.policy.enqueue(ready, self.now);
        if let Some(next) = next {
            self.place(next, core);
        }
    }

    fn preempt(&mut self, tid: ThreadId) {
        self.metrics.preemptions += 1;
        self.threads[tid].stats.preemptions += 1;
        if self.locks_held[tid] > 0 {
            self.metrics.lock_holder_preemptions += 1;
        }
        self.deschedule_to_ready(tid);
    }

    fn finish_thread(&mut self, tid: ThreadId) {
        self.leave_core(tid);
        let parent = self.threads[tid].parent;
        {
            let t = &mut self.threads[tid];
            t.state = ThreadRunState::Finished;
            t.block_reason = BlockReason::None;
            t.finish = Some(self.now);
        }
        self.metrics.threads_finished += 1;
        if let Some(p) = parent {
            self.threads[p].live_children -= 1;
            if self.threads[p].live_children == 0
                && self.threads[p].state == ThreadRunState::Blocked
                && self.threads[p].block_reason == BlockReason::Join
            {
                self.threads[p].block_reason = BlockReason::None;
                self.make_ready(p);
            }
        }
    }

    /// Dispatch ready threads onto every idle core, returning how many were placed. Two
    /// passes: first give every idle core a thread that prefers it (affinity), then fill
    /// the remaining idle cores with anything else (work conservation).
    fn dispatch_idle_cores(&mut self) -> usize {
        let mut placed = 0;
        for core in 0..self.cores.len() {
            if self.cores[core].is_some() {
                continue;
            }
            if let Some(tid) = self.policy.pick_affine(core, self.now) {
                self.place(tid, core);
                placed += 1;
            }
        }
        for core in 0..self.cores.len() {
            if self.cores[core].is_some() {
                continue;
            }
            if let Some(tid) = self.policy.pick(core, self.now) {
                self.place(tid, core);
                placed += 1;
            }
        }
        placed
    }

    /// Put a ready thread on an idle core and continue its program.
    fn place(&mut self, tid: ThreadId, core: usize) {
        debug_assert!(self.cores[core].is_none());
        debug_assert_eq!(self.threads[tid].state, ThreadRunState::Ready);
        // Idle-time accounting for the core.
        self.metrics.idle_time += self.now.saturating_sub(self.core_idle_since[core]);
        // Wait-time accounting for the thread.
        let waited = self.now.saturating_sub(self.threads[tid].ready_since);
        self.threads[tid].stats.wait_time += waited;
        // Context switch / migration overhead.
        let mut overhead = SimTime::ZERO;
        if self.core_last_thread[core] != Some(tid) {
            self.metrics.context_switches += 1;
            overhead += self.machine.ctx_switch_cost;
        }
        if let Some(prev) = self.threads[tid].last_core {
            if prev != core {
                self.metrics.migrations += 1;
                self.threads[tid].stats.migrations += 1;
                overhead += self.machine.migration_cost;
                if !self.machine.same_socket(prev, core) {
                    self.metrics.cross_socket_migrations += 1;
                    self.threads[tid].stats.cross_socket_migrations += 1;
                    overhead += self.machine.cross_socket_penalty;
                }
            }
        }
        self.pending_overhead[tid] += overhead;
        // First-touch: the process's home node is wherever its first thread lands.
        let process = self.threads[tid].process;
        if self.process_home[process].is_none() {
            self.process_home[process] = Some(self.machine.socket_of(core));
        }
        // Mount the thread.
        self.cores_used[tid].insert(core);
        self.cores[core] = Some(tid);
        self.core_last_thread[core] = Some(tid);
        self.threads[tid].state = ThreadRunState::Running(core);
        self.threads[tid].last_core = Some(core);
        self.threads[tid].stats.dispatches += 1;
        self.on_core_since[tid] = self.now;
        self.spinning[tid] = false;
        self.run_seq[tid] += 1;
        // Arm the preemption quantum.
        if let Some(q) = self.policy.preemption_quantum() {
            let seq = self.run_seq[tid];
            self.push_event(
                self.now + q,
                EventKind::Quantum {
                    thread: tid,
                    run_seq: seq,
                },
            );
        }
        // Resume a preempted busy-waiter, or continue the program.
        if matches!(self.threads[tid].block_reason, BlockReason::BarrierSpin(_)) {
            self.set_spinning(tid, true);
            if let Some(BarrierWaitKind::SpinYield { slice }) = self.spin_kind[tid] {
                self.op_seq[tid] += 1;
                let seq = self.op_seq[tid];
                self.push_event(
                    self.now + slice,
                    EventKind::SpinSlice {
                        thread: tid,
                        op_seq: seq,
                    },
                );
            }
            return;
        }
        self.continue_thread(tid);
    }

    /// Execute the thread's program from its current op until it blocks, yields, starts a
    /// timed phase or finishes. Must be called with the thread running on a core.
    fn continue_thread(&mut self, tid: ThreadId) {
        loop {
            let pc = self.threads[tid].pc;
            let program = ProgramRef::clone(&self.threads[tid].program);
            if pc >= program.ops().len() {
                self.finish_thread(tid);
                return;
            }
            match program.ops()[pc].clone() {
                Op::Compute { work, bw_gbps } => {
                    {
                        let t = &mut self.threads[tid];
                        if t.remaining_work == SimTime::ZERO {
                            t.remaining_work = work;
                        }
                        t.remaining_work += self.pending_overhead[tid];
                        t.current_bw = bw_gbps;
                    }
                    self.pending_overhead[tid] = SimTime::ZERO;
                    self.computing.insert(tid);
                    self.bandwidth_changed();
                    self.schedule_op_complete(tid);
                    return;
                }
                Op::Lock(id) => {
                    let lock = self.locks.entry(id).or_default();
                    if lock.owner.is_none() {
                        lock.owner = Some(tid);
                        self.locks_held[tid] += 1;
                        self.threads[tid].pc += 1;
                    } else {
                        lock.waiters.push_back(tid);
                        self.block(tid, BlockReason::Lock(id));
                        return;
                    }
                }
                Op::Unlock(id) => {
                    self.threads[tid].pc += 1;
                    let next = {
                        let lock = self.locks.entry(id).or_default();
                        if lock.owner == Some(tid) {
                            self.locks_held[tid] = self.locks_held[tid].saturating_sub(1);
                            match lock.waiters.pop_front() {
                                Some(w) => {
                                    lock.owner = Some(w);
                                    Some(w)
                                }
                                None => {
                                    lock.owner = None;
                                    None
                                }
                            }
                        } else {
                            None
                        }
                    };
                    if let Some(w) = next {
                        // Ownership handoff: the waiter resumes past its Lock op.
                        self.locks_held[w] += 1;
                        self.threads[w].pc += 1;
                        self.threads[w].block_reason = BlockReason::None;
                        self.make_ready(w);
                    }
                }
                Op::Barrier {
                    id,
                    participants,
                    kind,
                } => {
                    self.threads[tid].pc += 1;
                    let (released, waiters) = {
                        let bar = self.barriers.entry(id).or_default();
                        bar.arrived += 1;
                        if bar.arrived >= participants {
                            bar.arrived = 0;
                            (true, std::mem::take(&mut bar.waiting))
                        } else {
                            bar.waiting.push(tid);
                            (false, Vec::new())
                        }
                    };
                    if released {
                        for w in waiters {
                            self.release_barrier_waiter(w);
                        }
                        // The last arriver continues immediately.
                    } else {
                        match kind {
                            BarrierWaitKind::Block => {
                                self.block(tid, BlockReason::Barrier(id));
                                return;
                            }
                            BarrierWaitKind::Spin => {
                                self.threads[tid].block_reason = BlockReason::BarrierSpin(id);
                                self.spin_kind[tid] = Some(kind);
                                self.set_spinning(tid, true);
                                return;
                            }
                            BarrierWaitKind::SpinYield { slice } => {
                                self.threads[tid].block_reason = BlockReason::BarrierSpin(id);
                                self.spin_kind[tid] = Some(kind);
                                self.set_spinning(tid, true);
                                self.op_seq[tid] += 1;
                                let seq = self.op_seq[tid];
                                self.push_event(
                                    self.now + slice,
                                    EventKind::SpinSlice {
                                        thread: tid,
                                        op_seq: seq,
                                    },
                                );
                                return;
                            }
                        }
                    }
                }
                Op::Sleep(d) => {
                    self.threads[tid].pc += 1;
                    self.block(tid, BlockReason::Sleep);
                    self.push_event(self.now + d, EventKind::SleepDone { thread: tid });
                    return;
                }
                Op::Yield => {
                    self.threads[tid].pc += 1;
                    self.metrics.yields += 1;
                    let useful = match self.threads[tid].state {
                        // Only threads eligible on *this* core make switching useful —
                        // work pinned to other cores cannot take it over.
                        ThreadRunState::Running(core) => self.policy.has_ready_for(core),
                        _ => self.policy.has_ready(),
                    };
                    if useful {
                        self.yield_core(tid);
                        return;
                    }
                }
                Op::Signal(id) => {
                    self.threads[tid].pc += 1;
                    let woken = {
                        let ev = self.events.entry(id).or_default();
                        ev.count += 1;
                        let count = ev.count;
                        let (ready, still): (Vec<_>, Vec<_>) = std::mem::take(&mut ev.waiters)
                            .into_iter()
                            .partition(|(_, need)| *need <= count);
                        ev.waiters = still;
                        ready
                    };
                    for (w, _) in woken {
                        self.threads[w].block_reason = BlockReason::None;
                        self.make_ready(w);
                    }
                }
                Op::WaitEvent { id, count } => {
                    let satisfied = {
                        let ev = self.events.entry(id).or_default();
                        if ev.count >= count {
                            true
                        } else {
                            ev.waiters.push((tid, count));
                            false
                        }
                    };
                    if satisfied {
                        self.threads[tid].pc += 1;
                    } else {
                        self.block(tid, BlockReason::Event(id));
                        return;
                    }
                }
                Op::Spawn {
                    program,
                    process,
                    count,
                } => {
                    self.threads[tid].pc += 1;
                    for _ in 0..count {
                        let child =
                            self.add_thread_at(process, ProgramRef::clone(&program), self.now);
                        self.threads[child].parent = Some(tid);
                        self.threads[tid].live_children += 1;
                    }
                }
                Op::JoinChildren => {
                    if self.threads[tid].live_children == 0 {
                        self.threads[tid].pc += 1;
                    } else {
                        self.block(tid, BlockReason::Join);
                        return;
                    }
                }
                Op::UnitMark(unit) => {
                    self.threads[tid].pc += 1;
                    self.unit_marks[tid].push((unit, self.now));
                }
            }
        }
    }

    /// A barrier round completed: wake or resume one waiter.
    fn release_barrier_waiter(&mut self, w: ThreadId) {
        match self.threads[w].state {
            ThreadRunState::Blocked => {
                self.threads[w].block_reason = BlockReason::None;
                self.make_ready(w);
            }
            ThreadRunState::Running(_) => {
                // The waiter is busy-waiting on a core: it proceeds immediately.
                self.threads[w].block_reason = BlockReason::None;
                self.spin_kind[w] = None;
                self.op_seq[w] += 1; // invalidate any pending SpinSlice
                self.set_spinning(w, false);
                self.continue_thread(w);
            }
            ThreadRunState::Ready => {
                // A preempted busy-waiter: it simply continues past the barrier when it is
                // next dispatched.
                self.threads[w].block_reason = BlockReason::None;
                self.spin_kind[w] = None;
            }
            ThreadRunState::Finished | ThreadRunState::NotStarted => {}
        }
    }

    // -------------------------------------------------------------------------------------
    // Event handling and the main loop
    // -------------------------------------------------------------------------------------

    fn handle(&mut self, ev: QueuedEvent) {
        match ev.kind {
            EventKind::Arrival(tid) => {
                if self.threads[tid].state == ThreadRunState::NotStarted {
                    self.make_ready(tid);
                }
            }
            EventKind::OpComplete { thread, op_seq } => {
                if self.op_seq[thread] != op_seq {
                    return;
                }
                if !matches!(self.threads[thread].state, ThreadRunState::Running(_)) {
                    return;
                }
                self.computing.remove(&thread);
                self.bandwidth_changed();
                {
                    let t = &mut self.threads[thread];
                    t.remaining_work = SimTime::ZERO;
                    t.current_bw = 0.0;
                    t.pc += 1;
                }
                self.op_seq[thread] += 1;
                self.continue_thread(thread);
            }
            EventKind::Quantum { thread, run_seq } => {
                if self.run_seq[thread] != run_seq {
                    return;
                }
                let ThreadRunState::Running(core) = self.threads[thread].state else {
                    return;
                };
                // Preempt only when some queued thread may actually run on this core;
                // preempting for work that is pinned elsewhere would inflate the
                // preemption counters and re-dispatch the same thread.
                if self.policy.has_ready_for(core) {
                    self.preempt(thread);
                } else if let Some(q) = self.policy.preemption_quantum() {
                    let seq = self.run_seq[thread];
                    self.push_event(
                        self.now + q,
                        EventKind::Quantum {
                            thread,
                            run_seq: seq,
                        },
                    );
                }
            }
            EventKind::SleepDone { thread } => {
                if self.threads[thread].state == ThreadRunState::Blocked
                    && self.threads[thread].block_reason == BlockReason::Sleep
                {
                    self.threads[thread].block_reason = BlockReason::None;
                    self.make_ready(thread);
                }
            }
            EventKind::SpinSlice { thread, op_seq } => {
                if self.op_seq[thread] != op_seq {
                    return;
                }
                if !matches!(self.threads[thread].state, ThreadRunState::Running(_))
                    || !matches!(
                        self.threads[thread].block_reason,
                        BlockReason::BarrierSpin(_)
                    )
                {
                    return;
                }
                // The spinning thread reaches its sched_yield.
                self.metrics.yields += 1;
                let useful = match self.threads[thread].state {
                    ThreadRunState::Running(core) => self.policy.has_ready_for(core),
                    _ => self.policy.has_ready(),
                };
                if useful {
                    self.yield_core(thread);
                } else if let Some(BarrierWaitKind::SpinYield { slice }) = self.spin_kind[thread] {
                    self.op_seq[thread] += 1;
                    let seq = self.op_seq[thread];
                    self.push_event(
                        self.now + slice,
                        EventKind::SpinSlice {
                            thread,
                            op_seq: seq,
                        },
                    );
                }
            }
        }
    }

    /// Run the simulation to completion and produce the report.
    pub fn run(mut self) -> SimReport {
        let processes = self.processes.clone();
        self.policy.init(&self.machine, &processes);
        loop {
            let Some(ev) = self.queue.pop() else {
                // The timed-event queue drained, but placing ready threads can still make
                // progress (a placement either schedules a new timed event or runs
                // instant ops — barrier arrivals, joins — to completion). Without this,
                // a policy with no periodic events (SCHED_COOP has no preemption
                // quantum) ends the run spuriously whenever a release chain frees cores
                // in the same step that emptied the queue, stranding Ready threads.
                if self.dispatch_idle_cores() == 0 {
                    break;
                }
                continue;
            };
            if ev.time > self.max_sim_time {
                self.deadlocked = true;
                break;
            }
            // Advance time and lazily update compute progress with the old factor.
            let new_now = ev.time.max(self.now);
            self.advance_compute_progress(new_now);
            self.now = new_now;
            self.handle(ev);
            self.dispatch_idle_cores();
            if self.metrics.threads_finished as usize == self.threads.len() {
                // Everything is done; leftover events (re-armed quanta, stale timers) must
                // not inflate the makespan.
                break;
            }
        }
        self.finalize()
    }

    fn finalize(mut self) -> SimReport {
        let makespan = self
            .threads
            .iter()
            .filter_map(|t| t.finish)
            .max()
            .unwrap_or(self.now);
        // Account residual idle time.
        for core in 0..self.cores.len() {
            if self.cores[core].is_none() {
                self.metrics.idle_time += makespan.saturating_sub(self.core_idle_since[core]);
            }
        }
        let unfinished = self.threads.iter().any(|t| !t.is_finished());
        if unfinished {
            self.deadlocked = true;
            if std::env::var_os("USF_SIM_DEBUG").is_some() {
                let mut by_state: HashMap<String, usize> = HashMap::new();
                for t in self.threads.iter().filter(|t| !t.is_finished()) {
                    *by_state
                        .entry(format!("{:?}/{:?}", t.state, t.block_reason))
                        .or_insert(0) += 1;
                }
                eprintln!(
                    "simsched deadlock at {:?}: ready_count={} idle_cores={} stuck={:?}",
                    self.now,
                    self.policy.ready_count(),
                    self.cores.iter().filter(|c| c.is_none()).count(),
                    by_state
                );
                let mut drained = Vec::new();
                while let Some(t) = self.policy.pick(0, self.now) {
                    drained.push(t);
                    if drained.len() > 10_000 {
                        break;
                    }
                }
                let states: Vec<String> = drained
                    .iter()
                    .take(5)
                    .map(|&t| {
                        format!(
                            "t{t}:{:?}/{:?}",
                            self.threads[t].state, self.threads[t].block_reason
                        )
                    })
                    .collect();
                eprintln!(
                    "post-mortem pick drained {} entries; first: {states:?}",
                    drained.len()
                );
            }
        }
        let mut report = SimReportData {
            makespan,
            metrics: self.metrics.clone(),
            deadlocked: self.deadlocked,
            bw_trace: std::mem::take(&mut self.bw_trace),
            ..Default::default()
        };
        for t in &self.threads {
            report.thread_stats.insert(t.id, t.stats);
            report.thread_times.insert(t.id, (t.arrival, t.finish));
            if !self.unit_marks[t.id].is_empty() {
                report
                    .unit_marks
                    .insert(t.id, std::mem::take(&mut self.unit_marks[t.id]));
            }
            report
                .thread_cores
                .insert(t.id, std::mem::take(&mut self.cores_used[t.id]));
            if let Some(f) = t.finish {
                let entry = report
                    .process_completion
                    .entry(t.process)
                    .or_insert(SimTime::ZERO);
                *entry = (*entry).max(f);
            }
        }
        report
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("policy", &self.policy_label)
            .field("cores", &self.machine.cores())
            .field("threads", &self.threads.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn fair_engine(cores: usize) -> Engine {
        Engine::new(Machine::small(cores), &SchedModel::Fair)
    }

    fn coop_engine(cores: usize) -> Engine {
        Engine::new(Machine::small(cores), &SchedModel::coop_default())
    }

    #[test]
    fn single_thread_compute_runs_for_its_work() {
        let mut e = fair_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(10)).build();
        e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        assert_eq!(r.metrics.threads_finished, 1);
        // Makespan ≈ work + one context switch.
        assert!(r.makespan >= SimTime::from_millis(10));
        assert!(r.makespan < SimTime::from_millis(11));
    }

    #[test]
    fn two_independent_threads_on_two_cores_run_in_parallel() {
        for model in [SchedModel::Fair, SchedModel::coop_default()] {
            let mut e = Engine::new(Machine::small(2), &model);
            let p = e.add_process("p", 1.0);
            let prog = Program::new("t").compute(SimTime::from_millis(10)).build();
            e.add_thread(p, ProgramRef::clone(&prog));
            e.add_thread(p, prog);
            let r = e.run();
            assert!(!r.deadlocked);
            assert!(
                r.makespan < SimTime::from_millis(12),
                "parallel run should take ~10ms, got {}",
                r.makespan
            );
        }
    }

    #[test]
    fn oversubscribed_fair_time_slices_and_preempts() {
        let mut e = fair_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(20)).build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        assert!(
            r.metrics.preemptions > 0,
            "fair scheduling must preempt on the quantum"
        );
        assert!(r.makespan >= SimTime::from_millis(40));
    }

    #[test]
    fn oversubscribed_coop_never_preempts() {
        let mut e = coop_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(20)).build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        assert_eq!(r.metrics.preemptions, 0);
        assert!(r.makespan >= SimTime::from_millis(40));
    }

    #[test]
    fn lock_contention_serializes_critical_sections() {
        let mut e = fair_engine(2);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("cs")
            .critical_section(1, SimTime::from_millis(5))
            .build();
        for _ in 0..4 {
            e.add_thread(p, ProgramRef::clone(&prog));
        }
        let r = e.run();
        assert!(!r.deadlocked);
        // 4 critical sections of 5ms on one lock → at least 20ms regardless of 2 cores.
        assert!(r.makespan >= SimTime::from_millis(20));
    }

    #[test]
    fn blocking_barrier_synchronizes() {
        let mut e = coop_engine(2);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("b")
            .compute(SimTime::from_millis(1))
            .barrier(1, 3, BarrierWaitKind::Block)
            .compute(SimTime::from_millis(1))
            .build();
        for _ in 0..3 {
            e.add_thread(p, ProgramRef::clone(&prog));
        }
        let r = e.run();
        assert!(!r.deadlocked);
        assert_eq!(r.metrics.threads_finished, 3);
    }

    #[test]
    fn spin_barrier_without_yield_deadlocks_under_coop() {
        // 2 participants, 1 core, cooperative scheduling, pure spinning: the paper's §4.4
        // limitation — the spinner never releases the core, the second thread never runs.
        let mut e = coop_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("b")
            .barrier(1, 2, BarrierWaitKind::Spin)
            .build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        e.set_max_sim_time(SimTime::from_secs(10));
        let r = e.run();
        assert!(
            r.deadlocked,
            "pure spin barrier must deadlock under SCHED_COOP when oversubscribed"
        );
    }

    #[test]
    fn spin_barrier_with_yield_completes_under_coop() {
        let mut e = coop_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("b")
            .barrier(
                1,
                2,
                BarrierWaitKind::SpinYield {
                    slice: SimTime::from_micros(50),
                },
            )
            .compute(SimTime::from_millis(1))
            .build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(
            !r.deadlocked,
            "yielding busy-wait must let the second thread run"
        );
        assert_eq!(r.metrics.threads_finished, 2);
        assert!(r.metrics.yields > 0);
    }

    #[test]
    fn spin_barrier_completes_under_fair_but_wastes_time() {
        let mut e = fair_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("b")
            .barrier(1, 2, BarrierWaitKind::Spin)
            .compute(SimTime::from_millis(1))
            .build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(
            !r.deadlocked,
            "the preemptive scheduler masks the busy-wait into a performance problem"
        );
        assert!(r.metrics.spin_time > SimTime::ZERO);
        // The spinner burnt at least one quantum before the other thread could arrive.
        assert!(r.makespan >= Machine::small(1).preemption_quantum);
    }

    #[test]
    fn sleep_releases_the_core() {
        let mut e = coop_engine(1);
        let p = e.add_process("p", 1.0);
        let sleeper = Program::new("s")
            .sleep(SimTime::from_millis(50))
            .compute(SimTime::from_millis(1))
            .build();
        let worker = Program::new("w").compute(SimTime::from_millis(5)).build();
        e.add_thread(p, sleeper);
        e.add_thread(p, worker);
        let r = e.run();
        assert!(!r.deadlocked);
        // The worker must have finished long before the sleeper woke up.
        let worker_finish = r.thread_times[&1].1.unwrap();
        assert!(worker_finish < SimTime::from_millis(20));
        assert!(r.makespan >= SimTime::from_millis(50));
    }

    #[test]
    fn events_signal_and_wait() {
        let mut e = coop_engine(2);
        let p = e.add_process("p", 1.0);
        let producer = Program::new("prod")
            .compute(SimTime::from_millis(2))
            .signal(7)
            .compute(SimTime::from_millis(1))
            .signal(7)
            .build();
        let consumer = Program::new("cons")
            .wait_event(7, 2)
            .compute(SimTime::from_millis(1))
            .build();
        e.add_thread(p, consumer);
        e.add_thread(p, producer);
        let r = e.run();
        assert!(!r.deadlocked);
        let consumer_finish = r.thread_times[&0].1.unwrap();
        assert!(
            consumer_finish >= SimTime::from_millis(3),
            "consumer must wait for both signals"
        );
    }

    #[test]
    fn spawn_and_join_children() {
        let mut e = coop_engine(2);
        let p = e.add_process("p", 1.0);
        let child = Program::new("child")
            .compute(SimTime::from_millis(3))
            .build();
        let parent = Program::new("parent")
            .compute(SimTime::from_millis(1))
            .spawn(child, p, 4)
            .join_children()
            .compute(SimTime::from_millis(1))
            .build();
        e.add_thread(p, parent);
        let r = e.run();
        assert!(!r.deadlocked);
        assert_eq!(r.metrics.threads_finished, 5);
        // 4 children of 3ms on 2 cores (parent's core is free while it joins) → ≥ 6ms.
        assert!(r.makespan >= SimTime::from_millis(7));
    }

    #[test]
    fn bandwidth_contention_slows_compute() {
        // Two threads each demanding 80 GB/s on a 100 GB/s machine: together they exceed the
        // cap and must take ~1.6x longer than alone.
        let mut solo = fair_engine(2);
        let p = solo.add_process("p", 1.0);
        let prog = Program::new("bw")
            .compute_bw(SimTime::from_millis(10), 80.0)
            .build();
        solo.add_thread(p, ProgramRef::clone(&prog));
        let solo_time = solo.run().makespan;

        let mut both = fair_engine(2);
        let p = both.add_process("p", 1.0);
        both.add_thread(p, ProgramRef::clone(&prog));
        both.add_thread(p, prog);
        let both_r = both.run();
        assert!(!both_r.deadlocked);
        assert!(
            both_r.makespan.as_secs_f64() > solo_time.as_secs_f64() * 1.4,
            "bandwidth-bound threads must slow each other down: solo {solo_time}, both {}",
            both_r.makespan
        );
        assert!(both_r.peak_bandwidth() <= 100.0 + 1e-9);
        assert!(both_r.average_bandwidth() > 0.0);
    }

    #[test]
    fn process_weights_bias_the_fair_scheduler() {
        // Two processes on one core, one with 10x the weight: the heavy one finishes a long
        // run earlier.
        let mut e = fair_engine(1);
        let heavy = e.add_process("heavy", 1.0);
        let light = e.add_process("light", 0.1);
        let prog = Program::new("t").compute(SimTime::from_millis(50)).build();
        let h = e.add_thread(heavy, ProgramRef::clone(&prog));
        let l = e.add_thread(light, prog);
        let r = e.run();
        let h_fin = r.thread_times[&h].1.unwrap();
        let l_fin = r.thread_times[&l].1.unwrap();
        assert!(
            h_fin < l_fin,
            "heavier process must finish first ({h_fin} vs {l_fin})"
        );
    }

    #[test]
    fn lock_holder_preemption_is_detected_under_fair() {
        // Many threads contending a lock with long critical sections on one core: the fair
        // scheduler will sooner or later preempt the holder.
        let mut e = fair_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("cs")
            .critical_section(1, SimTime::from_millis(10))
            .build();
        for _ in 0..4 {
            e.add_thread(p, ProgramRef::clone(&prog));
        }
        let r = e.run();
        assert!(r.metrics.lock_holder_preemptions > 0);
    }

    #[test]
    fn report_process_completion_and_turnaround() {
        let mut e = coop_engine(2);
        let pa = e.add_process("a", 1.0);
        let pb = e.add_process("b", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(5)).build();
        e.add_thread(pa, ProgramRef::clone(&prog));
        e.add_thread_at(pb, prog, SimTime::from_millis(10));
        let r = e.run();
        assert_eq!(r.process_completion.len(), 2);
        assert!(r.process_completion[&pb] > r.process_completion[&pa]);
        let mean = r.mean_turnaround(|_| true).unwrap();
        assert!(mean >= SimTime::from_millis(5));
    }

    #[test]
    fn unit_marks_stamp_virtual_time_without_cost() {
        let mut e = coop_engine(1);
        let p = e.add_process("p", 1.0);
        let prog = Program::new("m")
            .compute(SimTime::from_millis(3))
            .unit_mark(0)
            .compute(SimTime::from_millis(5))
            .unit_mark(1)
            .build();
        e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        let marks = &r.unit_marks[&0];
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].0, 0);
        assert_eq!(marks[1].0, 1);
        // Marks land at the compute boundaries (plus the context-switch overhead) and the
        // second is ~5ms after the first — the mark itself costs nothing.
        assert!(marks[0].1 >= SimTime::from_millis(3));
        assert!(marks[0].1 < SimTime::from_millis(4));
        let delta = marks[1].1.saturating_sub(marks[0].1);
        assert_eq!(delta, SimTime::from_millis(5));
        assert_eq!(marks[1].1, r.makespan);
        // The placement trace records the single core.
        assert_eq!(r.thread_cores[&0].iter().copied().collect::<Vec<_>>(), [0]);
    }

    #[test]
    fn restricted_processes_never_leave_their_cores() {
        // Two processes pinned to opposite sockets, both oversubscribing their half: under
        // both placement-aware policies no thread may ever be dispatched outside its pin,
        // so the measured cross-socket migration counter must be exactly zero.
        for model in [SchedModel::Fair, SchedModel::coop_default()] {
            let mut e = Engine::new(Machine::small_numa(4, 2), &model);
            let a = e.add_process("a", 1.0);
            let b = e.add_process("b", 1.0);
            e.restrict_process(a, vec![0, 1]);
            e.restrict_process(b, vec![2, 3]);
            let body = Program::new("phase")
                .compute(SimTime::from_millis(1))
                .sleep(SimTime::from_millis(1));
            let prog = Program::new("t").repeat(8, &body).build();
            for _ in 0..4 {
                e.add_thread(a, ProgramRef::clone(&prog));
                e.add_thread(b, ProgramRef::clone(&prog));
            }
            let r = e.run();
            assert!(!r.deadlocked, "{model:?}");
            for (tid, cores) in &r.thread_cores {
                let node0 = tid % 2 == 0; // threads alternate a, b, a, b, …
                for &c in cores {
                    assert_eq!(
                        c < 2,
                        node0,
                        "thread {tid} escaped its pin to core {c} under {model:?}"
                    );
                }
            }
            assert_eq!(r.metrics.cross_socket_migrations, 0, "{model:?}");
            let (migs, cross) = r.migrations_for(&[0, 2, 4, 6]);
            assert_eq!(cross, 0);
            let _ = migs;
        }
    }

    #[test]
    fn work_pinned_elsewhere_does_not_preempt_a_full_node() {
        // Process A exactly fills node 0; process B is pinned to node 1 and
        // oversubscribes it, so B's masked queue is never empty. A's threads must not be
        // quantum-preempted for work that can only run on node 1 — only B's threads pay
        // preemptions.
        let mut e = Engine::new(Machine::small_numa(4, 2), &SchedModel::Fair);
        let a = e.add_process("a", 1.0);
        let b = e.add_process("b", 1.0);
        e.restrict_process(a, vec![0, 1]);
        e.restrict_process(b, vec![2, 3]);
        let prog = Program::new("t").compute(SimTime::from_millis(20)).build();
        let a_threads: Vec<ThreadId> = (0..2)
            .map(|_| e.add_thread(a, ProgramRef::clone(&prog)))
            .collect();
        for _ in 0..4 {
            e.add_thread(b, ProgramRef::clone(&prog));
        }
        let r = e.run();
        assert!(!r.deadlocked);
        for tid in &a_threads {
            assert_eq!(
                r.thread_stats[tid].preemptions, 0,
                "thread {tid} of the full node was preempted for unrunnable work"
            );
        }
        let b_preemptions: u64 = r
            .thread_stats
            .iter()
            .filter(|(tid, _)| !a_threads.contains(tid))
            .map(|(_, s)| s.preemptions)
            .sum();
        assert!(
            b_preemptions > 0,
            "the oversubscribed pinned node must still time-slice"
        );
    }

    #[test]
    fn remote_numa_penalty_slows_off_home_compute() {
        // Two threads of one process on a 2-core, 2-socket machine with a 2x remote
        // penalty: the first dispatch (core 0) fixes the home node; the thread mounted on
        // core 1 computes at half speed.
        let mut machine = Machine::small_numa(2, 2);
        machine.remote_numa_penalty = 2.0;
        let mut e = Engine::new(machine, &SchedModel::coop_default());
        let p = e.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(10)).build();
        let local = e.add_thread(p, ProgramRef::clone(&prog));
        let remote = e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        let local_fin = r.thread_times[&local].1.unwrap();
        let remote_fin = r.thread_times[&remote].1.unwrap();
        assert!(
            local_fin < SimTime::from_millis(11),
            "home-node thread runs at full speed ({local_fin})"
        );
        assert!(
            remote_fin >= SimTime::from_millis(20),
            "remote thread must take ~2x ({remote_fin})"
        );
        assert!(remote_fin < SimTime::from_millis(22));
        // With the penalty disabled (the default), both finish together.
        let mut e = Engine::new(Machine::small_numa(2, 2), &SchedModel::coop_default());
        let p = e.add_process("p", 1.0);
        let prog = Program::new("t").compute(SimTime::from_millis(10)).build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(r.makespan < SimTime::from_millis(11));
    }

    #[test]
    fn cross_socket_migrations_are_counted_when_they_happen() {
        // A staggered arrival on a 2-core, 2-socket machine forces one deterministic
        // cross-socket hop under the fair policy: A and B mount cores 0/1 at t=0, C
        // arrives at 1 ms and queues; at the 4 ms quantum A is preempted from core 0 (C
        // takes it, lowest clamped vruntime), B is preempted from core 1 and A — now the
        // lowest-vruntime ready thread — is dispatched there: core 0 → core 1 crosses
        // the socket boundary.
        let mut e = Engine::new(Machine::small_numa(2, 2), &SchedModel::Fair);
        let p = e.add_process("p", 1.0);
        let long = Program::new("long")
            .compute(SimTime::from_millis(30))
            .build();
        e.add_thread(
            p,
            Program::new("a").compute(SimTime::from_millis(10)).build(),
        );
        e.add_thread(p, ProgramRef::clone(&long));
        e.add_thread_at(p, long, SimTime::from_millis(1));
        let r = e.run();
        assert!(!r.deadlocked);
        let total_cross: u64 = r
            .thread_stats
            .values()
            .map(|s| s.cross_socket_migrations)
            .sum();
        assert_eq!(r.metrics.cross_socket_migrations, total_cross);
        assert!(
            total_cross > 0,
            "an unpinned oversubscribed run on a 2-socket machine must migrate across \
             sockets at least once"
        );
        assert!(r.metrics.migrations >= total_cross);
    }

    #[test]
    fn coop_affinity_keeps_threads_on_their_core() {
        let mut e = coop_engine(2);
        let p = e.add_process("p", 1.0);
        // Threads that repeatedly compute briefly and sleep: each wake-up should go back to
        // the same core under SCHED_COOP.
        let body = Program::new("phase")
            .compute(SimTime::from_millis(1))
            .sleep(SimTime::from_millis(1));
        let prog = Program::new("t").repeat(10, &body).build();
        e.add_thread(p, ProgramRef::clone(&prog));
        e.add_thread(p, prog);
        let r = e.run();
        assert!(!r.deadlocked);
        let total_migrations: u64 = r.thread_stats.values().map(|s| s.migrations).sum();
        assert_eq!(
            total_migrations, 0,
            "SCHED_COOP must keep waking threads on their preferred cores"
        );
    }
}
