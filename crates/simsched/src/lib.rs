//! `usf-simsched` — a discrete-event simulator of thread scheduling on an oversubscribed
//! multicore node.
//!
//! The paper evaluates USF/SCHED_COOP on a Marenostrum 5 node (2 × 56-core Sapphire Rapids,
//! Table 1) with hundreds of threads. This repository is built and tested on small machines,
//! so the evaluation-scale experiments are reproduced on this simulator instead (see
//! DESIGN.md, substitution table). The simulator models exactly the mechanisms the paper
//! attributes its results to:
//!
//! * a **preemptive fair scheduler** ([`sched::FairScheduler`], EEVDF/CFS-like: weighted
//!   virtual runtime, a preemption quantum, migrations) — the baseline Linux behaviour;
//! * the **SCHED_COOP cooperative scheduler** ([`sched::CoopScheduler`]): per-process
//!   per-core FIFO queues, affinity → socket → anywhere placement, a per-process quantum
//!   evaluated only at scheduling points, and *no* involuntary preemption;
//! * **static partitioning** ([`sched::PartitionedScheduler`]) for the bl-eq / bl-opt
//!   microservices baselines;
//! * **synchronization objects** with the behaviours that matter under oversubscription:
//!   mutexes (lock-holder preemption), blocking barriers, and busy-wait barriers with or
//!   without a yield (the OpenBLAS/BLIS/MPICH pattern of §5.2);
//! * **context-switch and migration costs** and a **memory-bandwidth contention model**
//!   (processor sharing of a node-wide GB/s cap) used by the LAMMPS/DeePMD experiment.
//!
//! Workloads are [`program::Program`]s — sequences of operations (compute with optional
//! bandwidth demand, lock/unlock, barriers, sleep, yield, event signal/wait, spawning child
//! programs) — instantiated as [`thread::SimThread`]s and executed by the [`engine::Engine`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod machine;
pub mod metrics;
pub mod program;
pub mod replay;
pub mod sched;
pub mod thread;
pub mod time;

pub use engine::{Engine, SimReport};
pub use machine::Machine;
pub use metrics::SimMetrics;
pub use program::{BarrierWaitKind, Op, Program, ProgramRef};
pub use replay::{assert_replays_clean, replay, Divergence, ReplayReport};
pub use sched::{CoopScheduler, FairScheduler, PartitionedScheduler, SchedModel};
pub use thread::{ProcessDesc, ProcessId, ThreadId};
pub use time::SimTime;
