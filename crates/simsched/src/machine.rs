//! Simulated machine description.
//!
//! The NUMA structure is **not** described here with private core→socket math any more:
//! [`Machine`] embeds the runtime's [`usf_nosv::Topology`] — the one topology type every
//! layer (real scheduler, ready-queue, simulator, scenario lowering) shares — and all
//! socket queries delegate to it. Non-uniform node maps
//! ([`Topology::from_node_sizes`](usf_nosv::Topology::from_node_sizes)) work unchanged.

use crate::time::SimTime;
use usf_nosv::readyq::TopologyView;
use usf_nosv::{CoreId, Topology};

/// Description of the simulated node.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Core/NUMA layout of the node — the shared topology vocabulary ("sockets" in the
    /// simulator's terms are the topology's NUMA nodes).
    pub topology: Topology,
    /// Cost charged when a core switches from one thread to another (direct context-switch
    /// cost: register save/restore, scheduler work).
    pub ctx_switch_cost: SimTime,
    /// Extra cost charged when a thread resumes on a different core than it last ran on
    /// (cold caches, possibly remote NUMA traffic).
    pub migration_cost: SimTime,
    /// Additional migration cost when the new core is on a different socket.
    pub cross_socket_penalty: SimTime,
    /// Preemption quantum used by preemptive policies.
    pub preemption_quantum: SimTime,
    /// Node memory bandwidth cap in GB/s (processor-shared among running compute phases that
    /// declare a bandwidth demand).
    pub memory_bw_gbps: f64,
    /// NUMA-locality compute penalty: a thread computing on a core whose node differs
    /// from its process's *home node* (first-touch: the node where the process's first
    /// thread was dispatched) progresses `1 / remote_numa_penalty` as fast — remote DRAM
    /// latency/bandwidth, the §5.6 physics that makes socket placement matter for
    /// memory-bound pairs. `1.0` (the default everywhere) disables the model; `fig8_numa`
    /// enables it explicitly.
    pub remote_numa_penalty: f64,
}

impl Machine {
    /// A small machine useful for unit tests: `cores` cores, one socket, microsecond-scale
    /// costs, 100 GB/s.
    pub fn small(cores: usize) -> Self {
        Machine {
            topology: Topology::single_node(cores),
            ctx_switch_cost: SimTime::from_micros(2),
            migration_cost: SimTime::from_micros(5),
            cross_socket_penalty: SimTime::from_micros(5),
            preemption_quantum: SimTime::from_millis(4),
            memory_bw_gbps: 100.0,
            remote_numa_penalty: 1.0,
        }
    }

    /// [`Machine::small`] with the cores split into `sockets` NUMA nodes.
    pub fn small_numa(cores: usize, sockets: usize) -> Self {
        Machine::small(cores).with_topology(Topology::new(cores, sockets))
    }

    /// Replace the topology (builder style), keeping the cost model.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The evaluation machine of the paper (Table 1): a Marenostrum 5 node with two 56-core
    /// Intel Sapphire Rapids 8480+ sockets and 256 GiB of DDR5. The bandwidth cap matches
    /// the ~250 GB/s the paper's Figure 5b saturates at; the scheduling costs are typical
    /// Linux numbers (a few microseconds per context switch).
    pub fn marenostrum5() -> Self {
        Machine {
            topology: Topology::marenostrum5(),
            ctx_switch_cost: SimTime::from_micros(3),
            migration_cost: SimTime::from_micros(8),
            cross_socket_penalty: SimTime::from_micros(12),
            preemption_quantum: SimTime::from_millis(4),
            memory_bw_gbps: 250.0,
            remote_numa_penalty: 1.0,
        }
    }

    /// One socket (56 cores) of the evaluation machine — the configuration used by the
    /// matmul and Cholesky experiments (§5.3, §5.4).
    pub fn marenostrum5_socket() -> Self {
        Machine {
            topology: Topology::single_node(56),
            ..Machine::marenostrum5()
        }
    }

    /// Total number of cores.
    pub fn cores(&self) -> usize {
        self.topology.num_cores()
    }

    /// Number of sockets (the topology's NUMA nodes).
    pub fn sockets(&self) -> usize {
        self.topology.num_numa_nodes()
    }

    /// Socket (NUMA domain) of a core.
    pub fn socket_of(&self, core: CoreId) -> usize {
        self.topology.node_of(core)
    }

    /// Whether two cores share a socket.
    pub fn same_socket(&self, a: CoreId, b: CoreId) -> bool {
        self.topology.same_node(a, b)
    }

    /// Cores belonging to a socket.
    pub fn cores_in_socket(&self, socket: usize) -> Vec<CoreId> {
        self.topology.cores_in_node(socket).collect()
    }
}

/// The machine doubles as the topology view of the shared SCHED_COOP ready-queue
/// (`usf_nosv::readyq`) by delegating to its embedded [`Topology`].
impl TopologyView for Machine {
    fn view_cores(&self) -> usize {
        self.topology.num_cores()
    }

    fn view_node_of(&self, core: CoreId) -> usize {
        self.topology.node_of(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marenostrum_layout_matches_table1() {
        let m = Machine::marenostrum5();
        assert_eq!(m.cores(), 112);
        assert_eq!(m.sockets(), 2);
        assert_eq!(m.cores_in_socket(0).len(), 56);
        assert_eq!(m.cores_in_socket(1).len(), 56);
        assert!(m.same_socket(0, 55));
        assert!(!m.same_socket(55, 56));
        assert_eq!(Machine::marenostrum5_socket().cores(), 56);
        assert_eq!(m.topology, Topology::marenostrum5());
    }

    #[test]
    fn small_machine_single_socket() {
        let m = Machine::small(4);
        assert_eq!(m.sockets(), 1);
        assert!(m.same_socket(0, 3));
        assert_eq!(m.socket_of(3), 0);
    }

    #[test]
    fn small_numa_splits_sockets() {
        let m = Machine::small_numa(8, 2);
        assert_eq!(m.sockets(), 2);
        assert!(!m.same_socket(3, 4));
    }

    #[test]
    fn non_uniform_topologies_are_supported() {
        let m = Machine::small(1).with_topology(Topology::from_node_sizes(&[6, 2]));
        assert_eq!(m.cores(), 8);
        assert_eq!(m.cores_in_socket(0).len(), 6);
        assert_eq!(m.cores_in_socket(1), vec![6, 7]);
        assert_eq!(m.socket_of(6), 1);
    }
}
