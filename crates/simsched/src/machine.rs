//! Simulated machine description.

use crate::time::SimTime;

/// Description of the simulated node.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Total number of cores.
    pub cores: usize,
    /// Number of sockets (NUMA domains); cores are split contiguously.
    pub sockets: usize,
    /// Cost charged when a core switches from one thread to another (direct context-switch
    /// cost: register save/restore, scheduler work).
    pub ctx_switch_cost: SimTime,
    /// Extra cost charged when a thread resumes on a different core than it last ran on
    /// (cold caches, possibly remote NUMA traffic).
    pub migration_cost: SimTime,
    /// Additional migration cost when the new core is on a different socket.
    pub cross_socket_penalty: SimTime,
    /// Preemption quantum used by preemptive policies.
    pub preemption_quantum: SimTime,
    /// Node memory bandwidth cap in GB/s (processor-shared among running compute phases that
    /// declare a bandwidth demand).
    pub memory_bw_gbps: f64,
}

impl Machine {
    /// A small machine useful for unit tests: `cores` cores, one socket, microsecond-scale
    /// costs, 100 GB/s.
    pub fn small(cores: usize) -> Self {
        Machine {
            cores,
            sockets: 1,
            ctx_switch_cost: SimTime::from_micros(2),
            migration_cost: SimTime::from_micros(5),
            cross_socket_penalty: SimTime::from_micros(5),
            preemption_quantum: SimTime::from_millis(4),
            memory_bw_gbps: 100.0,
        }
    }

    /// The evaluation machine of the paper (Table 1): a Marenostrum 5 node with two 56-core
    /// Intel Sapphire Rapids 8480+ sockets and 256 GiB of DDR5. The bandwidth cap matches
    /// the ~250 GB/s the paper's Figure 5b saturates at; the scheduling costs are typical
    /// Linux numbers (a few microseconds per context switch).
    pub fn marenostrum5() -> Self {
        Machine {
            cores: 112,
            sockets: 2,
            ctx_switch_cost: SimTime::from_micros(3),
            migration_cost: SimTime::from_micros(8),
            cross_socket_penalty: SimTime::from_micros(12),
            preemption_quantum: SimTime::from_millis(4),
            memory_bw_gbps: 250.0,
        }
    }

    /// One socket (56 cores) of the evaluation machine — the configuration used by the
    /// matmul and Cholesky experiments (§5.3, §5.4).
    pub fn marenostrum5_socket() -> Self {
        Machine {
            cores: 56,
            sockets: 1,
            ..Machine::marenostrum5()
        }
    }

    /// Socket (NUMA domain) of a core.
    pub fn socket_of(&self, core: usize) -> usize {
        let per = self.cores.div_ceil(self.sockets.max(1));
        (core / per).min(self.sockets - 1)
    }

    /// Whether two cores share a socket.
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of(a) == self.socket_of(b)
    }

    /// Cores belonging to a socket.
    pub fn cores_in_socket(&self, socket: usize) -> Vec<usize> {
        (0..self.cores)
            .filter(|c| self.socket_of(*c) == socket)
            .collect()
    }
}

/// The machine model doubles as the topology view of the shared SCHED_COOP ready-queue
/// (`usf_nosv::readyq`): sockets are the NUMA nodes.
impl usf_nosv::readyq::TopologyView for Machine {
    fn view_cores(&self) -> usize {
        self.cores
    }

    fn view_node_of(&self, core: usize) -> usize {
        self.socket_of(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marenostrum_layout_matches_table1() {
        let m = Machine::marenostrum5();
        assert_eq!(m.cores, 112);
        assert_eq!(m.sockets, 2);
        assert_eq!(m.cores_in_socket(0).len(), 56);
        assert_eq!(m.cores_in_socket(1).len(), 56);
        assert!(m.same_socket(0, 55));
        assert!(!m.same_socket(55, 56));
        assert_eq!(Machine::marenostrum5_socket().cores, 56);
    }

    #[test]
    fn small_machine_single_socket() {
        let m = Machine::small(4);
        assert_eq!(m.sockets, 1);
        assert!(m.same_socket(0, 3));
        assert_eq!(m.socket_of(3), 0);
    }
}
