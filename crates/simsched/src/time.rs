//! Simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// As nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Smaller of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Larger of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Scale a duration by a factor (used by the bandwidth slowdown model).
    pub fn scale(self, factor: f64) -> SimTime {
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

/// Virtual time plugs into the shared SCHED_COOP ready-queue (`usf_nosv::readyq`) the same
/// way real [`std::time::Instant`] does, which is what lets the simulator instantiate the
/// exact policy implementation the runtime ships.
impl usf_nosv::readyq::ReadyTime for SimTime {
    type Delta = SimTime;

    fn since(self, earlier: Self) -> SimTime {
        self.saturating_sub(earlier)
    }

    fn advance(self, delta: SimTime) -> Self {
        self + delta
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs.max(1))
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimTime::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_nanos(), 8_000_000);
        assert_eq!((a - b).as_nanos(), 2_000_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert!(b < a);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!((a * 2).as_nanos(), 10_000_000);
        assert_eq!((a / 5).as_nanos(), 1_000_000);
        let total: SimTime = [a, b].into_iter().sum();
        assert_eq!(total.as_nanos(), 8_000_000);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimTime::from_nanos(1000).scale(2.0).as_nanos(), 2000);
        assert_eq!(SimTime::from_nanos(1000).scale(0.5).as_nanos(), 500);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert!(format!("{}", SimTime::from_micros(5)).contains("µs"));
        assert!(format!("{}", SimTime::from_millis(5)).contains("ms"));
        assert!(format!("{}", SimTime::from_secs(5)).contains('s'));
    }
}
