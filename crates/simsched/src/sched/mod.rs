//! Simulated scheduling policies.

mod coop;
mod fair;
mod partitioned;

pub use coop::CoopScheduler;
pub use fair::FairScheduler;
pub use partitioned::PartitionedScheduler;

use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;

/// The scheduling-relevant view of a ready thread handed to a policy.
#[derive(Debug, Clone, Copy)]
pub struct ReadyThread {
    /// Thread identifier.
    pub id: ThreadId,
    /// Owning process.
    pub process: ProcessId,
    /// Core the thread last ran on, if any.
    pub last_core: Option<usize>,
    /// Virtual runtime accumulated so far (seconds, weighted).
    pub vruntime: f64,
}

/// A simulated scheduling policy: decides which ready thread an idle core runs next and
/// whether running threads are preempted on a quantum.
pub trait SimPolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Called once before the simulation starts.
    fn init(&mut self, machine: &Machine, processes: &[ProcessDesc]);

    /// A thread became ready.
    fn enqueue(&mut self, thread: ReadyThread, now: SimTime);

    /// Core `core` is idle: pick the next thread for it (or leave it idle).
    fn pick(&mut self, core: usize, now: SimTime) -> Option<ThreadId>;

    /// Like [`SimPolicy::pick`], but only return a thread that *prefers* this core (its last
    /// core). Affinity-aware policies override this so the engine can fill idle cores with
    /// their affine threads before falling back to stealing; the default simply delegates to
    /// [`SimPolicy::pick`].
    fn pick_affine(&mut self, core: usize, now: SimTime) -> Option<ThreadId> {
        self.pick(core, now)
    }

    /// Whether any thread is currently queued.
    fn has_ready(&self) -> bool;

    /// Whether any queued thread is *eligible to run on `core`* — placement-aware
    /// policies override this so the engine's "is switching useful" checks (quantum
    /// preemption, yields) do not vacate a core for threads that are pinned elsewhere.
    /// The default ignores placement and delegates to [`SimPolicy::has_ready`].
    fn has_ready_for(&self, core: usize) -> bool {
        let _ = core;
        self.has_ready()
    }

    /// Number of queued threads.
    fn ready_count(&self) -> usize;

    /// `Some(quantum)` if running threads must be preempted after the quantum when other
    /// work is ready; `None` for purely cooperative policies.
    fn preemption_quantum(&self) -> Option<SimTime>;
}

/// Convenience descriptions of the built-in policies, used by workloads and benches.
#[derive(Debug, Clone)]
pub enum SchedModel {
    /// Preemptive weighted-fair scheduling (the Linux EEVDF/CFS baseline).
    Fair,
    /// The paper's SCHED_COOP cooperative policy with the given per-process quantum.
    Coop {
        /// Per-process quantum evaluated at scheduling points (20 ms in the paper).
        process_quantum: SimTime,
    },
    /// Static core partitioning: each process only runs on its assigned cores, scheduled
    /// fairly (preemptively) within the partition. Processes absent from the map may run
    /// anywhere.
    Partitioned {
        /// `(process, cores)` assignments.
        assignments: Vec<(ProcessId, Vec<usize>)>,
    },
}

impl SchedModel {
    /// The SCHED_COOP model with the paper's default 20 ms process quantum.
    pub fn coop_default() -> Self {
        SchedModel::Coop {
            process_quantum: SimTime::from_millis(20),
        }
    }

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            SchedModel::Fair => "linux-fair",
            SchedModel::Coop { .. } => "sched_coop",
            SchedModel::Partitioned { .. } => "partitioned",
        }
    }

    /// Instantiate the policy object.
    pub fn build(&self, machine: &Machine) -> Box<dyn SimPolicy> {
        match self {
            SchedModel::Fair => Box::new(FairScheduler::new(machine.preemption_quantum)),
            SchedModel::Coop { process_quantum } => Box::new(CoopScheduler::new(*process_quantum)),
            SchedModel::Partitioned { assignments } => Box::new(PartitionedScheduler::new(
                assignments.clone(),
                machine.preemption_quantum,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_build() {
        let m = Machine::small(4);
        assert_eq!(SchedModel::Fair.label(), "linux-fair");
        assert_eq!(SchedModel::coop_default().label(), "sched_coop");
        let part = SchedModel::Partitioned {
            assignments: vec![(0, vec![0, 1])],
        };
        assert_eq!(part.label(), "partitioned");
        assert_eq!(SchedModel::Fair.build(&m).name(), "linux-fair");
        assert_eq!(SchedModel::coop_default().build(&m).name(), "sched_coop");
        assert_eq!(part.build(&m).name(), "partitioned");
        assert!(SchedModel::Fair.build(&m).preemption_quantum().is_some());
        assert!(SchedModel::coop_default()
            .build(&m)
            .preemption_quantum()
            .is_none());
    }
}
