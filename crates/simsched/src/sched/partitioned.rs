//! Static core partitioning (the bl-eq / bl-opt baselines of §5.5).
//!
//! Every process is assigned a fixed set of cores; its threads are scheduled fairly
//! (preemptively, by vruntime) *within* that set and never run elsewhere. Processes without
//! an assignment may run on any core that is not reserved.

use super::{ReadyThread, SimPolicy};
use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;
use std::collections::{BTreeSet, HashMap};

/// See the module documentation.
#[derive(Debug)]
pub struct PartitionedScheduler {
    /// Owner process of each core (`None` = shared core usable by unassigned processes).
    core_owner: Vec<Option<ProcessId>>,
    /// Requested assignments (applied in `init`).
    assignments: Vec<(ProcessId, Vec<usize>)>,
    /// Per-process ready queues ordered by scaled vruntime.
    queues: HashMap<ProcessId, BTreeSet<(u64, ThreadId)>>,
    /// Queue for processes without an assignment.
    shared_queue: BTreeSet<(u64, ThreadId)>,
    /// Which processes have an assignment.
    assigned: HashMap<ProcessId, bool>,
    quantum: SimTime,
    min_vruntime: f64,
}

impl PartitionedScheduler {
    /// Create a partitioned scheduler from `(process, cores)` assignments.
    pub fn new(assignments: Vec<(ProcessId, Vec<usize>)>, quantum: SimTime) -> Self {
        PartitionedScheduler {
            core_owner: Vec::new(),
            assignments,
            queues: HashMap::new(),
            shared_queue: BTreeSet::new(),
            assigned: HashMap::new(),
            quantum,
            min_vruntime: 0.0,
        }
    }

    fn key(vruntime: f64, id: ThreadId) -> (u64, ThreadId) {
        (
            (vruntime.max(0.0) * 1e9).min(u64::MAX as f64 / 2.0) as u64,
            id,
        )
    }
}

impl SimPolicy for PartitionedScheduler {
    fn name(&self) -> &str {
        "partitioned"
    }

    fn init(&mut self, machine: &Machine, processes: &[ProcessDesc]) {
        self.core_owner = vec![None; machine.cores()];
        for (pid, cores) in &self.assignments {
            self.assigned.insert(*pid, true);
            self.queues.entry(*pid).or_default();
            for &c in cores {
                if c < machine.cores() {
                    self.core_owner[c] = Some(*pid);
                }
            }
        }
        for p in processes {
            self.assigned.entry(p.id).or_insert(false);
        }
    }

    fn enqueue(&mut self, thread: ReadyThread, _now: SimTime) {
        let vr = thread.vruntime.max(self.min_vruntime);
        let key = Self::key(vr, thread.id);
        if *self.assigned.get(&thread.process).unwrap_or(&false) {
            self.queues.entry(thread.process).or_default().insert(key);
        } else {
            self.shared_queue.insert(key);
        }
    }

    fn pick(&mut self, core: usize, _now: SimTime) -> Option<ThreadId> {
        let picked = match self.core_owner.get(core).copied().flatten() {
            Some(owner) => {
                let q = self.queues.entry(owner).or_default();
                let first = q.iter().next().copied();
                if let Some(k) = first {
                    q.remove(&k);
                    Some(k)
                } else {
                    // The owner has nothing ready; let unassigned processes use the core so
                    // reserved-but-idle cores are not wasted on system work.
                    let first = self.shared_queue.iter().next().copied();
                    if let Some(k) = first {
                        self.shared_queue.remove(&k);
                        Some(k)
                    } else {
                        None
                    }
                }
            }
            None => {
                let first = self.shared_queue.iter().next().copied();
                if let Some(k) = first {
                    self.shared_queue.remove(&k);
                    Some(k)
                } else {
                    None
                }
            }
        };
        if let Some((vr, id)) = picked {
            self.min_vruntime = self.min_vruntime.max(vr as f64 / 1e9);
            Some(id)
        } else {
            None
        }
    }

    fn has_ready(&self) -> bool {
        !self.shared_queue.is_empty() || self.queues.values().any(|q| !q.is_empty())
    }

    fn has_ready_for(&self, core: usize) -> bool {
        // Mirror of `pick`'s reachability: an owned core serves its owner's queue and
        // falls back to the shared queue; an unowned core serves only the shared queue.
        // Work queued for *other* partitions must not preempt this core's thread.
        if !self.shared_queue.is_empty() {
            return true;
        }
        match self.core_owner.get(core).copied().flatten() {
            Some(owner) => self.queues.get(&owner).is_some_and(|q| !q.is_empty()),
            None => false,
        }
    }

    fn ready_count(&self) -> usize {
        self.shared_queue.len() + self.queues.values().map(|q| q.len()).sum::<usize>()
    }

    fn preemption_quantum(&self) -> Option<SimTime> {
        Some(self.quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(id: ThreadId, process: ProcessId) -> ReadyThread {
        ReadyThread {
            id,
            process,
            last_core: None,
            vruntime: 0.0,
        }
    }

    #[test]
    fn threads_only_run_on_their_partition() {
        let machine = Machine::small(4);
        let mut s = PartitionedScheduler::new(
            vec![(0, vec![0, 1]), (1, vec![2, 3])],
            SimTime::from_millis(4),
        );
        s.init(
            &machine,
            &[ProcessDesc::new(0, "a"), ProcessDesc::new(1, "b")],
        );
        s.enqueue(ready(10, 0), SimTime::ZERO);
        s.enqueue(ready(20, 1), SimTime::ZERO);
        // Core 2 belongs to process 1: must not pick process 0's thread.
        assert_eq!(s.pick(2, SimTime::ZERO), Some(20));
        assert_eq!(s.pick(2, SimTime::ZERO), None);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(10));
        assert!(!s.has_ready());
    }

    #[test]
    fn unassigned_processes_use_free_or_idle_cores() {
        let machine = Machine::small(3);
        let mut s = PartitionedScheduler::new(vec![(0, vec![0, 1])], SimTime::from_millis(4));
        s.init(
            &machine,
            &[ProcessDesc::new(0, "a"), ProcessDesc::new(9, "gw")],
        );
        s.enqueue(ready(90, 9), SimTime::ZERO);
        // Core 2 is unowned: the unassigned process runs there.
        assert_eq!(s.pick(2, SimTime::ZERO), Some(90));
        // An owned core whose owner is idle also serves unassigned work.
        s.enqueue(ready(91, 9), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(91));
    }

    #[test]
    fn has_ready_for_ignores_other_partitions() {
        let machine = Machine::small(4);
        let mut s = PartitionedScheduler::new(
            vec![(0, vec![0, 1]), (1, vec![2, 3])],
            SimTime::from_millis(4),
        );
        s.init(
            &machine,
            &[ProcessDesc::new(0, "a"), ProcessDesc::new(1, "b")],
        );
        s.enqueue(ready(20, 1), SimTime::ZERO);
        assert!(s.has_ready());
        assert!(
            !s.has_ready_for(0),
            "process 1's backlog cannot run on process 0's cores"
        );
        assert!(s.has_ready_for(2));
        // Shared (unassigned-process) work makes every core preemptible.
        s.enqueue(ready(90, 9), SimTime::ZERO);
        assert!(s.has_ready_for(0));
    }

    #[test]
    fn fair_order_within_partition() {
        let machine = Machine::small(2);
        let mut s = PartitionedScheduler::new(vec![(0, vec![0, 1])], SimTime::from_millis(4));
        s.init(&machine, &[ProcessDesc::new(0, "a")]);
        s.enqueue(
            ReadyThread {
                id: 1,
                process: 0,
                last_core: None,
                vruntime: 2.0,
            },
            SimTime::ZERO,
        );
        s.enqueue(
            ReadyThread {
                id: 2,
                process: 0,
                last_core: None,
                vruntime: 1.0,
            },
            SimTime::ZERO,
        );
        assert_eq!(s.pick(0, SimTime::ZERO), Some(2));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(1));
        assert_eq!(s.ready_count(), 0);
        assert!(s.preemption_quantum().is_some());
    }
}
