//! Preemptive weighted-fair scheduling (the Linux EEVDF/CFS-like baseline).
//!
//! Ready threads are ordered by *virtual runtime* (actual on-core time divided by the
//! owning process's weight). An idle core always picks the smallest vruntime; running
//! threads are preempted after a quantum whenever other work is ready. This captures the
//! two baseline behaviours the paper's analysis rests on: time-sharing noise (threads are
//! interrupted regardless of what they are doing — including while holding locks or while
//! other threads spin on them) and fairness (all oversubscribed requests progress evenly,
//! the Figure 4 bl-none collapse).

use super::{ReadyThread, SimPolicy};
use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;
use std::collections::{BTreeSet, HashMap};

/// See the module documentation.
#[derive(Debug)]
pub struct FairScheduler {
    /// Ready threads ordered by (scaled vruntime, id).
    queue: BTreeSet<(u64, ThreadId)>,
    /// Weight per process (from the process table).
    weights: HashMap<ProcessId, f64>,
    /// Monotonic floor for vruntime so newly woken threads do not starve older ones.
    min_vruntime: f64,
    quantum: SimTime,
}

impl FairScheduler {
    /// Create a fair scheduler with the given preemption quantum.
    pub fn new(quantum: SimTime) -> Self {
        FairScheduler {
            queue: BTreeSet::new(),
            weights: HashMap::new(),
            min_vruntime: 0.0,
            quantum,
        }
    }

    fn key(vruntime: f64, id: ThreadId) -> (u64, ThreadId) {
        // Scale seconds to nanoseconds for a total order; clamp to avoid overflow.
        (
            (vruntime.max(0.0) * 1e9).min(u64::MAX as f64 / 2.0) as u64,
            id,
        )
    }
}

impl SimPolicy for FairScheduler {
    fn name(&self) -> &str {
        "linux-fair"
    }

    fn init(&mut self, _machine: &Machine, processes: &[ProcessDesc]) {
        for p in processes {
            self.weights.insert(p.id, p.weight);
        }
    }

    fn enqueue(&mut self, thread: ReadyThread, _now: SimTime) {
        // CFS-style: place newly woken threads no earlier than the current minimum so a
        // thread that slept for a long time does not monopolize the CPU when it wakes.
        let vr = thread.vruntime.max(self.min_vruntime);
        self.queue.insert(Self::key(vr, thread.id));
    }

    fn pick(&mut self, _core: usize, _now: SimTime) -> Option<ThreadId> {
        let first = self.queue.iter().next().copied()?;
        self.queue.remove(&first);
        self.min_vruntime = self.min_vruntime.max(first.0 as f64 / 1e9);
        Some(first.1)
    }

    fn has_ready(&self) -> bool {
        !self.queue.is_empty()
    }

    fn ready_count(&self) -> usize {
        self.queue.len()
    }

    fn preemption_quantum(&self) -> Option<SimTime> {
        Some(self.quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(id: ThreadId, vr: f64) -> ReadyThread {
        ReadyThread {
            id,
            process: 0,
            last_core: None,
            vruntime: vr,
        }
    }

    #[test]
    fn picks_lowest_vruntime_first() {
        let mut s = FairScheduler::new(SimTime::from_millis(4));
        s.enqueue(ready(1, 0.5), SimTime::ZERO);
        s.enqueue(ready(2, 0.1), SimTime::ZERO);
        s.enqueue(ready(3, 0.3), SimTime::ZERO);
        assert_eq!(s.ready_count(), 3);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(2));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(3));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(1));
        assert_eq!(s.pick(0, SimTime::ZERO), None);
        assert!(!s.has_ready());
    }

    #[test]
    fn woken_threads_do_not_undercut_min_vruntime() {
        let mut s = FairScheduler::new(SimTime::from_millis(4));
        s.enqueue(ready(1, 5.0), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(1));
        // A brand-new thread with vruntime 0 is clamped to the floor (5.0), so it does not
        // get an unbounded advantage; ties are broken by id, and 2 > 1 anyway.
        s.enqueue(ready(2, 0.0), SimTime::ZERO);
        s.enqueue(ready(3, 5.1), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(2));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(3));
    }

    #[test]
    fn quantum_is_exposed() {
        let s = FairScheduler::new(SimTime::from_millis(7));
        assert_eq!(s.preemption_quantum(), Some(SimTime::from_millis(7)));
    }
}
