//! Preemptive weighted-fair scheduling (the Linux EEVDF/CFS-like baseline).
//!
//! Ready threads are ordered by *virtual runtime* (actual on-core time divided by the
//! owning process's weight). An idle core always picks the smallest vruntime; running
//! threads are preempted after a quantum whenever other work is ready. This captures the
//! two baseline behaviours the paper's analysis rests on: time-sharing noise (threads are
//! interrupted regardless of what they are doing — including while holding locks or while
//! other threads spin on them) and fairness (all oversubscribed requests progress evenly,
//! the Figure 4 bl-none collapse).
//!
//! Unlike the real USF scheduler — which treats affinity as a hint (§4.3.2) — the OS
//! baseline *enforces* placement restrictions: `sched_setaffinity` masks are hard limits
//! under Linux. A process registered with
//! [`ProcessDesc::allowed_cores`](crate::thread::ProcessDesc) therefore keeps its own
//! vruntime-ordered queue, consulted only by the cores its mask names; everything else
//! shares the global queue.

use super::{ReadyThread, SimPolicy};
use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;
use std::collections::{BTreeSet, HashMap};

/// See the module documentation.
#[derive(Debug)]
pub struct FairScheduler {
    /// Ready threads of unrestricted processes, ordered by (scaled vruntime, id).
    queue: BTreeSet<(u64, ThreadId)>,
    /// Ready threads of mask-restricted processes, one queue per process.
    masked_queues: HashMap<ProcessId, BTreeSet<(u64, ThreadId)>>,
    /// Per-core allowance of each restricted process (dense bool mask).
    masks: HashMap<ProcessId, Vec<bool>>,
    /// Weight per process (from the process table).
    weights: HashMap<ProcessId, f64>,
    /// Monotonic floor for vruntime so newly woken threads do not starve older ones.
    min_vruntime: f64,
    quantum: SimTime,
}

impl FairScheduler {
    /// Create a fair scheduler with the given preemption quantum.
    pub fn new(quantum: SimTime) -> Self {
        FairScheduler {
            queue: BTreeSet::new(),
            masked_queues: HashMap::new(),
            masks: HashMap::new(),
            weights: HashMap::new(),
            min_vruntime: 0.0,
            quantum,
        }
    }

    fn key(vruntime: f64, id: ThreadId) -> (u64, ThreadId) {
        // Scale seconds to nanoseconds for a total order; clamp to avoid overflow.
        (
            (vruntime.max(0.0) * 1e9).min(u64::MAX as f64 / 2.0) as u64,
            id,
        )
    }
}

impl SimPolicy for FairScheduler {
    fn name(&self) -> &str {
        "linux-fair"
    }

    fn init(&mut self, machine: &Machine, processes: &[ProcessDesc]) {
        for p in processes {
            self.weights.insert(p.id, p.weight);
            if let Some(cores) = &p.allowed_cores {
                let mut mask = vec![false; machine.cores()];
                let mut any = false;
                for &c in cores {
                    if c < mask.len() {
                        mask[c] = true;
                        any = true;
                    }
                }
                if any {
                    self.masks.insert(p.id, mask);
                    self.masked_queues.entry(p.id).or_default();
                }
            }
        }
    }

    fn enqueue(&mut self, thread: ReadyThread, _now: SimTime) {
        // CFS-style: place newly woken threads no earlier than the current minimum so a
        // thread that slept for a long time does not monopolize the CPU when it wakes.
        let vr = thread.vruntime.max(self.min_vruntime);
        let key = Self::key(vr, thread.id);
        match self.masked_queues.get_mut(&thread.process) {
            Some(q) => {
                q.insert(key);
            }
            None => {
                self.queue.insert(key);
            }
        }
    }

    fn pick(&mut self, core: usize, _now: SimTime) -> Option<ThreadId> {
        // The lowest vruntime among the shared queue and every masked queue whose mask
        // allows this core (the number of restricted processes is tiny, so the scan is
        // cheap relative to the BTree operations).
        let mut best: Option<(u64, ThreadId, Option<ProcessId>)> = None;
        if let Some(&(vr, id)) = self.queue.iter().next() {
            best = Some((vr, id, None));
        }
        for (pid, q) in &self.masked_queues {
            if !self.masks.get(pid).is_some_and(|m| m[core]) {
                continue;
            }
            if let Some(&(vr, id)) = q.iter().next() {
                if best.map_or(true, |(bvr, bid, _)| (vr, id) < (bvr, bid)) {
                    best = Some((vr, id, Some(*pid)));
                }
            }
        }
        let (vr, id, owner) = best?;
        match owner {
            Some(pid) => {
                self.masked_queues
                    .get_mut(&pid)
                    .expect("queue existed above")
                    .remove(&(vr, id));
            }
            None => {
                self.queue.remove(&(vr, id));
            }
        }
        self.min_vruntime = self.min_vruntime.max(vr as f64 / 1e9);
        Some(id)
    }

    fn has_ready(&self) -> bool {
        !self.queue.is_empty() || self.masked_queues.values().any(|q| !q.is_empty())
    }

    fn has_ready_for(&self, core: usize) -> bool {
        !self.queue.is_empty()
            || self
                .masked_queues
                .iter()
                .any(|(pid, q)| !q.is_empty() && self.masks.get(pid).is_some_and(|m| m[core]))
    }

    fn ready_count(&self) -> usize {
        self.queue.len() + self.masked_queues.values().map(|q| q.len()).sum::<usize>()
    }

    fn preemption_quantum(&self) -> Option<SimTime> {
        Some(self.quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(id: ThreadId, vr: f64) -> ReadyThread {
        ReadyThread {
            id,
            process: 0,
            last_core: None,
            vruntime: vr,
        }
    }

    #[test]
    fn picks_lowest_vruntime_first() {
        let mut s = FairScheduler::new(SimTime::from_millis(4));
        s.enqueue(ready(1, 0.5), SimTime::ZERO);
        s.enqueue(ready(2, 0.1), SimTime::ZERO);
        s.enqueue(ready(3, 0.3), SimTime::ZERO);
        assert_eq!(s.ready_count(), 3);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(2));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(3));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(1));
        assert_eq!(s.pick(0, SimTime::ZERO), None);
        assert!(!s.has_ready());
    }

    #[test]
    fn woken_threads_do_not_undercut_min_vruntime() {
        let mut s = FairScheduler::new(SimTime::from_millis(4));
        s.enqueue(ready(1, 5.0), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(1));
        // A brand-new thread with vruntime 0 is clamped to the floor (5.0), so it does not
        // get an unbounded advantage; ties are broken by id, and 2 > 1 anyway.
        s.enqueue(ready(2, 0.0), SimTime::ZERO);
        s.enqueue(ready(3, 5.1), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(2));
        assert_eq!(s.pick(0, SimTime::ZERO), Some(3));
    }

    #[test]
    fn quantum_is_exposed() {
        let s = FairScheduler::new(SimTime::from_millis(7));
        assert_eq!(s.preemption_quantum(), Some(SimTime::from_millis(7)));
    }

    #[test]
    fn masked_process_only_served_to_allowed_cores() {
        let machine = Machine::small_numa(4, 2);
        let mut s = FairScheduler::new(SimTime::from_millis(4));
        let pinned = ProcessDesc::new(1, "pinned").allowed_cores(vec![2, 3]);
        s.init(&machine, &[ProcessDesc::new(0, "free"), pinned]);
        s.enqueue(
            ReadyThread {
                id: 10,
                process: 1,
                last_core: None,
                vruntime: 0.0,
            },
            SimTime::ZERO,
        );
        assert!(s.has_ready());
        assert_eq!(s.ready_count(), 1);
        assert_eq!(s.pick(0, SimTime::ZERO), None, "core 0 is outside the mask");
        assert_eq!(s.pick(2, SimTime::ZERO), Some(10));
        // Unrestricted threads still compete everywhere, in vruntime order.
        s.enqueue(
            ReadyThread {
                id: 20,
                process: 0,
                last_core: None,
                vruntime: 0.5,
            },
            SimTime::ZERO,
        );
        s.enqueue(
            ReadyThread {
                id: 11,
                process: 1,
                last_core: None,
                vruntime: 0.1,
            },
            SimTime::ZERO,
        );
        assert_eq!(
            s.pick(3, SimTime::ZERO),
            Some(11),
            "masked thread wins on its core by vruntime"
        );
        assert_eq!(s.pick(0, SimTime::ZERO), Some(20));
    }
}
