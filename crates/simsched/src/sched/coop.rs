//! The simulated SCHED_COOP policy.
//!
//! This is **the same implementation** as the real runtime's `usf_nosv::CoopPolicy`: both
//! are thin adapters over the generic `usf_nosv::readyq::CoopCore` (per-process per-core
//! FIFO queues keyed by last-run core, affinity → socket → remote tiered pop, rate-limited
//! anti-starvation aging valve, per-process quantum ring) — here instantiated with virtual
//! [`SimTime`] and the [`Machine`] topology view instead of `Instant` and `Topology`. An
//! idle core is offered its own affine threads first, then threads from its socket, then
//! anything else, and the policy serves one process for a quantum before rotating to the
//! next — but only at scheduling points, never by interrupting a running thread
//! ([`SimPolicy::preemption_quantum`] returns `None`).

use super::{ReadyThread, SimPolicy};
use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;
use usf_nosv::readyq::CoopCore;
use usf_nosv::Topology;

/// See the module documentation.
pub struct CoopScheduler {
    core: CoopCore<ProcessId, ThreadId, SimTime>,
    quantum: SimTime,
}

impl std::fmt::Debug for CoopScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopScheduler")
            .field("quantum", &self.quantum)
            .finish()
    }
}

impl CoopScheduler {
    /// Create a SCHED_COOP policy with the given per-process quantum.
    pub fn new(process_quantum: SimTime) -> Self {
        CoopScheduler {
            core: CoopCore::new(&Topology::single_node(1), process_quantum),
            quantum: process_quantum,
        }
    }

    /// Process-quantum rotations performed.
    pub fn rotations(&self) -> u64 {
        self.core.rotations()
    }
}

impl SimPolicy for CoopScheduler {
    fn name(&self) -> &str {
        "sched_coop"
    }

    fn init(&mut self, machine: &Machine, processes: &[ProcessDesc]) {
        // Re-snapshot the topology (init may be called after new(), with the real
        // machine); queues built for a different core count are recreated. The machine's
        // embedded `Topology` is the same type the real runtime's policy consumes.
        self.core.set_topology(&machine.topology);
        for p in processes {
            self.core.register_process(p.id);
            // A placement restriction becomes a CoopCore process domain: the affinity →
            // node → anywhere tiers (and the aging valve) all stay inside it.
            self.core.set_process_domain(p.id, p.allowed_cores.clone());
        }
    }

    fn enqueue(&mut self, thread: ReadyThread, now: SimTime) {
        self.core
            .enqueue(thread.process, thread.id, thread.last_core, now);
    }

    fn pick(&mut self, core: usize, now: SimTime) -> Option<ThreadId> {
        self.core.pick(core, now)
    }

    fn pick_affine(&mut self, core: usize, now: SimTime) -> Option<ThreadId> {
        // Serve threads whose preferred core is exactly this one, regardless of the
        // process rotation (affinity placement is checked before quantum fairness, §4.1).
        // The anti-starvation valve still runs first — see `CoopCore::pick_affine`.
        self.core.pick_affine(core, now)
    }

    fn has_ready(&self) -> bool {
        self.core.has_ready()
    }

    fn has_ready_for(&self, core: usize) -> bool {
        self.core.has_ready_for(core)
    }

    fn ready_count(&self) -> usize {
        self.core.ready_count()
    }

    fn preemption_quantum(&self) -> Option<SimTime> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(id: ThreadId, process: ProcessId, last_core: Option<usize>) -> ReadyThread {
        ReadyThread {
            id,
            process,
            last_core,
            vruntime: 0.0,
        }
    }

    fn setup(cores: usize, sockets: usize, procs: usize) -> CoopScheduler {
        let machine = Machine::small_numa(cores, sockets);
        let mut s = CoopScheduler::new(SimTime::from_millis(20));
        let descs: Vec<ProcessDesc> = (0..procs)
            .map(|p| ProcessDesc::new(p, format!("p{p}")))
            .collect();
        s.init(&machine, &descs);
        s
    }

    #[test]
    fn affinity_first_then_socket_then_remote() {
        let mut s = setup(4, 2, 1);
        let now = SimTime::ZERO;
        s.enqueue(ready(1, 0, Some(1)), now); // socket 0
        s.enqueue(ready(2, 0, Some(3)), now); // socket 1
        s.enqueue(ready(3, 0, Some(0)), now); // affine to core 0
        assert_eq!(
            s.pick(0, now),
            Some(3),
            "core 0 takes its affine thread first"
        );
        assert_eq!(s.pick(0, now), Some(1), "then a same-socket thread");
        assert_eq!(s.pick(0, now), Some(2), "then a remote one");
        assert!(!s.has_ready());
    }

    #[test]
    fn never_preempts() {
        let s = CoopScheduler::new(SimTime::from_millis(20));
        assert!(s.preemption_quantum().is_none());
    }

    #[test]
    fn quantum_rotates_between_processes_at_pick_time() {
        let mut s = setup(1, 1, 2);
        let t0 = SimTime::ZERO;
        s.enqueue(ready(10, 0, None), t0);
        s.enqueue(ready(20, 1, None), t0);
        s.enqueue(ready(11, 0, None), t0);
        s.enqueue(ready(21, 1, None), t0);
        assert_eq!(s.pick(0, t0), Some(10));
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(5)), Some(11));
        // Quantum expired → process 1's turn.
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(25)), Some(20));
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(30)), Some(21));
        assert!(s.rotations() >= 1);
    }

    #[test]
    fn falls_through_to_other_process_when_current_empty() {
        let mut s = setup(2, 1, 2);
        let now = SimTime::ZERO;
        s.enqueue(ready(5, 1, None), now);
        assert_eq!(s.pick(0, now), Some(5));
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn allowed_cores_become_process_domains() {
        let machine = Machine::small_numa(4, 2);
        let mut s = CoopScheduler::new(SimTime::from_millis(20));
        let free = ProcessDesc::new(0, "free");
        let pinned = ProcessDesc::new(1, "pinned").allowed_cores(vec![2, 3]);
        s.init(&machine, &[free, pinned]);
        s.enqueue(ready(10, 1, None), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), None, "core 0 is outside the pin");
        assert_eq!(s.pick_affine(0, SimTime::ZERO), None);
        assert_eq!(s.pick(3, SimTime::ZERO), Some(10));
        // The unrestricted process still runs anywhere.
        s.enqueue(ready(20, 0, None), SimTime::ZERO);
        assert_eq!(s.pick(0, SimTime::ZERO), Some(20));
    }

    #[test]
    fn unknown_process_is_registered_on_enqueue() {
        let mut s = setup(2, 1, 1);
        s.enqueue(ready(9, 7, Some(1)), SimTime::ZERO);
        assert_eq!(s.pick(1, SimTime::ZERO), Some(9));
    }

    #[test]
    fn sharded_core_matches_simulated_coop_at_sim_time() {
        // The per-node sharded backing instantiates at virtual time exactly like the flat
        // one (CoopCore is generic over both the clock and the queue backing). Drive the
        // simulator's CoopScheduler and a SimTime ShardedCoopCore through a deterministic
        // interleaving spanning every tier — affinity, socket, remote steal and the aging
        // valve (quantum == aging window == 1ms, far shorter than the trace) — and
        // require pick-for-pick agreement.
        use usf_nosv::readyq::ShardedCoopCore;

        let machine = Machine::small_numa(6, 3);
        let quantum = SimTime::from_millis(1);
        let mut sim = CoopScheduler::new(quantum);
        sim.init(
            &machine,
            &[ProcessDesc::new(0, "p0"), ProcessDesc::new(1, "p1")],
        );
        let mut sharded: ShardedCoopCore<ProcessId, ThreadId, SimTime> =
            ShardedCoopCore::new(&machine.topology, quantum);
        sharded.register_process(0);
        sharded.register_process(1);

        let mut id = 1usize;
        for step in 0..400u64 {
            let now = SimTime::from_micros(step * 300);
            if step % 3 != 2 {
                let process = (step % 2) as usize;
                let last_core = match step % 7 {
                    6 => None,
                    p => Some((p as usize) % 6),
                };
                sim.enqueue(ready(id, process, last_core), now);
                sharded.enqueue(process, id, last_core, now);
                id += 1;
            } else {
                let core = (step % 6) as usize;
                assert_eq!(sim.pick(core, now), sharded.pick(core, now), "step {step}");
            }
        }
        let end = SimTime::from_micros(400 * 300);
        while sim.has_ready() || sharded.has_ready() {
            assert_eq!(sim.pick(0, end), sharded.pick(0, end));
        }
    }
}
