//! The simulated SCHED_COOP policy.
//!
//! Mirrors the real implementation in `usf-nosv`: ready threads are kept in per-process
//! per-core FIFO queues (keyed by the core they last ran on, or an unbound queue), an idle
//! core is offered its own affine threads first, then threads from its socket, then anything
//! else, and the policy serves one process for a quantum before rotating to the next — but
//! only at scheduling points, never by interrupting a running thread
//! ([`SimPolicy::preemption_quantum`] returns `None`).

use super::{ReadyThread, SimPolicy};
use crate::machine::Machine;
use crate::thread::{ProcessDesc, ProcessId, ThreadId};
use crate::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// One queued thread: its id, a monotonically increasing enqueue sequence number (total
/// FIFO order) and the enqueue time (drives the anti-starvation aging valve). Mirrors
/// `usf_nosv::policy::QueueEntry`.
#[derive(Debug, Clone, Copy)]
struct QueueEntry {
    id: ThreadId,
    seq: u64,
    at: SimTime,
}

#[derive(Debug)]
struct ProcQueues {
    per_core: Vec<VecDeque<QueueEntry>>,
    unbound: VecDeque<QueueEntry>,
    count: usize,
    next_seq: u64,
    /// Earliest time the anti-starvation valve needs to look at the queues again.
    next_valve_at: Option<SimTime>,
}

impl ProcQueues {
    fn new(cores: usize) -> Self {
        ProcQueues {
            per_core: (0..cores).map(|_| VecDeque::new()).collect(),
            unbound: VecDeque::new(),
            count: 0,
            next_seq: 0,
            next_valve_at: None,
        }
    }

    fn push(&mut self, t: &ReadyThread, now: SimTime) {
        let entry = QueueEntry {
            id: t.id,
            seq: self.next_seq,
            at: now,
        };
        self.next_seq += 1;
        match t.last_core {
            Some(c) => self.per_core[c].push_back(entry),
            None => self.unbound.push_back(entry),
        }
        self.count += 1;
    }

    /// Head of the queue holding the oldest entry across every queue. `Some(c)` is a
    /// per-core queue, `None` the unbound queue.
    fn oldest_head(&self) -> Option<(u64, SimTime, Option<usize>)> {
        let mut best: Option<(u64, SimTime, Option<usize>)> = None;
        for (c, q) in self.per_core.iter().enumerate() {
            if let Some(e) = q.front() {
                if best.map_or(true, |(s, _, _)| e.seq < s) {
                    best = Some((e.seq, e.at, Some(c)));
                }
            }
        }
        if let Some(e) = self.unbound.front() {
            if best.map_or(true, |(s, _, _)| e.seq < s) {
                best = Some((e.seq, e.at, None));
            }
        }
        best
    }

    fn pop_from(&mut self, source: Option<usize>) -> ThreadId {
        let queue = match source {
            Some(c) => &mut self.per_core[c],
            None => &mut self.unbound,
        };
        let entry = queue.pop_front().expect("candidate queue has a head");
        self.count -= 1;
        entry.id
    }

    /// The anti-starvation valve: at most once per `aging` window, serve the oldest
    /// queued entry regardless of placement if it has waited longer than `aging`. Every
    /// pop path (including the engine's affinity-first `pick_affine` pre-pass) must
    /// consult this first, or a saturated dispatch that always finds affine candidates
    /// starves the unbound queue anyway.
    fn pop_aged(&mut self, now: SimTime, aging: SimTime) -> Option<ThreadId> {
        if self.next_valve_at.map_or(true, |t| now >= t) {
            match self.oldest_head() {
                Some((_, at, source)) => {
                    if now.saturating_sub(at) >= aging {
                        self.next_valve_at = Some(now + aging);
                        return Some(self.pop_from(source));
                    }
                    // Nothing aged yet: the current oldest entry is the first that can
                    // age (later entries age strictly later).
                    self.next_valve_at = Some(at + aging);
                }
                None => self.next_valve_at = Some(now + aging),
            }
        }
        None
    }

    /// Pop honouring affinity → same socket / unbound (oldest head first) → remote, with
    /// an anti-starvation valve in front: at most once per `aging` period, the oldest
    /// queued entry anywhere is served regardless of placement if it has waited longer
    /// than `aging`.
    ///
    /// Without the valve the policy is not starvation-free: threads that have never run
    /// sit in `unbound` and can wait forever while woken threads re-queue to their last
    /// core ahead of them. The valve is rate-limited (one aged grant per `aging` window,
    /// tracked by `next_valve_at`) so that under sustained oversubscription — where
    /// *every* entry is older than one quantum — the policy stays affinity-first instead
    /// of degrading into a global FIFO; the deadline check also keeps the O(cores)
    /// oldest-head scan off the common path. Mirrors `usf_nosv::policy::ProcQueues`.
    fn pop_for(
        &mut self,
        machine: &Machine,
        core: usize,
        now: SimTime,
        aging: SimTime,
    ) -> Option<ThreadId> {
        if let Some(t) = self.pop_aged(now, aging) {
            return Some(t);
        }
        if self.per_core[core].front().is_some() {
            return Some(self.pop_from(Some(core)));
        }
        let socket = machine.socket_of(core);
        // Same-socket queues and the unbound queue compete by enqueue order; `None`
        // marks the unbound queue.
        let mut best: Option<(u64, Option<usize>)> = None;
        for c in 0..self.per_core.len() {
            if c == core || machine.socket_of(c) != socket {
                continue;
            }
            if let Some(e) = self.per_core[c].front() {
                if best.map_or(true, |(s, _)| e.seq < s) {
                    best = Some((e.seq, Some(c)));
                }
            }
        }
        if let Some(e) = self.unbound.front() {
            if best.map_or(true, |(s, _)| e.seq < s) {
                best = Some((e.seq, None));
            }
        }
        if let Some((_, source)) = best {
            return Some(self.pop_from(source));
        }
        for c in 0..self.per_core.len() {
            if machine.socket_of(c) == socket {
                continue;
            }
            if self.per_core[c].front().is_some() {
                return Some(self.pop_from(Some(c)));
            }
        }
        None
    }
}

/// See the module documentation.
pub struct CoopScheduler {
    machine: Machine,
    queues: HashMap<ProcessId, ProcQueues>,
    order: Vec<ProcessId>,
    current: usize,
    quantum: SimTime,
    quantum_started: Option<SimTime>,
    rotations: u64,
}

impl std::fmt::Debug for CoopScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopScheduler")
            .field("processes", &self.order.len())
            .field("quantum", &self.quantum)
            .finish()
    }
}

impl CoopScheduler {
    /// Create a SCHED_COOP policy with the given per-process quantum.
    pub fn new(process_quantum: SimTime) -> Self {
        CoopScheduler {
            machine: Machine::small(1),
            queues: HashMap::new(),
            order: Vec::new(),
            current: 0,
            quantum: process_quantum,
            quantum_started: None,
            rotations: 0,
        }
    }

    /// Process-quantum rotations performed.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    fn ensure_process(&mut self, p: ProcessId) {
        if !self.queues.contains_key(&p) {
            self.queues.insert(p, ProcQueues::new(self.machine.cores));
            self.order.push(p);
        }
    }

    fn rotate_if_expired(&mut self, now: SimTime) {
        if self.order.len() <= 1 {
            return;
        }
        let expired = match self.quantum_started {
            Some(start) => now.saturating_sub(start) >= self.quantum,
            None => false,
        };
        if expired {
            let len = self.order.len();
            let mut next = (self.current + 1) % len;
            for off in 0..len {
                let cand = (self.current + 1 + off) % len;
                let pid = self.order[cand];
                if self.queues.get(&pid).map(|q| q.count > 0).unwrap_or(false) {
                    next = cand;
                    break;
                }
            }
            if next != self.current {
                self.rotations += 1;
            }
            self.current = next;
            self.quantum_started = Some(now);
        }
    }
}

impl SimPolicy for CoopScheduler {
    fn name(&self) -> &str {
        "sched_coop"
    }

    fn init(&mut self, machine: &Machine, processes: &[ProcessDesc]) {
        self.machine = machine.clone();
        for p in processes {
            self.ensure_process(p.id);
        }
        // Re-create queues with the right core count (init may be called after new()).
        for q in self.queues.values_mut() {
            if q.per_core.len() != machine.cores {
                *q = ProcQueues::new(machine.cores);
            }
        }
    }

    fn enqueue(&mut self, thread: ReadyThread, now: SimTime) {
        self.ensure_process(thread.process);
        self.queues
            .get_mut(&thread.process)
            .expect("process just ensured")
            .push(&thread, now);
    }

    fn pick(&mut self, core: usize, now: SimTime) -> Option<ThreadId> {
        if self.order.is_empty() {
            return None;
        }
        if self.quantum_started.is_none() {
            self.quantum_started = Some(now);
        }
        self.rotate_if_expired(now);
        let len = self.order.len();
        for off in 0..len {
            let idx = (self.current + off) % len;
            let pid = self.order[idx];
            if let Some(q) = self.queues.get_mut(&pid) {
                // Entries older than one quantum are served oldest-first regardless of
                // placement (the starvation valve in ProcQueues::pop_for).
                if let Some(t) = q.pop_for(&self.machine, core, now, self.quantum) {
                    if off != 0 {
                        self.current = idx;
                        self.quantum_started = Some(now);
                        self.rotations += 1;
                    }
                    return Some(t);
                }
            }
        }
        None
    }

    fn pick_affine(&mut self, core: usize, now: SimTime) -> Option<ThreadId> {
        // Serve threads whose preferred core is exactly this one, regardless of the
        // process rotation (affinity placement is checked before quantum fairness,
        // §4.1) — but the anti-starvation valve still comes first: a saturated
        // dispatch that always finds affine candidates here would otherwise never
        // reach the valve in `pop_for` (the real nosv runtime has no valve-free pick
        // path, and the simulator must not either).
        for pid in self.order.clone() {
            if let Some(q) = self.queues.get_mut(&pid) {
                if let Some(t) = q.pop_aged(now, self.quantum) {
                    return Some(t);
                }
                if q.per_core[core].front().is_some() {
                    return Some(q.pop_from(Some(core)));
                }
            }
        }
        None
    }

    fn has_ready(&self) -> bool {
        self.queues.values().any(|q| q.count > 0)
    }

    fn ready_count(&self) -> usize {
        self.queues.values().map(|q| q.count).sum()
    }

    fn preemption_quantum(&self) -> Option<SimTime> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ready(id: ThreadId, process: ProcessId, last_core: Option<usize>) -> ReadyThread {
        ReadyThread {
            id,
            process,
            last_core,
            vruntime: 0.0,
        }
    }

    fn setup(cores: usize, sockets: usize, procs: usize) -> CoopScheduler {
        let mut machine = Machine::small(cores);
        machine.sockets = sockets;
        let mut s = CoopScheduler::new(SimTime::from_millis(20));
        let descs: Vec<ProcessDesc> = (0..procs)
            .map(|p| ProcessDesc::new(p, format!("p{p}")))
            .collect();
        s.init(&machine, &descs);
        s
    }

    #[test]
    fn affinity_first_then_socket_then_remote() {
        let mut s = setup(4, 2, 1);
        let now = SimTime::ZERO;
        s.enqueue(ready(1, 0, Some(1)), now); // socket 0
        s.enqueue(ready(2, 0, Some(3)), now); // socket 1
        s.enqueue(ready(3, 0, Some(0)), now); // affine to core 0
        assert_eq!(
            s.pick(0, now),
            Some(3),
            "core 0 takes its affine thread first"
        );
        assert_eq!(s.pick(0, now), Some(1), "then a same-socket thread");
        assert_eq!(s.pick(0, now), Some(2), "then a remote one");
        assert!(!s.has_ready());
    }

    #[test]
    fn never_preempts() {
        let s = CoopScheduler::new(SimTime::from_millis(20));
        assert!(s.preemption_quantum().is_none());
    }

    #[test]
    fn quantum_rotates_between_processes_at_pick_time() {
        let mut s = setup(1, 1, 2);
        let t0 = SimTime::ZERO;
        s.enqueue(ready(10, 0, None), t0);
        s.enqueue(ready(20, 1, None), t0);
        s.enqueue(ready(11, 0, None), t0);
        s.enqueue(ready(21, 1, None), t0);
        assert_eq!(s.pick(0, t0), Some(10));
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(5)), Some(11));
        // Quantum expired → process 1's turn.
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(25)), Some(20));
        assert_eq!(s.pick(0, t0 + SimTime::from_millis(30)), Some(21));
        assert!(s.rotations() >= 1);
    }

    #[test]
    fn falls_through_to_other_process_when_current_empty() {
        let mut s = setup(2, 1, 2);
        let now = SimTime::ZERO;
        s.enqueue(ready(5, 1, None), now);
        assert_eq!(s.pick(0, now), Some(5));
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn unknown_process_is_registered_on_enqueue() {
        let mut s = setup(2, 1, 1);
        s.enqueue(ready(9, 7, Some(1)), SimTime::ZERO);
        assert_eq!(s.pick(1, SimTime::ZERO), Some(9));
    }
}
