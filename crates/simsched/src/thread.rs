//! Simulated threads and processes.

use crate::program::ProgramRef;
use crate::time::SimTime;

/// Identifier of a simulated thread.
pub type ThreadId = usize;
/// Identifier of a simulated process.
pub type ProcessId = usize;

/// Description of a simulated process (a scheduling domain).
#[derive(Debug, Clone)]
pub struct ProcessDesc {
    /// Process identifier (index into the engine's process table).
    pub id: ProcessId,
    /// Display name.
    pub name: String,
    /// Scheduling weight (CFS-style: higher weight → more CPU under the fair policy). A
    /// nice value of 0 corresponds to 1.0; nice 20 to roughly 0.1.
    pub weight: f64,
    /// Placement restriction: when `Some`, the process's threads may only be dispatched
    /// on these cores (NUMA-aware pinning, the §5.6 socket-placement variants). Honoured
    /// by the fair and SCHED_COOP policies; the partitioned policy expresses placement
    /// through its own assignments and ignores this field.
    pub allowed_cores: Option<Vec<usize>>,
}

impl ProcessDesc {
    /// A process with weight 1.0 and no placement restriction.
    pub fn new(id: ProcessId, name: impl Into<String>) -> Self {
        ProcessDesc {
            id,
            name: name.into(),
            weight: 1.0,
            allowed_cores: None,
        }
    }

    /// Set the scheduling weight.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight.max(0.001);
        self
    }

    /// Restrict the process to a set of cores (builder style).
    pub fn allowed_cores(mut self, cores: Vec<usize>) -> Self {
        self.allowed_cores = (!cores.is_empty()).then_some(cores);
        self
    }
}

/// Lifecycle state of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadRunState {
    /// Created but not yet arrived (its arrival event is pending).
    NotStarted,
    /// Ready to run, waiting in the scheduler's queues.
    Ready,
    /// Running on the given core.
    Running(usize),
    /// Blocked on a synchronization object or sleeping.
    Blocked,
    /// Finished.
    Finished,
}

/// Why a thread is blocked (used to deliver the right wake-up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Not blocked.
    None,
    /// Waiting for a mutex.
    Lock(u64),
    /// Waiting (blocked) at a barrier.
    Barrier(u64),
    /// Busy-waiting at a barrier (on core or preempted, but logically spinning).
    BarrierSpin(u64),
    /// Sleeping until a deadline.
    Sleep,
    /// Waiting for an event counter.
    Event(u64),
    /// Waiting for children to finish.
    Join,
}

/// Per-thread accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadStats {
    /// Total time spent running useful work on a core.
    pub cpu_time: SimTime,
    /// Total time spent busy-waiting on a core.
    pub spin_time: SimTime,
    /// Total time spent ready but not running.
    pub wait_time: SimTime,
    /// Times the thread was preempted involuntarily.
    pub preemptions: u64,
    /// Times the thread was dispatched on a different core than the previous one.
    pub migrations: u64,
    /// The subset of migrations that crossed a socket (NUMA-node) boundary — the costly
    /// kind the §5.6 placement variants are designed to avoid.
    pub cross_socket_migrations: u64,
    /// Times the thread was dispatched on a core.
    pub dispatches: u64,
}

/// A simulated thread: a program instance plus its scheduling state.
#[derive(Debug, Clone)]
pub struct SimThread {
    /// Thread identifier.
    pub id: ThreadId,
    /// Owning process.
    pub process: ProcessId,
    /// The program this thread executes.
    pub program: ProgramRef,
    /// Index of the next operation to execute.
    pub pc: usize,
    /// Remaining nominal work of the current compute op (if it was interrupted).
    pub remaining_work: SimTime,
    /// Bandwidth demand of the current compute op.
    pub current_bw: f64,
    /// Lifecycle state.
    pub state: ThreadRunState,
    /// Why the thread is blocked, if it is.
    pub block_reason: BlockReason,
    /// Core the thread last ran on.
    pub last_core: Option<usize>,
    /// Arrival time of the thread in the simulation.
    pub arrival: SimTime,
    /// Completion time (set when finished).
    pub finish: Option<SimTime>,
    /// The thread that spawned this one, if any.
    pub parent: Option<ThreadId>,
    /// Number of live children (for `JoinChildren`).
    pub live_children: usize,
    /// When the thread last became ready (for wait-time accounting).
    pub ready_since: SimTime,
    /// Virtual runtime used by the fair policy.
    pub vruntime: f64,
    /// Accounting.
    pub stats: ThreadStats,
}

impl SimThread {
    /// Create a thread in the `NotStarted` state.
    pub fn new(id: ThreadId, process: ProcessId, program: ProgramRef, arrival: SimTime) -> Self {
        SimThread {
            id,
            process,
            program,
            pc: 0,
            remaining_work: SimTime::ZERO,
            current_bw: 0.0,
            state: ThreadRunState::NotStarted,
            block_reason: BlockReason::None,
            last_core: None,
            arrival,
            finish: None,
            parent: None,
            live_children: 0,
            ready_since: arrival,
            vruntime: 0.0,
            stats: ThreadStats::default(),
        }
    }

    /// Whether the thread has finished.
    pub fn is_finished(&self) -> bool {
        matches!(self.state, ThreadRunState::Finished)
    }

    /// Turnaround time (finish − arrival), if finished.
    pub fn turnaround(&self) -> Option<SimTime> {
        self.finish.map(|f| f.saturating_sub(self.arrival))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    #[test]
    fn process_desc_weight_clamped() {
        let p = ProcessDesc::new(0, "gw").weight(-3.0);
        assert!(p.weight > 0.0);
        assert_eq!(ProcessDesc::new(1, "x").weight, 1.0);
    }

    #[test]
    fn thread_lifecycle_fields() {
        let prog = Program::new("p").compute(SimTime::from_micros(1)).build();
        let mut t = SimThread::new(3, 1, prog, SimTime::from_millis(2));
        assert!(!t.is_finished());
        assert_eq!(t.turnaround(), None);
        t.finish = Some(SimTime::from_millis(5));
        t.state = ThreadRunState::Finished;
        assert!(t.is_finished());
        assert_eq!(t.turnaround(), Some(SimTime::from_millis(3)));
    }
}
