//! Deterministic replay of recorded scheduler traces.
//!
//! A trace recorded by the real runtime ([`usf_nosv::sched_trace`], behind its
//! `sched-trace` feature) is re-executed here through the *simulator's* instantiation of
//! the shared SCHED_COOP generic — [`CoopCore`]`<ProcessId, TaskId, SimTime>` — and every
//! recorded pop is compared against what the simulated policy picks at the same logical
//! step. A mismatch means the simulator and the runtime have drifted apart, which the
//! equivalence tests turn into a CI failure.
//!
//! The replay consumes the state-mutating events (`RegisterProcess`, `DeregisterProcess`,
//! `SetDomain`, `Enqueue`, `Pop`, `PopEmpty` — an empty pick re-arms the aging valve, so
//! it must be replayed too) as its script; `Grant` events are cross-checked against
//! the preceding pop (every non-immediate grant must hand out exactly the task the policy
//! just popped); the remaining events (`Submit`, `IntakeDrain`, `Yield`, `Migrate`,
//! `FaultInjected`, `Shutdown`) are context and are ignored — an injected fault's
//! *effects* show up as ordinary events, so a faulty trace replays like any other. Timestamps are mapped nanosecond-exact —
//! `SimTime::from_nanos(entry.at_nanos)` — which reproduces every quantum rotation and
//! aging-valve decision of the original run (see the recording-side documentation on why
//! the recorded instant is authoritative).
//!
//! # Split-lock traces
//!
//! A trace whose `meta.policy` is `"sched_coop_split"` was recorded by the per-NUMA-node
//! split-lock scheduler: one policy instance per node, with `Scheduler::split_pick_once`
//! arbitrating between the local shard, the rate-limited cross-shard aging valve, and
//! cross-shard stealing. The replay mirrors that shape — one [`CoopCore`] plus one
//! [`CrossValve`] per node — and re-executes the exact pick ladder per recorded
//! `Pop`/`PopEmpty` (the recording side guarantees one trace event per
//! `split_pick_once` call). Two recording-side properties make this deterministic for
//! the serial traces the fuzzer produces:
//!
//! * the `shard_ready > 0` victim probe guard is equivalent to the victim policy's
//!   `has_ready()` (both count exactly the shard's queued entries), and a serial
//!   recorder never loses a `try_lock`, so victim probes always succeed here too;
//! * enqueue shard routing is recoverable from the trace: a yielding task is requeued
//!   into the *yield core's* shard (its `Enqueue` immediately follows the `Yield`),
//!   every other enqueue lands in the preferred core's node, or shard 0 without a
//!   usable preference — the same rule as `Scheduler::home_shard`.
//!
//! Concurrent multi-shard recordings are seq-stamped best-effort (see
//! `usf_nosv::sched_trace`) and are not fed through `assert_replays_clean`.

use crate::time::SimTime;
use usf_nosv::{CoopCore, CrossValve, PickTier, ProcessId, TaskId};
use usf_nosv::{TraceEntry, TraceEvent, TraceMeta};

/// The first step at which the simulated policy disagreed with the recorded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Logical step (the trace entry's index) of the disagreeing pop.
    pub step: u64,
    /// What the recording scheduler popped (task, tier; tier is `None` for tier-less
    /// policies), or `None` for a recorded empty pick ([`TraceEvent::PopEmpty`]).
    pub recorded: Option<(TaskId, Option<PickTier>)>,
    /// What the simulated policy popped instead (`None`: nothing was ready).
    pub replayed: Option<(TaskId, PickTier)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: recorded pop {:?}, simulated policy picked {:?}",
            self.step, self.recorded, self.replayed
        )
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Pops replayed (and compared) before stopping.
    pub pops: u64,
    /// Grant events seen (immediate and popped).
    pub grants: u64,
    /// Logical steps of the pops the *simulated* policy served from the aging valve.
    pub aged_steps: Vec<u64>,
    /// Non-immediate grants whose task did not match the latest replayed pop (always 0
    /// for a well-formed trace).
    pub mismatched_grants: u64,
    /// The first divergence, if the simulated policy ever disagreed with the recording.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the whole trace replayed without drift.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none() && self.mismatched_grants == 0
    }
}

/// The replayed side of the scheduler: one policy core per shard (exactly one for flat
/// traces, one per NUMA node for `"sched_coop_split"` traces) plus the cross-shard aging
/// valves that rate-limit foreign probes.
struct ShardSet {
    shards: Vec<CoopCore<ProcessId, TaskId, SimTime>>,
    valves: Vec<CrossValve<SimTime>>,
    /// `core_nodes` from the trace meta: maps a core to its owning shard in split mode.
    core_nodes: Vec<usize>,
    quantum: SimTime,
}

impl ShardSet {
    fn new(meta: &TraceMeta) -> Self {
        let quantum = SimTime::from_nanos(meta.quantum_nanos);
        let nshards = if meta.policy == "sched_coop_split" {
            meta.core_nodes.iter().copied().max().map_or(1, |m| m + 1)
        } else {
            1
        };
        ShardSet {
            shards: (0..nshards).map(|_| CoopCore::new(meta, quantum)).collect(),
            valves: (0..nshards).map(|_| CrossValve::new()).collect(),
            core_nodes: meta.core_nodes.clone(),
            quantum,
        }
    }

    /// The shard owning `core` (mirrors `Scheduler::shard_of`; out-of-range → 0).
    fn shard_of(&self, core: usize) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        self.core_nodes.get(core).copied().unwrap_or(0)
    }

    /// The shard an `Enqueue` lands in. A yield requeue goes to the *yield core's*
    /// shard (`last_yield` carries the immediately preceding `Yield`, whose `Enqueue`
    /// the recorder emits back-to-back under the same shard lock); everything else
    /// follows `Scheduler::home_shard`: preferred core's node, or shard 0.
    fn enqueue_shard(
        &self,
        task: TaskId,
        preferred: Option<usize>,
        last_yield: Option<(TaskId, usize)>,
    ) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        if let Some((yt, yc)) = last_yield {
            if yt == task {
                return self.shard_of(yc);
            }
        }
        preferred
            .filter(|&c| c < self.core_nodes.len())
            .map_or(0, |c| self.shard_of(c))
    }

    /// Re-execute one `Scheduler::split_pick_once` for `core`: cross-shard aging valve
    /// (rate-limited, victim guarded by `has_ready` — the replay-side equivalent of the
    /// `shard_ready` probe guard), then the local tiers, then the cross-shard steal.
    /// With one shard this is exactly `pick_tiered`, matching the flat scheduler.
    fn pick_once(&mut self, core: usize, now: SimTime) -> Option<(TaskId, PickTier)> {
        let n = self.shards.len();
        let si = self.shard_of(core);
        if n > 1 && self.valves[si].crossed(now, self.quantum) {
            for off in 1..n {
                let vi = (si + off) % n;
                if !self.shards[vi].has_ready() {
                    continue;
                }
                if let Some(t) = self.shards[vi].pick_aged_for(core, now) {
                    return Some((t, PickTier::Aged));
                }
            }
        }
        if let Some(picked) = self.shards[si].pick_tiered(core, now) {
            return Some(picked);
        }
        if n > 1 {
            for off in 1..n {
                let vi = (si + off) % n;
                if !self.shards[vi].has_ready() {
                    continue;
                }
                if let Some(picked) = self.shards[vi].pick_tiered(core, now) {
                    return Some(picked);
                }
            }
        }
        None
    }
}

/// Replay `entries` (recorded against the scheduler described by `meta`) through the
/// simulator's SCHED_COOP instantiation, stopping at the first divergence.
pub fn replay(meta: &TraceMeta, entries: &[TraceEntry]) -> ReplayReport {
    let mut set = ShardSet::new(meta);
    let mut report = ReplayReport {
        pops: 0,
        grants: 0,
        aged_steps: Vec::new(),
        mismatched_grants: 0,
        divergence: None,
    };
    let mut last_pop: Option<TaskId> = None;
    // The immediately preceding event, when it was a `Yield` (task, core) — the routing
    // key for the yield-requeue `Enqueue` that directly follows it.
    let mut last_yield: Option<(TaskId, usize)> = None;
    for entry in entries {
        let now = SimTime::from_nanos(entry.at_nanos);
        let this_yield = match &entry.event {
            TraceEvent::Yield { task, core } => Some((*task, *core)),
            _ => None,
        };
        match &entry.event {
            TraceEvent::RegisterProcess { process } => {
                for shard in &mut set.shards {
                    shard.register_process(*process);
                }
            }
            TraceEvent::DeregisterProcess { process } => {
                for shard in &mut set.shards {
                    shard.deregister_process(*process);
                }
            }
            TraceEvent::SetDomain { process, cores } => {
                for shard in &mut set.shards {
                    shard.set_process_domain(*process, cores.clone());
                }
            }
            TraceEvent::Enqueue {
                process,
                task,
                preferred,
            } => {
                let si = set.enqueue_shard(*task, *preferred, last_yield);
                set.shards[si].enqueue(*process, *task, *preferred, now);
            }
            TraceEvent::Pop {
                core: at_core,
                tier,
                task,
            } => {
                let picked = set.pick_once(*at_core, now);
                let matches = match picked {
                    Some((t, picked_tier)) => {
                        t == *task && tier.map_or(true, |rec| rec == picked_tier)
                    }
                    None => false,
                };
                if !matches {
                    report.divergence = Some(Divergence {
                        step: entry.step,
                        recorded: Some((*task, *tier)),
                        replayed: picked,
                    });
                    return report;
                }
                if let Some((_, PickTier::Aged)) = picked {
                    report.aged_steps.push(entry.step);
                }
                report.pops += 1;
                last_pop = Some(*task);
            }
            TraceEvent::PopEmpty { core: at_core } => {
                // Re-execute the empty pick: it must serve nothing here too, and its
                // side effects (re-arming the local and cross-shard aging valves) keep
                // later pops in lockstep.
                if let Some(picked) = set.pick_once(*at_core, now) {
                    report.divergence = Some(Divergence {
                        step: entry.step,
                        recorded: None,
                        replayed: Some(picked),
                    });
                    return report;
                }
            }
            TraceEvent::Grant {
                task, immediate, ..
            } => {
                report.grants += 1;
                if !*immediate && last_pop != Some(*task) {
                    report.mismatched_grants += 1;
                }
            }
            TraceEvent::Submit { .. }
            | TraceEvent::IntakeDrain { .. }
            | TraceEvent::Yield { .. }
            | TraceEvent::Migrate { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::Shutdown => {}
        }
        last_yield = this_yield;
    }
    report
}

/// [`replay`], but panic with a readable message on any drift — the form the equivalence
/// tests and the fuzz smoke harness use to gate CI.
pub fn assert_replays_clean(meta: &TraceMeta, entries: &[TraceEntry]) -> ReplayReport {
    let report = replay(meta, entries);
    if let Some(d) = &report.divergence {
        panic!("sim-vs-real schedule drift: {d}");
    }
    assert_eq!(
        report.mismatched_grants, 0,
        "trace granted tasks that were not the latest pop"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_2x2() -> TraceMeta {
        TraceMeta {
            core_nodes: vec![0, 0, 1, 1],
            quantum_nanos: 50_000,
            policy: "sched_coop".to_string(),
        }
    }

    fn entry(step: u64, at_nanos: u64, event: TraceEvent) -> TraceEntry {
        TraceEntry {
            step,
            at_nanos,
            event,
        }
    }

    #[test]
    fn scripted_trace_replays_clean() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 7,
                    preferred: Some(2),
                },
            ),
            entry(
                2,
                20,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Affinity),
                    task: 7,
                },
            ),
            entry(
                3,
                20,
                TraceEvent::Grant {
                    task: 7,
                    core: 2,
                    immediate: false,
                },
            ),
        ];
        let report = assert_replays_clean(&meta, &entries);
        assert_eq!(report.pops, 1);
        assert_eq!(report.grants, 1);
        assert!(report.aged_steps.is_empty());
    }

    #[test]
    fn wrong_recorded_pop_is_reported_as_divergence() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 7,
                    preferred: None,
                },
            ),
            entry(
                2,
                20,
                TraceEvent::Pop {
                    core: 0,
                    tier: None,
                    task: 99, // the recorded scheduler claims a task the queues never saw
                },
            ),
        ];
        let report = replay(&meta, &entries);
        let d = report.divergence.expect("divergence must be detected");
        assert_eq!(d.step, 2);
        assert_eq!(d.recorded, Some((99, None)));
        assert_eq!(d.replayed.map(|(t, _)| t), Some(7));
    }

    fn meta_split_2x2() -> TraceMeta {
        TraceMeta {
            core_nodes: vec![0, 0, 1, 1],
            quantum_nanos: 50_000,
            policy: "sched_coop_split".to_string(),
        }
    }

    #[test]
    fn scripted_split_trace_replays_local_picks_and_steal() {
        let meta = meta_split_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            // Preferred cores route the enqueues to their home shards.
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 7,
                    preferred: Some(0),
                },
            ),
            entry(
                2,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 8,
                    preferred: Some(2),
                },
            ),
            // Each shard serves its own affinity pick.
            entry(
                3,
                20,
                TraceEvent::Pop {
                    core: 0,
                    tier: Some(PickTier::Affinity),
                    task: 7,
                },
            ),
            entry(
                4,
                20,
                TraceEvent::Grant {
                    task: 7,
                    core: 0,
                    immediate: false,
                },
            ),
            entry(
                5,
                25,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Affinity),
                    task: 8,
                },
            ),
            // Work lands in shard 0 while shard 1 goes idle: core 3 steals it.
            entry(
                6,
                30,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 9,
                    preferred: Some(1),
                },
            ),
            entry(
                7,
                40,
                TraceEvent::Pop {
                    core: 3,
                    tier: Some(PickTier::Remote),
                    task: 9,
                },
            ),
            // Everything drained: the empty pick must be empty here too.
            entry(8, 45, TraceEvent::PopEmpty { core: 1 }),
        ];
        let report = assert_replays_clean(&meta, &entries);
        assert_eq!(report.pops, 3);
        assert!(report.aged_steps.is_empty());
    }

    #[test]
    fn split_yield_requeue_routes_to_the_yield_cores_shard() {
        let meta = meta_split_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 1,
                    preferred: Some(2),
                },
            ),
            entry(
                2,
                20,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Affinity),
                    task: 1,
                },
            ),
            entry(
                3,
                20,
                TraceEvent::Grant {
                    task: 1,
                    core: 2,
                    immediate: false,
                },
            ),
            // Task 1 yields on core 2: its unbound requeue must land in shard 1 (the
            // yield core's shard), not shard 0 (the no-preference default).
            entry(4, 30, TraceEvent::Yield { task: 1, core: 2 }),
            entry(
                5,
                30,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 1,
                    preferred: None,
                },
            ),
            // A later unbound enqueue with no preceding yield takes the default route
            // to shard 0.
            entry(
                6,
                35,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 2,
                    preferred: None,
                },
            ),
            // Core 0's local pick sees only task 2 — if the yield requeue had been
            // misrouted to shard 0, the older task 1 would be popped here instead and
            // the replay would diverge.
            entry(
                7,
                40,
                TraceEvent::Pop {
                    core: 0,
                    tier: Some(PickTier::Node),
                    task: 2,
                },
            ),
            entry(
                8,
                45,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Node),
                    task: 1,
                },
            ),
        ];
        let report = assert_replays_clean(&meta, &entries);
        assert_eq!(report.pops, 3);
    }

    #[test]
    fn split_cross_shard_valve_serves_foreign_aged_work() {
        let meta = meta_split_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            // An early empty pick on core 2 arms shard 1's cross-shard valve.
            entry(1, 10, TraceEvent::PopEmpty { core: 2 }),
            entry(
                2,
                20,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 1,
                    preferred: Some(0),
                },
            ),
            // A quantum later the valve fires and core 2 takes shard 0's over-aged
            // task through the valve tier, ahead of the ordinary steal path.
            entry(
                3,
                60_000,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Aged),
                    task: 1,
                },
            ),
        ];
        let report = assert_replays_clean(&meta, &entries);
        assert_eq!(report.pops, 1);
        assert_eq!(report.aged_steps, vec![3]);
    }

    #[test]
    fn non_immediate_grant_must_match_last_pop() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                5,
                TraceEvent::Grant {
                    task: 3,
                    core: 0,
                    immediate: true, // idle-core grants bypass the queues: always fine
                },
            ),
            entry(
                2,
                9,
                TraceEvent::Grant {
                    task: 4,
                    core: 1,
                    immediate: false, // ...but a popped grant with no pop is malformed
                },
            ),
        ];
        let report = replay(&meta, &entries);
        assert_eq!(report.mismatched_grants, 1);
        assert!(!report.is_clean());
    }
}
