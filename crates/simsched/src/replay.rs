//! Deterministic replay of recorded scheduler traces.
//!
//! A trace recorded by the real runtime ([`usf_nosv::sched_trace`], behind its
//! `sched-trace` feature) is re-executed here through the *simulator's* instantiation of
//! the shared SCHED_COOP generic — [`CoopCore`]`<ProcessId, TaskId, SimTime>` — and every
//! recorded pop is compared against what the simulated policy picks at the same logical
//! step. A mismatch means the simulator and the runtime have drifted apart, which the
//! equivalence tests turn into a CI failure.
//!
//! The replay consumes the state-mutating events (`RegisterProcess`, `DeregisterProcess`,
//! `SetDomain`, `Enqueue`, `Pop`, `PopEmpty` — an empty pick re-arms the aging valve, so
//! it must be replayed too) as its script; `Grant` events are cross-checked against
//! the preceding pop (every non-immediate grant must hand out exactly the task the policy
//! just popped); the remaining events (`Submit`, `IntakeDrain`, `Yield`, `Migrate`,
//! `FaultInjected`, `Shutdown`) are context and are ignored — an injected fault's
//! *effects* show up as ordinary events, so a faulty trace replays like any other. Timestamps are mapped nanosecond-exact —
//! `SimTime::from_nanos(entry.at_nanos)` — which reproduces every quantum rotation and
//! aging-valve decision of the original run (see the recording-side documentation on why
//! the recorded instant is authoritative).

use crate::time::SimTime;
use usf_nosv::{CoopCore, PickTier, ProcessId, TaskId};
use usf_nosv::{TraceEntry, TraceEvent, TraceMeta};

/// The first step at which the simulated policy disagreed with the recorded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Logical step (the trace entry's index) of the disagreeing pop.
    pub step: u64,
    /// What the recording scheduler popped (task, tier; tier is `None` for tier-less
    /// policies), or `None` for a recorded empty pick ([`TraceEvent::PopEmpty`]).
    pub recorded: Option<(TaskId, Option<PickTier>)>,
    /// What the simulated policy popped instead (`None`: nothing was ready).
    pub replayed: Option<(TaskId, PickTier)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: recorded pop {:?}, simulated policy picked {:?}",
            self.step, self.recorded, self.replayed
        )
    }
}

/// Outcome of replaying one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Pops replayed (and compared) before stopping.
    pub pops: u64,
    /// Grant events seen (immediate and popped).
    pub grants: u64,
    /// Logical steps of the pops the *simulated* policy served from the aging valve.
    pub aged_steps: Vec<u64>,
    /// Non-immediate grants whose task did not match the latest replayed pop (always 0
    /// for a well-formed trace).
    pub mismatched_grants: u64,
    /// The first divergence, if the simulated policy ever disagreed with the recording.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Whether the whole trace replayed without drift.
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none() && self.mismatched_grants == 0
    }
}

/// Replay `entries` (recorded against the scheduler described by `meta`) through the
/// simulator's SCHED_COOP instantiation, stopping at the first divergence.
pub fn replay(meta: &TraceMeta, entries: &[TraceEntry]) -> ReplayReport {
    let quantum = SimTime::from_nanos(meta.quantum_nanos);
    let mut core: CoopCore<ProcessId, TaskId, SimTime> = CoopCore::new(meta, quantum);
    let mut report = ReplayReport {
        pops: 0,
        grants: 0,
        aged_steps: Vec::new(),
        mismatched_grants: 0,
        divergence: None,
    };
    let mut last_pop: Option<TaskId> = None;
    for entry in entries {
        let now = SimTime::from_nanos(entry.at_nanos);
        match &entry.event {
            TraceEvent::RegisterProcess { process } => core.register_process(*process),
            TraceEvent::DeregisterProcess { process } => core.deregister_process(*process),
            TraceEvent::SetDomain { process, cores } => {
                core.set_process_domain(*process, cores.clone());
            }
            TraceEvent::Enqueue {
                process,
                task,
                preferred,
            } => core.enqueue(*process, *task, *preferred, now),
            TraceEvent::Pop {
                core: at_core,
                tier,
                task,
            } => {
                let picked = core.pick_tiered(*at_core, now);
                let matches = match picked {
                    Some((t, picked_tier)) => {
                        t == *task && tier.map_or(true, |rec| rec == picked_tier)
                    }
                    None => false,
                };
                if !matches {
                    report.divergence = Some(Divergence {
                        step: entry.step,
                        recorded: Some((*task, *tier)),
                        replayed: picked,
                    });
                    return report;
                }
                if let Some((_, PickTier::Aged)) = picked {
                    report.aged_steps.push(entry.step);
                }
                report.pops += 1;
                last_pop = Some(*task);
            }
            TraceEvent::PopEmpty { core: at_core } => {
                // Re-execute the empty pick: it must serve nothing here too, and its
                // side effect (re-arming the aging valve) keeps later pops in lockstep.
                if let Some(picked) = core.pick_tiered(*at_core, now) {
                    report.divergence = Some(Divergence {
                        step: entry.step,
                        recorded: None,
                        replayed: Some(picked),
                    });
                    return report;
                }
            }
            TraceEvent::Grant {
                task, immediate, ..
            } => {
                report.grants += 1;
                if !*immediate && last_pop != Some(*task) {
                    report.mismatched_grants += 1;
                }
            }
            TraceEvent::Submit { .. }
            | TraceEvent::IntakeDrain { .. }
            | TraceEvent::Yield { .. }
            | TraceEvent::Migrate { .. }
            | TraceEvent::FaultInjected { .. }
            | TraceEvent::Shutdown => {}
        }
    }
    report
}

/// [`replay`], but panic with a readable message on any drift — the form the equivalence
/// tests and the fuzz smoke harness use to gate CI.
pub fn assert_replays_clean(meta: &TraceMeta, entries: &[TraceEntry]) -> ReplayReport {
    let report = replay(meta, entries);
    if let Some(d) = &report.divergence {
        panic!("sim-vs-real schedule drift: {d}");
    }
    assert_eq!(
        report.mismatched_grants, 0,
        "trace granted tasks that were not the latest pop"
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_2x2() -> TraceMeta {
        TraceMeta {
            core_nodes: vec![0, 0, 1, 1],
            quantum_nanos: 50_000,
            policy: "sched_coop".to_string(),
        }
    }

    fn entry(step: u64, at_nanos: u64, event: TraceEvent) -> TraceEntry {
        TraceEntry {
            step,
            at_nanos,
            event,
        }
    }

    #[test]
    fn scripted_trace_replays_clean() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 7,
                    preferred: Some(2),
                },
            ),
            entry(
                2,
                20,
                TraceEvent::Pop {
                    core: 2,
                    tier: Some(PickTier::Affinity),
                    task: 7,
                },
            ),
            entry(
                3,
                20,
                TraceEvent::Grant {
                    task: 7,
                    core: 2,
                    immediate: false,
                },
            ),
        ];
        let report = assert_replays_clean(&meta, &entries);
        assert_eq!(report.pops, 1);
        assert_eq!(report.grants, 1);
        assert!(report.aged_steps.is_empty());
    }

    #[test]
    fn wrong_recorded_pop_is_reported_as_divergence() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                10,
                TraceEvent::Enqueue {
                    process: 1,
                    task: 7,
                    preferred: None,
                },
            ),
            entry(
                2,
                20,
                TraceEvent::Pop {
                    core: 0,
                    tier: None,
                    task: 99, // the recorded scheduler claims a task the queues never saw
                },
            ),
        ];
        let report = replay(&meta, &entries);
        let d = report.divergence.expect("divergence must be detected");
        assert_eq!(d.step, 2);
        assert_eq!(d.recorded, Some((99, None)));
        assert_eq!(d.replayed.map(|(t, _)| t), Some(7));
    }

    #[test]
    fn non_immediate_grant_must_match_last_pop() {
        let meta = meta_2x2();
        let entries = vec![
            entry(0, 0, TraceEvent::RegisterProcess { process: 1 }),
            entry(
                1,
                5,
                TraceEvent::Grant {
                    task: 3,
                    core: 0,
                    immediate: true, // idle-core grants bypass the queues: always fine
                },
            ),
            entry(
                2,
                9,
                TraceEvent::Grant {
                    task: 4,
                    core: 1,
                    immediate: false, // ...but a popped grant with no pop is malformed
                },
            ),
        ];
        let report = replay(&meta, &entries);
        assert_eq!(report.mismatched_grants, 1);
        assert!(!report.is_clean());
    }
}
