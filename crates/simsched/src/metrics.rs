//! Simulation metrics and reports.

use crate::thread::{ProcessId, ThreadId, ThreadStats};
use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Total context switches (a core changing from one thread to another).
    pub context_switches: u64,
    /// Involuntary preemptions (quantum expiry under a preemptive policy).
    pub preemptions: u64,
    /// Dispatches on a core different from the thread's previous one.
    pub migrations: u64,
    /// The subset of migrations that crossed a socket (NUMA-node) boundary. The engine
    /// has always *charged* `cross_socket_penalty` for these; now it also counts them, so
    /// placement experiments assert on measured counters instead of inferring from
    /// latency.
    pub cross_socket_migrations: u64,
    /// Total useful CPU time across all cores.
    pub busy_time: SimTime,
    /// Total CPU time burnt busy-waiting.
    pub spin_time: SimTime,
    /// Total core-idle time (cores with nothing to run).
    pub idle_time: SimTime,
    /// Times a lock holder was preempted while holding a lock (LHP events).
    pub lock_holder_preemptions: u64,
    /// Voluntary yields executed.
    pub yields: u64,
    /// Threads that finished.
    pub threads_finished: u64,
}

impl SimMetrics {
    /// Fraction of consumed core time that was useful (busy / (busy + spin)).
    pub fn useful_fraction(&self) -> f64 {
        let busy = self.busy_time.as_secs_f64();
        let spin = self.spin_time.as_secs_f64();
        if busy + spin == 0.0 {
            0.0
        } else {
            busy / (busy + spin)
        }
    }
}

/// A sample of the node memory-bandwidth consumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BwSample {
    /// Sample time.
    pub time: SimTime,
    /// Consumed bandwidth in GB/s at that time.
    pub gbps: f64,
}

/// Full report of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReportData {
    /// Simulated time at which the last thread finished.
    pub makespan: SimTime,
    /// Aggregate counters.
    pub metrics: SimMetrics,
    /// Per-thread accounting, keyed by thread id.
    pub thread_stats: BTreeMap<ThreadId, ThreadStats>,
    /// Per-thread (arrival, finish) pairs, keyed by thread id.
    pub thread_times: BTreeMap<ThreadId, (SimTime, Option<SimTime>)>,
    /// Per-process completion time of the last thread of that process.
    pub process_completion: BTreeMap<ProcessId, SimTime>,
    /// Per-thread `(unit, completion time)` marks recorded by
    /// [`crate::program::Op::UnitMark`], in program order. Threads whose program contains
    /// no marks are absent.
    pub unit_marks: BTreeMap<ThreadId, Vec<(usize, SimTime)>>,
    /// The set of cores each thread was dispatched on over the run (the placement trace
    /// the partitioned-model property tests assert containment on).
    pub thread_cores: BTreeMap<ThreadId, BTreeSet<usize>>,
    /// Bandwidth consumption trace (one sample per change).
    pub bw_trace: Vec<BwSample>,
    /// Whether the run ended in deadlock (unfinished threads but no runnable work). The
    /// paper's §4.4 limitation — un-yielding busy-wait barriers under a cooperative
    /// scheduler — shows up as this flag.
    pub deadlocked: bool,
}

impl SimReportData {
    /// Mean turnaround of the threads selected by `filter` (e.g. request threads).
    pub fn mean_turnaround(&self, filter: impl Fn(ThreadId) -> bool) -> Option<SimTime> {
        let vals: Vec<SimTime> = self
            .thread_times
            .iter()
            .filter(|(id, _)| filter(**id))
            .filter_map(|(_, (a, f))| f.map(|f| f.saturating_sub(*a)))
            .collect();
        if vals.is_empty() {
            None
        } else {
            let total: SimTime = vals.iter().copied().sum();
            Some(total / vals.len() as u64)
        }
    }

    /// Average consumed bandwidth over the run (GB/s), integrating the trace.
    pub fn average_bandwidth(&self) -> f64 {
        if self.bw_trace.len() < 2 || self.makespan == SimTime::ZERO {
            return 0.0;
        }
        let mut integral = 0.0;
        for w in self.bw_trace.windows(2) {
            let dt = w[1].time.saturating_sub(w[0].time).as_secs_f64();
            integral += w[0].gbps * dt;
        }
        // Extend the last sample to the makespan.
        if let Some(last) = self.bw_trace.last() {
            integral += last.gbps * self.makespan.saturating_sub(last.time).as_secs_f64();
        }
        integral / self.makespan.as_secs_f64()
    }

    /// Peak consumed bandwidth (GB/s).
    pub fn peak_bandwidth(&self) -> f64 {
        self.bw_trace.iter().map(|s| s.gbps).fold(0.0, f64::max)
    }

    /// Total `(migrations, cross-socket migrations)` over the given threads (typically
    /// one process's parallel region) — the per-process counters the §5.6 placement
    /// figures report.
    pub fn migrations_for(&self, threads: &[ThreadId]) -> (u64, u64) {
        threads
            .iter()
            .filter_map(|t| self.thread_stats.get(t))
            .fold((0, 0), |(m, x), s| {
                (m + s.migrations, x + s.cross_socket_migrations)
            })
    }

    /// Completion time of each unit across the given threads (typically one process's
    /// parallel region): for every unit index marked by any of the threads, the *latest*
    /// mark — a unit of a region is complete when its last thread passes the mark.
    /// Returned sorted by unit index.
    pub fn unit_completions_for(&self, threads: &[ThreadId]) -> Vec<(usize, SimTime)> {
        let mut latest: BTreeMap<usize, SimTime> = BTreeMap::new();
        for tid in threads {
            for (unit, at) in self.unit_marks.get(tid).map_or(&[][..], |m| &m[..]) {
                let entry = latest.entry(*unit).or_insert(SimTime::ZERO);
                *entry = (*entry).max(*at);
            }
        }
        latest.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_fraction_handles_zero() {
        let m = SimMetrics::default();
        assert_eq!(m.useful_fraction(), 0.0);
        let m = SimMetrics {
            busy_time: SimTime::from_secs(3),
            spin_time: SimTime::from_secs(1),
            ..Default::default()
        };
        assert!((m.useful_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_turnaround_filters_threads() {
        let mut r = SimReportData::default();
        r.thread_times
            .insert(1, (SimTime::ZERO, Some(SimTime::from_secs(2))));
        r.thread_times
            .insert(2, (SimTime::from_secs(1), Some(SimTime::from_secs(2))));
        r.thread_times.insert(3, (SimTime::ZERO, None));
        let all = r.mean_turnaround(|_| true).unwrap();
        assert_eq!(all, SimTime::from_millis(1500));
        let only2 = r.mean_turnaround(|id| id == 2).unwrap();
        assert_eq!(only2, SimTime::from_secs(1));
        assert!(r.mean_turnaround(|id| id == 99).is_none());
    }

    #[test]
    fn unit_completions_take_the_latest_mark_per_unit() {
        let mut r = SimReportData::default();
        r.unit_marks.insert(
            1,
            vec![(0, SimTime::from_millis(2)), (1, SimTime::from_millis(9))],
        );
        r.unit_marks.insert(
            2,
            vec![(0, SimTime::from_millis(5)), (1, SimTime::from_millis(7))],
        );
        let c = r.unit_completions_for(&[1, 2]);
        assert_eq!(
            c,
            vec![(0, SimTime::from_millis(5)), (1, SimTime::from_millis(9))]
        );
        // A thread subset only sees its own marks; unknown threads contribute nothing.
        assert_eq!(
            r.unit_completions_for(&[2, 99]),
            vec![(0, SimTime::from_millis(5)), (1, SimTime::from_millis(7))]
        );
        assert!(r.unit_completions_for(&[]).is_empty());
    }

    #[test]
    fn bandwidth_integration() {
        let r = SimReportData {
            makespan: SimTime::from_secs(4),
            bw_trace: vec![
                BwSample {
                    time: SimTime::ZERO,
                    gbps: 100.0,
                },
                BwSample {
                    time: SimTime::from_secs(2),
                    gbps: 0.0,
                },
            ],
            ..Default::default()
        };
        // 100 GB/s for 2s out of 4s → average 50.
        assert!((r.average_bandwidth() - 50.0).abs() < 1e-9);
        assert_eq!(r.peak_bandwidth(), 100.0);
    }
}
