//! Property test: the partitioned scheduling model is a real partition.
//!
//! For random programs, random disjoint core partitions and random machine shapes, a
//! process mapped by [`SchedModel::Partitioned`] must never execute an op on a core
//! outside its assigned partition — and therefore disjoint partitions can never produce a
//! cross-partition migration. This is the invariant the bl-eq/bl-opt baselines of the
//! scenario matrix (`usf_scenarios::SimExecutor::partitioned_eq`/`partitioned_opt`) rest
//! on: a static split only "strands idle cores" if the scheduler actually refuses to give
//! them to the other processes' mapped threads.

use proptest::prelude::*;
use usf_simsched::{BarrierWaitKind, Engine, Machine, Program, SchedModel, SimTime};

/// Build one thread program from the drawn per-unit shape: compute, optionally a sleep,
/// optionally a yield, and a per-process barrier over all region threads.
fn thread_program(
    process: usize,
    units: usize,
    work_us: u64,
    with_sleep: bool,
    with_yield: bool,
    barrier_kind: usize,
    threads: usize,
) -> Program {
    Program::new(format!("p{process}")).extend_with(units, |prog, unit| {
        let mut prog = prog.compute(SimTime::from_micros(work_us + unit as u64 * 7));
        if with_sleep {
            prog = prog.sleep(SimTime::from_micros(50));
        }
        if with_yield {
            prog = prog.yield_now();
        }
        if threads > 1 {
            let kind = match barrier_kind % 3 {
                0 => BarrierWaitKind::Block,
                1 => BarrierWaitKind::Spin,
                _ => BarrierWaitKind::SpinYield {
                    slice: SimTime::from_micros(20),
                },
            };
            prog = prog.barrier(1_000 * (process as u64 + 1) + unit as u64, threads, kind);
        }
        prog.unit_mark(unit)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mapped_processes_never_leave_their_partition(
        cores in 4..10usize,
        // Per process: (threads, units, work_us, with_sleep, with_yield, barrier_kind).
        draws in proptest::collection::vec(
            (1..4usize, 1..4usize, 10..200u64, proptest::bool::ANY, proptest::bool::ANY, 0..3usize),
            2..4,
        ),
        split_seed in 0..1000usize,
    ) {
        let nprocs = draws.len().min(cores); // every process needs >= 1 core
        let draws = &draws[..nprocs];

        // Carve `cores` into `nprocs` disjoint contiguous partitions (each non-empty),
        // with the split points drawn from the seed.
        let mut sizes = vec![1usize; nprocs];
        let mut left = cores - nprocs;
        let mut s = split_seed;
        while left > 0 {
            sizes[s % nprocs] += 1;
            s = s.wrapping_mul(31).wrapping_add(17);
            left -= 1;
        }
        let mut next = 0usize;
        let partitions: Vec<Vec<usize>> = sizes
            .iter()
            .map(|&len| {
                let p: Vec<usize> = (next..next + len).collect();
                next += len;
                p
            })
            .collect();
        let assignments: Vec<(usize, Vec<usize>)> =
            partitions.iter().cloned().enumerate().collect();

        let machine = Machine::small_numa(cores, if cores >= 6 { 2 } else { 1 });
        let mut engine = Engine::new(machine, &SchedModel::Partitioned { assignments });
        engine.set_max_sim_time(SimTime::from_secs(60));

        let mut proc_threads: Vec<Vec<usize>> = Vec::new();
        for (i, &(threads, units, work_us, with_sleep, with_yield, barrier_kind)) in
            draws.iter().enumerate()
        {
            let pid = engine.add_process(format!("p{i}"), 1.0);
            let ids: Vec<usize> = (0..threads)
                .map(|_| {
                    let prog = thread_program(
                        i, units, work_us, with_sleep, with_yield, barrier_kind, threads,
                    )
                    .build();
                    engine.add_thread(pid, prog)
                })
                .collect();
            proc_threads.push(ids);
        }

        let report = engine.run();
        prop_assert!(!report.deadlocked, "partitioned runs are preemptive and must finish");

        // Containment: every dispatch of a mapped process landed inside its partition —
        // which makes a cross-partition migration structurally impossible.
        for (i, ids) in proc_threads.iter().enumerate() {
            let partition: std::collections::BTreeSet<usize> =
                partitions[i].iter().copied().collect();
            for &tid in ids {
                let used = &report.thread_cores[&tid];
                prop_assert!(
                    used.is_subset(&partition),
                    "process {i} thread {tid} ran on {used:?}, outside partition {partition:?}"
                );
            }
        }

        // Disjointness across processes carries over to the placement traces.
        for a in 0..nprocs {
            for b in (a + 1)..nprocs {
                for &ta in &proc_threads[a] {
                    for &tb in &proc_threads[b] {
                        let inter: Vec<usize> = report.thread_cores[&ta]
                            .intersection(&report.thread_cores[&tb])
                            .copied()
                            .collect();
                        prop_assert!(
                            inter.is_empty(),
                            "threads {ta} (p{a}) and {tb} (p{b}) shared cores {inter:?}"
                        );
                    }
                }
            }
        }

        // And every thread completed all of its units (the marks are full traces).
        for (i, ids) in proc_threads.iter().enumerate() {
            let units = draws[i].1;
            for &tid in ids {
                prop_assert_eq!(report.unit_marks[&tid].len(), units);
            }
        }
    }
}
