//! Randomized property tests for the observability-plane histogram
//! (`usf_nosv::Histogram`): merge algebra, exact counting, percentile bracketing, delta
//! consistency, and lossless concurrent recording.
//!
//! The repo carries no external property-testing dependency, so these are hand-rolled:
//! a deterministic splitmix64 generator drives many random cases per property, and every
//! assertion prints the seed of the failing case.

use usf_nosv::{Histogram, HistogramSnapshot};

/// splitmix64 — the same deterministic generator idiom the fault plane uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A latency-shaped value: random bit-width up to 2^40 ns (~18 min), so samples
    /// spread across many log₂ buckets instead of clustering in the top one.
    fn latency_ns(&mut self) -> u64 {
        let bits = self.next() % 41;
        self.next() & ((1u64 << bits) - 1).max(1)
    }

    fn values(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.latency_ns()).collect()
    }
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(1);
    for &v in values {
        h.record_ns(v);
    }
    h.snapshot()
}

fn merged(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn merge_is_commutative_and_associative() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let (na, nb, nc) = (
            1 + (rng.next() % 200) as usize,
            1 + (rng.next() % 200) as usize,
            1 + (rng.next() % 200) as usize,
        );
        let a = snapshot_of(&rng.values(na));
        let b = snapshot_of(&rng.values(nb));
        let c = snapshot_of(&rng.values(nc));
        assert_eq!(merged(&a, &b), merged(&b, &a), "commutativity, seed {seed}");
        assert_eq!(
            merged(&merged(&a, &b), &c),
            merged(&a, &merged(&b, &c)),
            "associativity, seed {seed}"
        );
        // The empty snapshot is the identity.
        let zero = HistogramSnapshot::default();
        assert_eq!(merged(&a, &zero), a, "identity, seed {seed}");
    }
}

#[test]
fn count_sum_min_max_are_exact() {
    for seed in 100..164u64 {
        let mut rng = Rng(seed);
        let n = 1 + (rng.next() % 500) as usize;
        let values = rng.values(n);
        let s = snapshot_of(&values);
        assert_eq!(s.count, values.len() as u64, "seed {seed}");
        assert_eq!(s.sum, values.iter().sum::<u64>(), "seed {seed}");
        assert_eq!(s.min_ns, *values.iter().min().unwrap(), "seed {seed}");
        assert_eq!(s.max_ns, *values.iter().max().unwrap(), "seed {seed}");
        assert_eq!(s.count, s.buckets.iter().sum::<u64>(), "seed {seed}");
        assert_eq!(
            s.mean_ns(),
            s.sum / s.count,
            "mean is true-sum/true-count, seed {seed}"
        );
    }
}

#[test]
fn percentile_bounds_bracket_the_true_quantile() {
    for seed in 200..264u64 {
        let mut rng = Rng(seed);
        let n = 1 + (rng.next() % 300) as usize;
        let mut values = rng.values(n);
        let s = snapshot_of(&values);
        values.sort_unstable();
        for p in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            // The same rank convention percentile_bounds documents.
            let rank = ((p * values.len() as f64).ceil() as usize).max(1);
            let truth = values[rank - 1];
            let (lo, hi) = s.percentile_bounds(p);
            assert!(
                lo <= truth && truth <= hi,
                "seed {seed} p {p}: true {truth} outside [{lo}, {hi}]"
            );
            // The point estimate is the upper bound: never below the true value, and
            // within one log₂ bucket (≤ 2×) above it.
            let est = s.percentile(p);
            assert_eq!(est, hi, "seed {seed} p {p}");
            assert!(
                est <= truth.saturating_mul(2).max(1),
                "seed {seed} p {p}: estimate {est} more than 2x true {truth}"
            );
        }
    }
}

#[test]
fn delta_recovers_the_second_phase() {
    for seed in 300..364u64 {
        let mut rng = Rng(seed);
        let h = Histogram::new(4);
        let (n1, n2) = (
            1 + (rng.next() % 200) as usize,
            1 + (rng.next() % 200) as usize,
        );
        let phase1 = rng.values(n1);
        let phase2 = rng.values(n2);
        for &v in &phase1 {
            h.record_ns(v);
        }
        let s1 = h.snapshot();
        for &v in &phase2 {
            h.record_ns(v);
        }
        let s2 = h.snapshot();
        let d = s2.delta(&s1);
        assert_eq!(d.count, phase2.len() as u64, "seed {seed}");
        assert_eq!(d.sum, phase2.iter().sum::<u64>(), "seed {seed}");
        // Deltas merge back: earlier snapshot + delta == later snapshot, bucket for
        // bucket (min/max are bucket-edge approximations, so compare the exact fields).
        let back = merged(&s1, &d);
        assert_eq!(back.buckets, s2.buckets, "seed {seed}");
        assert_eq!(back.count, s2.count, "seed {seed}");
        assert_eq!(back.sum, s2.sum, "seed {seed}");
    }
}

#[test]
fn concurrent_recording_loses_no_samples() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;
    let h = Arc::new(Histogram::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut rng = Rng(0xC0FFEE ^ t as u64);
                let mut sum = 0u64;
                for _ in 0..PER_THREAD {
                    let v = rng.latency_ns();
                    sum += v;
                    h.record_ns(v);
                }
                sum
            })
        })
        .collect();
    let expected_sum: u64 = handles
        .into_iter()
        .map(|j| j.join().expect("recorder panicked"))
        .sum();
    let s = h.snapshot();
    assert_eq!(
        s.count,
        (THREADS * PER_THREAD) as u64,
        "relaxed sharded recording must not lose samples"
    );
    assert_eq!(s.sum, expected_sum);
    assert_eq!(s.count, s.buckets.iter().sum::<u64>());
}
