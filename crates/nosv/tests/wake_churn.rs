//! Wake-churn regression tests: pin the scheduler's wake-path behaviour under rapid
//! pause/submit cycles and concurrent wakers.
//!
//! The lock-free intake (BENCH_sched.json: ~2031 grants/s intake vs ~2525 grants/s on the
//! locked baseline under 16×-oversubscription churn) reordered *where* submits are
//! absorbed, and these tests pin what must not change with it:
//!
//! * grant ordering stays FIFO for same-preference tasks submitted in sequence;
//! * no wake-up is ever lost under concurrent wakers — a paused task resubmitted by
//!   another thread is granted exactly once per cycle (`grants == cycles + 1`,
//!   `blocks == cycles`), with no pause elided by a stale pending wake-up;
//! * no single grant hand-off (waker's submit → woken worker running) exceeds a
//!   generous no-fault bound — the convoy regression pin: grant-slot notifications
//!   fire only after the scheduler lock drops, so a woken worker never contends with
//!   its waker;
//! * a submit racing all workers into park is still granted promptly — idle workers
//!   drain the intake before parking, featurelessly (not just the fault-armed
//!   `rescue_drain` watchdog);
//! * all gauges reconcile to zero when the churn stops.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use usf_nosv::prelude::*;
use usf_nosv::scheduler::Scheduler;
use usf_nosv::task::TaskState;

fn sched(cores: usize) -> Arc<Scheduler> {
    Arc::new(Scheduler::new(NosvConfig::with_cores(cores)))
}

/// Same-preference tasks submitted back-to-back on one core are granted in submit order.
#[test]
fn grant_order_is_fifo_on_one_core() {
    let s = sched(1);
    let p = s.register_process("p");
    let tasks: Vec<_> = (0..5).map(|_| s.create_task(p, None).unwrap()).collect();
    for t in &tasks {
        s.submit(t);
    }
    // tasks[0] runs; detaching the running task must hand the core to the next in
    // submission order, every time.
    assert_eq!(tasks[0].state(), TaskState::Running);
    for i in 0..4 {
        s.detach(&tasks[i]);
        assert_eq!(
            tasks[i + 1].state(),
            TaskState::Running,
            "task {} must be granted when task {} detaches",
            i + 1,
            i
        );
        for later in &tasks[i + 2..] {
            assert_eq!(later.state(), TaskState::Ready, "FIFO order violated");
        }
    }
    s.detach(&tasks[4]);
    assert_eq!(s.busy_cores(), 0);
    assert_eq!(s.ready_count(), 0);
}

/// Concurrent wake churn: 4 workers pause N times each on 2 cores while dedicated waker
/// threads resubmit them. Every cycle must produce exactly one block and one grant.
#[test]
fn concurrent_wake_churn_loses_no_wakeups() {
    const WORKERS: usize = 4;
    const CYCLES: usize = 200;
    let s = sched(2);
    let p = s.register_process("p");

    let mut handles = Vec::new();
    for _ in 0..WORKERS {
        let task = s.create_task(p, None).unwrap();
        let worker = {
            let s = Arc::clone(&s);
            let task = task.clone();
            std::thread::spawn(move || {
                s.attach(&task);
                for _ in 0..CYCLES {
                    s.pause(&task);
                }
                s.detach(&task);
            })
        };
        let waker = {
            let s = Arc::clone(&s);
            let task = task.clone();
            std::thread::spawn(move || {
                // Resubmit after each observed block until the worker's cycles are done.
                // A submit while the task still runs is counted as a pending wake-up and
                // would elide a pause — waiting for Blocked keeps the accounting exact.
                let mut woken = 0;
                while woken < CYCLES {
                    if task.state() == TaskState::Blocked {
                        s.submit(&task);
                        woken += 1;
                    } else {
                        std::thread::yield_now();
                    }
                    if task.state() == TaskState::Finished {
                        break;
                    }
                }
            })
        };
        handles.push((task, worker, waker));
    }

    for (task, worker, waker) in handles {
        worker.join().unwrap();
        waker.join().unwrap();
        let grants = task.stats.grants.load(Ordering::SeqCst);
        let blocks = task.stats.blocks.load(Ordering::SeqCst);
        assert_eq!(
            grants,
            (CYCLES + 1) as u64,
            "every wake must produce exactly one grant (attach + one per cycle)"
        );
        assert_eq!(blocks, CYCLES as u64, "every pause must block exactly once");
    }

    let m = s.metrics().snapshot();
    assert_eq!(
        m.pauses_elided, 0,
        "wakers only fire on Blocked, so no pause may consume a pending wake-up"
    );
    assert_eq!(s.busy_cores(), 0);
    assert_eq!(s.ready_count(), 0);
    assert_eq!(s.live_tasks(), 0);
}

/// The convoy pin: across rapid pause/submit cycles, the worst single grant hand-off —
/// from the waker's submit of a blocked task to the woken worker returning from pause —
/// stays under a bound generous enough to never flake fault-free, but far below the
/// ~119ms wake p99 the convoy produced (a woken worker immediately blocking on the
/// scheduler lock its waker still held).
#[test]
fn grant_handoff_stays_bounded() {
    const CYCLES: usize = 200;
    const BOUND: Duration = Duration::from_millis(500);
    let s = sched(1);
    let p = s.register_process("p");
    let task = s.create_task(p, None).unwrap();
    let wake_times: Arc<std::sync::Mutex<Vec<Instant>>> = Arc::default();

    let worker = {
        let s = Arc::clone(&s);
        let task = task.clone();
        let wake_times = Arc::clone(&wake_times);
        std::thread::spawn(move || {
            s.attach(&task);
            for _ in 0..CYCLES {
                s.pause(&task);
                wake_times.lock().unwrap().push(Instant::now());
            }
            s.detach(&task);
        })
    };

    // The waker only fires on an observed block, so submit `i` wakes pause `i` exactly:
    // the two timestamp vectors pair up index-for-index.
    let mut submit_times = Vec::with_capacity(CYCLES);
    while submit_times.len() < CYCLES {
        if task.state() == TaskState::Blocked {
            submit_times.push(Instant::now());
            s.submit(&task);
            // Wait for the wake to be observed before looking for the next block, so a
            // fast worker can never pair this submit with a later cycle.
            while wake_times.lock().unwrap().len() < submit_times.len() {
                std::thread::yield_now();
            }
        } else {
            std::thread::yield_now();
        }
    }
    worker.join().unwrap();

    let wakes = wake_times.lock().unwrap();
    let worst = submit_times
        .iter()
        .zip(wakes.iter())
        .map(|(s, w)| w.duration_since(*s))
        .max()
        .unwrap();
    assert!(
        worst < BOUND,
        "worst grant hand-off {worst:?} exceeds the no-fault bound {BOUND:?}"
    );
    assert_eq!(s.busy_cores(), 0);
    assert_eq!(s.live_tasks(), 0);
}

/// A submit taking the lock-free intake path while the only worker is heading into park
/// must still be granted promptly: the parking worker drains the intake before blocking.
/// Before that pre-park drain, the entry sat until the next organic scheduling point
/// (BENCH_sched.json recorded intake waits up to ~32ms; with no further traffic,
/// indefinitely unless the fault-armed `rescue_drain` watchdog happened to be on).
#[test]
fn submit_to_fully_parked_scheduler_is_granted_promptly() {
    let s = sched(1);
    let p = s.register_process("p");
    let runner = s.create_task(p, None).unwrap();
    let go = Arc::new(AtomicBool::new(false));

    let worker = {
        let s = Arc::clone(&s);
        let runner = runner.clone();
        let go = Arc::clone(&go);
        std::thread::spawn(move || {
            s.attach(&runner);
            while !go.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            s.pause(&runner); // parks the last worker: the scheduler is now fully parked
            s.detach(&runner);
        })
    };
    while runner.state() != TaskState::Running {
        std::thread::yield_now();
    }

    // The single core is busy, so this submit takes the lock-free intake fast path and
    // queues in the intake stack — it cannot be granted until someone drains it.
    let t = s.create_task(p, None).unwrap();
    s.submit(&t);
    let t0 = Instant::now();
    go.store(true, Ordering::SeqCst);

    // The worker now pauses. Draining the intake on its way into park must hand the
    // freed core to the queued task promptly — not at some later scheduling point.
    while t.state() != TaskState::Running {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "intake entry stranded while the scheduler is parked (state {:?})",
            t.state()
        );
        std::thread::yield_now();
    }

    s.detach(&t); // free the core
    s.submit(&runner); // wake the parked worker so it can detach
    worker.join().unwrap();
    assert_eq!(s.busy_cores(), 0);
    assert_eq!(s.ready_count(), 0);
    assert_eq!(s.live_tasks(), 0);
}

/// Wake-ups of blocked tasks are served FIFO: with the only core held by a runner, tasks
/// woken in a given order must be granted in that order once the core frees up — in both
/// wake orders.
#[test]
fn wakeups_are_granted_in_submission_order() {
    for reversed in [false, true] {
        let s = sched(1);
        let p = s.register_process("p");
        let order: Arc<std::sync::Mutex<Vec<u64>>> = Arc::default();

        // Park two tasks in the Blocked state, one after the other (each runs briefly on
        // the idle core, then pauses and releases it).
        let mut parked = Vec::new();
        for _ in 0..2 {
            let t = s.create_task(p, None).unwrap();
            let h = {
                let s = Arc::clone(&s);
                let t = t.clone();
                let order = Arc::clone(&order);
                std::thread::spawn(move || {
                    s.attach(&t);
                    s.pause(&t); // returns when woken and granted again
                    order.lock().unwrap().push(t.id());
                    s.detach(&t);
                })
            };
            while t.state() != TaskState::Blocked {
                std::thread::yield_now();
            }
            parked.push((t, h));
        }

        // Occupy the core so the wake-ups below queue up instead of being granted.
        let runner = s.create_task(p, None).unwrap();
        s.submit(&runner);
        assert_eq!(runner.state(), TaskState::Running);

        let (first, second) = if reversed {
            (parked[1].0.clone(), parked[0].0.clone())
        } else {
            (parked[0].0.clone(), parked[1].0.clone())
        };
        s.submit(&first);
        s.submit(&second);
        // Freeing the core must grant the wake-ups in wake order, whichever it was.
        s.detach(&runner);
        for (_, h) in parked {
            h.join().unwrap();
        }

        assert_eq!(
            *order.lock().unwrap(),
            vec![first.id(), second.id()],
            "wake-ups must be granted in wake order (reversed = {reversed})"
        );
        assert_eq!(s.busy_cores(), 0);
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.live_tasks(), 0);
    }
}

/// Split-lock sentinel: once workers are attached, a steady-state pause/submit churn
/// window is entirely shard-local — the global section (process/task tables) is not
/// acquired even once. This is the structural guarantee behind the per-node scaling:
/// same-node scheduling points touch only their shard's dispatch lock.
#[test]
fn steady_state_churn_takes_no_global_section() {
    const CYCLES: usize = 200;
    let s = Arc::new(Scheduler::new(
        NosvConfig::with_topology(usf_nosv::Topology::new(2, 2)).policy(PolicyKind::CoopSplit),
    ));
    let p = s.register_process("p");
    let task = s.create_task(p, None).unwrap();

    let in_window = Arc::new(AtomicBool::new(false));
    let window_global: Arc<std::sync::Mutex<Option<(u64, u64)>>> = Arc::default();
    let worker = {
        let s = Arc::clone(&s);
        let task = task.clone();
        let in_window = Arc::clone(&in_window);
        let window_global = Arc::clone(&window_global);
        std::thread::spawn(move || {
            s.attach(&task);
            // Attach (task-table write) is done: open the measurement window.
            let before = s.metrics().snapshot().global_lock_acquisitions;
            in_window.store(true, Ordering::SeqCst);
            for _ in 0..CYCLES {
                s.pause(&task);
            }
            let after = s.metrics().snapshot().global_lock_acquisitions;
            in_window.store(false, Ordering::SeqCst);
            *window_global.lock().unwrap() = Some((before, after));
            s.detach(&task);
        })
    };
    let mut woken = 0;
    while woken < CYCLES {
        if task.state() == TaskState::Blocked {
            s.submit(&task);
            woken += 1;
        } else {
            std::thread::yield_now();
        }
    }
    worker.join().unwrap();

    let (before, after) = window_global.lock().unwrap().expect("window not recorded");
    assert_eq!(
        after - before,
        0,
        "steady-state churn must not touch the global section \
         ({} acquisitions inside the window)",
        after - before
    );
    assert_eq!(s.busy_cores(), 0);
    assert_eq!(s.live_tasks(), 0);
}

/// Cross-node scaling: with producers pinned to distinct NUMA nodes (via process
/// placement domains), wake-churn throughput on a 2-node split-lock scheduler must beat
/// the same churn serialized through a single dispatch lock by at least 1.5×. Skipped on
/// hosts without enough parallelism to run the two node-churns concurrently (or when
/// `USF_SKIP_NODE_SCALING` is set) — the contention being measured does not exist there.
#[test]
fn cross_node_churn_scales_with_node_count() {
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    if parallelism < 4 || std::env::var_os("USF_SKIP_NODE_SCALING").is_some() {
        eprintln!(
            "skipping cross_node_churn_scales_with_node_count: \
             available parallelism {parallelism} < 4 (or USF_SKIP_NODE_SCALING set)"
        );
        return;
    }
    const CORES: usize = 4;
    const CYCLES: usize = 2_000;

    // One pause/submit churn pair per node, the process pinned to that node's cores.
    let grants_per_sec = |nodes: usize| -> f64 {
        let topo = usf_nosv::Topology::new(CORES, nodes);
        let node_cores: Vec<Vec<usize>> = (0..nodes)
            .map(|n| topo.cores_in_node(n).collect())
            .collect();
        let s = Arc::new(Scheduler::new(
            NosvConfig::with_topology(topo).policy(PolicyKind::CoopSplit),
        ));
        let mut pairs = Vec::new();
        for cores in node_cores {
            let p = s.register_process("pinned");
            s.set_process_domain(p, Some(cores));
            let task = s.create_task(p, None).unwrap();
            let worker = {
                let s = Arc::clone(&s);
                let task = task.clone();
                std::thread::spawn(move || {
                    s.attach(&task);
                    for _ in 0..CYCLES {
                        s.pause(&task);
                    }
                    s.detach(&task);
                })
            };
            let waker = {
                let s = Arc::clone(&s);
                let task = task.clone();
                std::thread::spawn(move || {
                    let mut woken = 0;
                    while woken < CYCLES {
                        if task.state() == TaskState::Blocked {
                            s.submit(&task);
                            woken += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                })
            };
            pairs.push((worker, waker));
        }
        let t0 = Instant::now();
        for (worker, waker) in pairs {
            worker.join().unwrap();
            waker.join().unwrap();
        }
        let grants = s.metrics().snapshot().grants;
        grants as f64 / t0.elapsed().as_secs_f64()
    };

    // Warm up once (thread spawn, allocator), then measure; take the best of two runs
    // per shape to shave scheduler noise.
    let _ = grants_per_sec(1);
    let one_node = grants_per_sec(1).max(grants_per_sec(1));
    let two_node = grants_per_sec(2).max(grants_per_sec(2));
    assert!(
        two_node >= 1.5 * one_node,
        "2-node churn must scale past the single dispatch lock: \
         {two_node:.0} grants/s vs {one_node:.0} grants/s on one node"
    );
}
