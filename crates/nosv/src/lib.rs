//! `usf-nosv` — a user-space tasking and scheduling substrate modelled after the
//! nOS-V library that the USF paper builds on (Álvarez, Sala, Beltran, IPDPS'24;
//! summarised in §2.3 of the USF paper).
//!
//! The crate provides the *mechanism* layer that the USF framework (crate
//! `usf-core`) turns into a seamless scheduler:
//!
//! * **Tasks** ([`task::Task`]) — the schedulable entity. In the USF use case every
//!   application thread is permanently bound to exactly one task (which is what keeps
//!   thread-local storage working), but the substrate does not require that.
//! * **Virtual cores** ([`topology::Topology`]) — the scheduler keeps *at most one running
//!   task per core slot* at all times, which is the invariant that removes involuntary
//!   preemption between participating threads.
//! * **A centralized multi-process scheduler** ([`scheduler::Scheduler`]) — a single
//!   shared scheduler instance manages tasks from any number of *process domains*
//!   ([`process::ProcessId`]). Idle cores are handed the next ready task according to the
//!   installed [`policy::Policy`]; the default [`policy::CoopPolicy`] implements the
//!   paper's SCHED_COOP selection rule (per-process per-core FIFO queues, affinity →
//!   NUMA → anywhere placement, and a per-process quantum evaluated only at scheduling
//!   points).
//! * **Scheduling points** — [`instance::TaskHandle::pause`], [`instance::NosvInstance::submit`],
//!   [`instance::TaskHandle::yield_now`], [`instance::TaskHandle::waitfor`] and
//!   [`instance::TaskHandle::detach`] correspond to `nosv_pause`, `nosv_submit`,
//!   `nosv_yield`, `nosv_waitfor` and `nosv_detach`.
//!
//! The paper's nOS-V shares its state between real OS processes through a shared-memory
//! segment; this reproduction keeps the state in an [`std::sync::Arc`] shared by any number
//! of process *domains* within one address space and offers a named global registry
//! ([`instance::NosvInstance::connect`]) so independently initialised components can join
//! the same scheduler, mimicking `shm_open`-by-name semantics (see DESIGN.md for the
//! substitution rationale).
//!
//! # Example
//!
//! ```
//! use usf_nosv::prelude::*;
//! use std::sync::Arc;
//!
//! let nosv = NosvInstance::new(NosvConfig::with_cores(2));
//! let pid = nosv.register_process("demo");
//!
//! // Attach the current thread as a worker with an associated task.
//! let handle = nosv.attach(pid, Some("main"));
//! assert!(handle.current_core().is_some());
//!
//! // Spawn another worker that simply attaches, runs, and detaches.
//! let nosv2 = nosv.clone();
//! let t = std::thread::spawn(move || {
//!     let h = nosv2.attach(pid, Some("worker"));
//!     // ... do work, possibly pausing/yielding ...
//!     h.detach();
//! });
//!
//! t.join().unwrap();
//! handle.detach();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod error;
pub mod faults;
pub mod fuzz;
pub mod instance;
pub mod metrics;
pub mod obs;
pub mod policy;
pub mod process;
pub mod readyq;
pub mod sched_trace;
pub mod scheduler;
pub mod task;
pub mod topology;

pub use config::{NosvConfig, PolicyKind};
pub use error::NosvError;
pub use faults::{FaultPlan, FaultRecord, FaultSite, FaultSpec, FaultState};
pub use instance::{NosvInstance, TaskHandle};
pub use metrics::{MetricsSnapshot, SchedulerMetrics};
pub use obs::{
    GaugesSnapshot, Histogram, HistogramSnapshot, ProcessGauges, ShardSnapshot, ShardStats,
    StageSnapshot, StageStats, StatsRegistry, StatsSample, StatsSampler, StatsSnapshot,
};
pub use policy::{CoopPolicy, FifoPolicy, Policy, ShardedCoopPolicy, TaskMeta};
pub use process::ProcessId;
pub use readyq::{
    CoopCore, CoreMap, CrossValve, PickTier, ProcQueues, ReadyQueues, ReadyTime, ShardedCoopCore,
    ShardedProcQueues, TopologyView,
};
pub use sched_trace::{TraceEntry, TraceEvent, TraceMeta, TraceRecorder};
pub use scheduler::{KillReport, StallReport};
pub use task::{Task, TaskId, TaskRef, TaskState, WaitOutcome};
pub use topology::{CoreId, Topology};

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::config::{NosvConfig, PolicyKind};
    pub use crate::instance::{NosvInstance, TaskHandle};
    pub use crate::policy::{CoopPolicy, FifoPolicy, Policy, ShardedCoopPolicy, TaskMeta};
    pub use crate::process::ProcessId;
    pub use crate::task::{TaskRef, TaskState, WaitOutcome};
    pub use crate::topology::{CoreId, Topology};
}
