//! Seeded fault injection: a deterministic plan of "what goes wrong where" that the
//! scheduler (and the layers above it) consult at named fault sites.
//!
//! # Layering
//!
//! The types here compile unconditionally — the scenario executor and the chaos bench
//! consume them without any feature flag, exactly like [`crate::sched_trace`]'s event
//! types. Only the **hooks** inside the scheduler's hot paths are compiled behind the
//! `fault-inject` cargo feature: with the feature off the consult macros expand to a
//! constant `false`/`None` (type-checked but dead), the [`Scheduler`] has no fault-state
//! field, and the hot path carries no extra branch or atomic.
//!
//! # Determinism
//!
//! Whether a visit to a site fires is a pure function of `(plan seed, site, visit
//! number)` — a splitmix64-style hash, no shared RNG stream. Two sites never contend on
//! RNG state, so the decision a thread sees does not depend on how its visits interleave
//! with other sites' visits; a run under the same plan and the same per-site visit order
//! fires the same faults. Each firing is appended to a log ([`FaultRecord`]) so harnesses
//! can assert "every injected stall was detected" against ground truth, and the scheduler
//! additionally records a [`crate::sched_trace::TraceEvent::FaultInjected`] so faulty
//! runs stay replayable.
//!
//! [`Scheduler`]: crate::scheduler::Scheduler

use crate::task::TaskId;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A named fault site: a point in the stack where an armed [`FaultPlan`] may fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A task body panics mid-unit (consumed by the runtimes / scenario driver).
    TaskBodyPanic,
    /// A worker stalls (sleeps, still holding its core) at a scheduling point.
    WorkerStall,
    /// A wake-up (submit) is silently dropped before it reaches the scheduler.
    DropWakeup,
    /// A wake-up is delivered twice (the second must be absorbed as redundant).
    DuplicateWakeup,
    /// An intake drain is skipped, delaying queued submits to a later scheduling point.
    DelayIntakeDrain,
    /// A process dies mid-run with tasks in flight (consumed by the scenario driver via
    /// [`crate::scheduler::Scheduler::kill_process`]).
    ProcessDeath,
    /// Shutdown widens its race window against concurrent submits.
    ShutdownRace,
}

impl FaultSite {
    /// Every site, in dense-index order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::TaskBodyPanic,
        FaultSite::WorkerStall,
        FaultSite::DropWakeup,
        FaultSite::DuplicateWakeup,
        FaultSite::DelayIntakeDrain,
        FaultSite::ProcessDeath,
        FaultSite::ShutdownRace,
    ];

    /// Dense index of this site (stable: used in hashing and the per-site tables).
    pub fn index(self) -> usize {
        match self {
            FaultSite::TaskBodyPanic => 0,
            FaultSite::WorkerStall => 1,
            FaultSite::DropWakeup => 2,
            FaultSite::DuplicateWakeup => 3,
            FaultSite::DelayIntakeDrain => 4,
            FaultSite::ProcessDeath => 5,
            FaultSite::ShutdownRace => 6,
        }
    }

    /// Short stable label (JSON output, counterexamples).
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::TaskBodyPanic => "task_body_panic",
            FaultSite::WorkerStall => "worker_stall",
            FaultSite::DropWakeup => "drop_wakeup",
            FaultSite::DuplicateWakeup => "duplicate_wakeup",
            FaultSite::DelayIntakeDrain => "delay_intake_drain",
            FaultSite::ProcessDeath => "process_death",
            FaultSite::ShutdownRace => "shutdown_race",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How one site is armed: fire roughly one visit in `one_in`, at most `max_fires` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The site this spec arms.
    pub site: FaultSite,
    /// Fire when `hash(seed, site, visit) % one_in == 0`; `1` fires on every visit.
    pub one_in: u32,
    /// Upper bound on total fires of this site (keeps chaos runs bounded).
    pub max_fires: u32,
    /// Stall duration, for the sites that delay ([`FaultSite::WorkerStall`],
    /// [`FaultSite::ShutdownRace`]); ignored elsewhere.
    pub stall: Duration,
}

impl FaultSpec {
    /// Arm `site` to fire on every visit, unboundedly, with no stall.
    pub fn new(site: FaultSite) -> Self {
        FaultSpec {
            site,
            one_in: 1,
            max_fires: u32::MAX,
            stall: Duration::ZERO,
        }
    }

    /// Fire roughly one visit in `n` (clamped to at least 1).
    pub fn one_in(mut self, n: u32) -> Self {
        self.one_in = n.max(1);
        self
    }

    /// Cap the total number of fires.
    pub fn max_fires(mut self, n: u32) -> Self {
        self.max_fires = n;
        self
    }

    /// Stall duration for delaying sites.
    pub fn stall(mut self, d: Duration) -> Self {
        self.stall = d;
        self
    }
}

/// A seeded set of armed fault sites. Pure data: build one, hand it to
/// `Scheduler::install_faults` (feature `fault-inject`) or drive it
/// directly through a [`FaultState`] from a harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the deterministic fire decisions.
    pub seed: u64,
    /// The armed sites (a later spec for the same site replaces the earlier one).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (nothing armed) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: Vec::new(),
        }
    }

    /// Arm one site.
    pub fn arm(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Whether any site is armed.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// One fired fault, appended to the [`FaultState`] log at the moment of the decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// The site that fired.
    pub site: FaultSite,
    /// The site's visit number at which it fired (0-based).
    pub visit: u64,
    /// The task in whose context the site fired, when one was known.
    pub task: Option<TaskId>,
}

/// Mix `(seed, site, visit)` into a decision hash (splitmix64-style finalizer).
fn mix(seed: u64, site: u64, visit: u64) -> u64 {
    let mut z =
        seed ^ site.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ visit.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runtime state of an installed [`FaultPlan`]: per-site visit/fire counters and the
/// fired-fault log. Shared (`Arc`) between the injectee and the asserting harness.
#[derive(Debug)]
pub struct FaultState {
    seed: u64,
    specs: [Option<FaultSpec>; 7],
    visits: [AtomicU64; 7],
    fires: [AtomicU64; 7],
    log: Mutex<Vec<FaultRecord>>,
}

impl FaultState {
    /// Instantiate a plan. Later specs for the same site replace earlier ones.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut specs: [Option<FaultSpec>; 7] = [None; 7];
        for spec in &plan.specs {
            specs[spec.site.index()] = Some(*spec);
        }
        FaultState {
            seed: plan.seed,
            specs,
            visits: std::array::from_fn(|_| AtomicU64::new(0)),
            fires: std::array::from_fn(|_| AtomicU64::new(0)),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Visit `site`: returns `true` (and logs a [`FaultRecord`]) when the armed spec says
    /// this visit fires. Unarmed sites return `false` without touching any counter.
    pub fn consult(&self, site: FaultSite, task: Option<TaskId>) -> bool {
        let i = site.index();
        let Some(spec) = self.specs[i] else {
            return false;
        };
        let visit = self.visits[i].fetch_add(1, Ordering::Relaxed);
        if mix(self.seed, i as u64, visit) % spec.one_in as u64 != 0 {
            return false;
        }
        // Claim a fire slot; losing the claim (cap reached) means the fault stays quiet.
        let claimed = self.fires[i]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                (f < spec.max_fires as u64).then_some(f + 1)
            })
            .is_ok();
        if claimed {
            self.log.lock().push(FaultRecord { site, visit, task });
        }
        claimed
    }

    /// Like [`FaultState::consult`], but returns the armed stall duration when firing —
    /// the shape the delaying sites need.
    pub fn consult_stall(&self, site: FaultSite, task: Option<TaskId>) -> Option<Duration> {
        let spec = self.specs[site.index()]?;
        self.consult(site, task).then_some(spec.stall)
    }

    /// Times `site` has fired so far.
    pub fn fires(&self, site: FaultSite) -> u64 {
        self.fires[site.index()].load(Ordering::Relaxed)
    }

    /// Times `site` has been visited so far.
    pub fn visits(&self, site: FaultSite) -> u64 {
        self.visits[site.index()].load(Ordering::Relaxed)
    }

    /// Total fires across every site.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().map(|f| f.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of the fired-fault log, in firing order.
    pub fn records(&self) -> Vec<FaultRecord> {
        self.log.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_never_fire_and_never_count() {
        let st = FaultState::new(&FaultPlan::new(1));
        for site in FaultSite::ALL {
            assert!(!st.consult(site, None));
            assert_eq!(st.visits(site), 0, "unarmed {site} must not count visits");
        }
        assert_eq!(st.total_fires(), 0);
        assert!(st.records().is_empty());
    }

    #[test]
    fn one_in_one_fires_every_visit_up_to_cap() {
        let plan =
            FaultPlan::new(7).arm(FaultSpec::new(FaultSite::DropWakeup).one_in(1).max_fires(3));
        let st = FaultState::new(&plan);
        let fired: Vec<bool> = (0..5)
            .map(|i| st.consult(FaultSite::DropWakeup, Some(i)))
            .collect();
        assert_eq!(fired, vec![true, true, true, false, false]);
        assert_eq!(st.fires(FaultSite::DropWakeup), 3);
        assert_eq!(st.visits(FaultSite::DropWakeup), 5);
        let recs = st.records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].task, Some(0));
        assert_eq!(recs[2].visit, 2);
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_visit() {
        let plan = FaultPlan::new(42).arm(FaultSpec::new(FaultSite::WorkerStall).one_in(4));
        let a = FaultState::new(&plan);
        let b = FaultState::new(&plan);
        let da: Vec<bool> = (0..64)
            .map(|_| a.consult(FaultSite::WorkerStall, None))
            .collect();
        let db: Vec<bool> = (0..64)
            .map(|_| b.consult(FaultSite::WorkerStall, None))
            .collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|&f| f), "one-in-4 over 64 visits must fire");
        assert!(!da.iter().all(|&f| f), "one-in-4 must not fire every visit");
        // A different seed yields a different firing pattern (with overwhelming odds).
        let plan2 = FaultPlan::new(43).arm(FaultSpec::new(FaultSite::WorkerStall).one_in(4));
        let c = FaultState::new(&plan2);
        let dc: Vec<bool> = (0..64)
            .map(|_| c.consult(FaultSite::WorkerStall, None))
            .collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn sites_decide_independently() {
        // Interleaving visits to two sites must not perturb either site's decisions.
        let plan = FaultPlan::new(9)
            .arm(FaultSpec::new(FaultSite::DropWakeup).one_in(3))
            .arm(FaultSpec::new(FaultSite::DelayIntakeDrain).one_in(3));
        let solo = FaultState::new(&plan);
        let solo_drops: Vec<bool> = (0..32)
            .map(|_| solo.consult(FaultSite::DropWakeup, None))
            .collect();
        let mixed = FaultState::new(&plan);
        let mut mixed_drops = Vec::new();
        for _ in 0..32 {
            mixed.consult(FaultSite::DelayIntakeDrain, None);
            mixed_drops.push(mixed.consult(FaultSite::DropWakeup, None));
        }
        assert_eq!(solo_drops, mixed_drops);
    }

    #[test]
    fn consult_stall_returns_armed_duration() {
        let plan = FaultPlan::new(3).arm(
            FaultSpec::new(FaultSite::WorkerStall)
                .one_in(1)
                .max_fires(1)
                .stall(Duration::from_millis(50)),
        );
        let st = FaultState::new(&plan);
        assert_eq!(
            st.consult_stall(FaultSite::WorkerStall, None),
            Some(Duration::from_millis(50))
        );
        assert_eq!(st.consult_stall(FaultSite::WorkerStall, None), None);
        assert_eq!(st.consult_stall(FaultSite::ShutdownRace, None), None);
    }

    #[test]
    fn later_arm_replaces_earlier_spec() {
        let plan = FaultPlan::new(0)
            .arm(FaultSpec::new(FaultSite::DropWakeup).one_in(1))
            .arm(FaultSpec::new(FaultSite::DropWakeup).one_in(1).max_fires(0));
        let st = FaultState::new(&plan);
        assert!(!st.consult(FaultSite::DropWakeup, None), "max_fires 0 wins");
    }
}
