//! Schedule trace recording: every scheduling decision of the real [`Scheduler`], logged
//! with a logical timestamp so the decision sequence can be deterministically re-executed
//! ("replayed") by the discrete-event simulator and fuzzed at its choice points.
//!
//! [`Scheduler`]: crate::scheduler::Scheduler
//!
//! # Layering
//!
//! The event *types* here compile unconditionally — `usf-simsched`'s replay harness and the
//! equivalence tests consume them without any feature flag. Only the **hooks** inside the
//! scheduler's hot paths are compiled behind the `sched-trace` cargo feature: with the
//! feature off, the emit macro expands to nothing type-checked-but-dead, the `Scheduler`
//! has no recorder field, and the hot path carries no extra atomics or branches.
//!
//! # Which events are authoritative
//!
//! Events recorded **under the scheduler lock** — [`TraceEvent::RegisterProcess`],
//! [`TraceEvent::DeregisterProcess`], [`TraceEvent::SetDomain`],
//! [`TraceEvent::IntakeDrain`], [`TraceEvent::Enqueue`], [`TraceEvent::Pop`],
//! [`TraceEvent::Grant`], [`TraceEvent::Yield`], [`TraceEvent::Migrate`] and
//! [`TraceEvent::Shutdown`] — are totally ordered by the lock, so their recorded order *is*
//! the order the scheduler acted in; they are the authoritative replay script.
//! [`TraceEvent::Submit`] is recorded on the lock-free intake path, so under concurrent
//! submitters its position is only causally ordered (it always precedes the `IntakeDrain`
//! that absorbs it); single-threaded drivers — the fuzzer, the record/replay tests — get a
//! fully deterministic total order.
//!
//! # Logical time
//!
//! Every timestamp is the **exact** `Instant` the scheduler passed to the policy call the
//! event describes (not a fresh `Instant::now()` taken by the recorder — a later timestamp
//! could cross a quantum or aging-valve deadline the decision itself did not cross),
//! stored as nanoseconds since the recorder's base instant. `Instant`/`Duration`
//! arithmetic is nanosecond-exact, as is the simulator's `SimTime`, so replaying an
//! [`TraceEvent::Enqueue`]/[`TraceEvent::Pop`] sequence with `SimTime::from_nanos(at)` in
//! place of the original instants reproduces every quantum rotation and valve decision
//! bit-for-bit. Events that involve no policy time (registration, shutdown) are stamped
//! with the recording moment for diagnostics; replay only uses their order.

use crate::config::{NosvConfig, PolicyKind};
use crate::process::ProcessId;
use crate::readyq::{PickTier, TopologyView};
use crate::task::TaskId;
use crate::topology::CoreId;
use parking_lot::Mutex;
use std::time::Instant;

/// Immutable description of the scheduler a trace was recorded from — everything the
/// replay harness needs to rebuild an equivalent policy instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// NUMA node of each core, indexed by dense core id (the full topology snapshot).
    pub core_nodes: Vec<usize>,
    /// The per-process quantum (doubling as the aging-valve window), in nanoseconds.
    pub quantum_nanos: u64,
    /// Diagnostic name of the installed policy (`"sched_coop"` for replayable traces).
    pub policy: String,
}

impl TraceMeta {
    /// Snapshot the scheduling-relevant parameters of a configuration.
    pub fn from_config(config: &NosvConfig) -> Self {
        let topo = &config.topology;
        TraceMeta {
            core_nodes: (0..topo.num_cores()).map(|c| topo.node_of(c)).collect(),
            quantum_nanos: config.process_quantum.as_nanos() as u64,
            policy: match &config.policy {
                PolicyKind::Coop => "sched_coop".to_string(),
                PolicyKind::Fifo => "fifo".to_string(),
                PolicyKind::Custom(_) => "custom".to_string(),
            },
        }
    }

    /// Number of cores in the recorded topology.
    pub fn cores(&self) -> usize {
        self.core_nodes.len()
    }
}

impl TopologyView for TraceMeta {
    fn view_cores(&self) -> usize {
        self.core_nodes.len()
    }

    fn view_node_of(&self, core: CoreId) -> usize {
        self.core_nodes[core]
    }
}

/// One recorded scheduling decision.
///
/// The variants that mutate policy state (`RegisterProcess`, `DeregisterProcess`,
/// `SetDomain`, `Enqueue`, `Pop`) form the replay script; the rest (`Submit`,
/// `IntakeDrain`, `Grant`, `Yield`, `Migrate`, `FaultInjected`, `Shutdown`) are
/// scheduler-level context the replay harness checks for consistency (every non-immediate
/// grant must follow its pop) and the fuzzer uses as choice points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process domain was registered with the scheduler (and the policy).
    RegisterProcess {
        /// The new process id.
        process: ProcessId,
    },
    /// A process domain was deregistered; its queued entries were dropped.
    DeregisterProcess {
        /// The removed process id.
        process: ProcessId,
    },
    /// A placement domain was applied to a process (already filtered to in-range cores;
    /// `None` clears the restriction).
    SetDomain {
        /// The affected process.
        process: ProcessId,
        /// The cores the process is now restricted to, or `None` for unrestricted.
        cores: Option<Vec<CoreId>>,
    },
    /// A task entered the lock-free submit intake.
    Submit {
        /// Owning process.
        process: ProcessId,
        /// The submitted task.
        task: TaskId,
    },
    /// The intake stack was drained at a scheduling point.
    IntakeDrain {
        /// Number of entries absorbed (in submission order).
        n: usize,
    },
    /// A ready task was handed to the policy's queues.
    Enqueue {
        /// Owning process.
        process: ProcessId,
        /// The queued task.
        task: TaskId,
        /// The preference it was queued with (its last core, if any).
        preferred: Option<CoreId>,
    },
    /// The policy served a task to an idle core. Recorded for *every* pop, including pops
    /// of stale entries (tasks detached while queued) — the replayed queues contain the
    /// same entries, so the replay must reproduce stale pops too.
    Pop {
        /// The core that was offered the task.
        core: CoreId,
        /// Which tier of the tiered pop served it (`None` for tier-less policies).
        tier: Option<PickTier>,
        /// The served task.
        task: TaskId,
    },
    /// The policy was offered an idle core and served nothing. Recorded because an empty
    /// pick is *not* a no-op: probing the queues re-arms the anti-starvation valve
    /// (`next_valve_at` moves even when no entry is aged), so a replay that skipped empty
    /// picks would fire the valve at different steps than the recorded run.
    PopEmpty {
        /// The core that went unserved.
        core: CoreId,
    },
    /// A task was granted a core (it transitions to running there).
    Grant {
        /// The granted task.
        task: TaskId,
        /// The core it now occupies.
        core: CoreId,
        /// Whether this was an immediate idle-core grant that bypassed the policy queues
        /// (no preceding [`TraceEvent::Pop`]).
        immediate: bool,
    },
    /// A running task yielded its core to another ready task.
    Yield {
        /// The yielding task.
        task: TaskId,
        /// The core it gave up (and re-queued for).
        core: CoreId,
    },
    /// A grant placed a task away from its preferred core.
    Migrate {
        /// The migrated task.
        task: TaskId,
        /// The core it preferred (where it last ran).
        from: CoreId,
        /// The core it was granted instead.
        to: CoreId,
    },
    /// An armed fault site fired inside the scheduler (feature `fault-inject`). Context
    /// only: the fault's *effects* (the delayed drain, the redundant submit, the widened
    /// shutdown window) appear as ordinary events in the trace, so replay ignores this
    /// marker and still reproduces the faulty run.
    FaultInjected {
        /// The site that fired.
        site: crate::faults::FaultSite,
        /// The task in whose context it fired, when one was known.
        task: Option<TaskId>,
    },
    /// The scheduler shut down; all tasks and waiters were released.
    Shutdown,
}

/// One trace entry: a logical step number (the entry's index — the total order), the
/// event's timestamp in nanoseconds since the recorder's base instant, and the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Logical step: dense index in recording order.
    pub step: u64,
    /// Nanoseconds since the recorder's base instant; for policy-relevant events this is
    /// the exact time the policy call used (see the module documentation).
    pub at_nanos: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

/// An append-only recorder of [`TraceEntry`]s, shared between the scheduler (which appends)
/// and the test/replay harness (which snapshots).
///
/// The recorder's own mutex is *only* contended when the `sched-trace` feature is on and a
/// recorder is installed; the default build never touches it.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    base: Instant,
    events: Mutex<Vec<TraceEntry>>,
}

impl TraceRecorder {
    /// A fresh recorder for a scheduler described by `meta`. The base instant is captured
    /// now; every recorded timestamp is relative to it.
    pub fn new(meta: TraceMeta) -> Self {
        TraceRecorder {
            meta,
            base: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The recorded scheduler description.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Append an event stamped with the exact instant the corresponding policy call used.
    pub fn record_at(&self, at: Instant, event: TraceEvent) {
        let at_nanos = at.saturating_duration_since(self.base).as_nanos() as u64;
        let mut ev = self.events.lock();
        let step = ev.len() as u64;
        ev.push(TraceEntry {
            step,
            at_nanos,
            event,
        });
    }

    /// Append an event that involves no policy time (stamped with the recording moment).
    pub fn record(&self, event: TraceEvent) {
        self.record_at(Instant::now(), event);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clone the recorded entries (the recorder keeps recording).
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        self.events.lock().clone()
    }

    /// Take the recorded entries, leaving the recorder empty. Subsequent entries restart
    /// at step 0.
    pub fn take(&self) -> Vec<TraceEntry> {
        std::mem::take(&mut *self.events.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn meta_snapshots_config() {
        let cfg = NosvConfig::with_topology(crate::topology::Topology::new(4, 2))
            .quantum(Duration::from_micros(50));
        let meta = TraceMeta::from_config(&cfg);
        assert_eq!(meta.core_nodes, vec![0, 0, 1, 1]);
        assert_eq!(meta.quantum_nanos, 50_000);
        assert_eq!(meta.policy, "sched_coop");
        assert_eq!(meta.cores(), 4);
        assert_eq!(meta.view_node_of(3), 1);
    }

    #[test]
    fn recorder_orders_and_stamps_entries() {
        let rec = TraceRecorder::new(TraceMeta::from_config(&NosvConfig::with_cores(2)));
        let base = Instant::now();
        rec.record_at(base + Duration::from_nanos(10), TraceEvent::Shutdown);
        rec.record(TraceEvent::IntakeDrain { n: 3 });
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].step, 0);
        assert_eq!(events[1].step, 1);
        assert_eq!(events[0].event, TraceEvent::Shutdown);
        assert!(!rec.is_empty());
        assert_eq!(rec.take().len(), 2);
        assert!(rec.is_empty());
        rec.record(TraceEvent::Shutdown);
        assert_eq!(rec.snapshot()[0].step, 0, "steps restart after take()");
    }

    #[test]
    fn timestamps_before_base_saturate_to_zero() {
        let rec = TraceRecorder::new(TraceMeta::from_config(&NosvConfig::with_cores(1)));
        let past = Instant::now() - Duration::from_secs(1);
        rec.record_at(past, TraceEvent::Shutdown);
        assert_eq!(rec.snapshot()[0].at_nanos, 0);
    }
}
