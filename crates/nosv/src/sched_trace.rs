//! Schedule trace recording: every scheduling decision of the real [`Scheduler`], logged
//! with a logical timestamp so the decision sequence can be deterministically re-executed
//! ("replayed") by the discrete-event simulator and fuzzed at its choice points.
//!
//! [`Scheduler`]: crate::scheduler::Scheduler
//!
//! # Layering
//!
//! The event *types* here compile unconditionally — `usf-simsched`'s replay harness and the
//! equivalence tests consume them without any feature flag. Only the **hooks** inside the
//! scheduler's hot paths are compiled behind the `sched-trace` cargo feature: with the
//! feature off, the emit macro expands to nothing type-checked-but-dead, the `Scheduler`
//! has no recorder field, and the hot path carries no extra atomics or branches.
//!
//! # Which events are authoritative
//!
//! Events recorded **under a scheduler-section lock** — [`TraceEvent::RegisterProcess`],
//! [`TraceEvent::DeregisterProcess`], [`TraceEvent::SetDomain`],
//! [`TraceEvent::IntakeDrain`], [`TraceEvent::Enqueue`], [`TraceEvent::Pop`],
//! [`TraceEvent::Grant`], [`TraceEvent::Yield`], [`TraceEvent::Migrate`] and
//! [`TraceEvent::Shutdown`] — carry a global atomic sequence stamp taken at the recording
//! point; the recorder orders entries by it. Under a flat (single-shard) scheduler the
//! one lock totally orders those stamps, so the recorded order *is* the order the
//! scheduler acted in — the authoritative replay script, exactly as before the split.
//! Under the split-lock scheduler (`sched_coop_split`) events of *different shards* are
//! stamped under different locks: any single-threaded driver — the fuzzer, the
//! record/replay tests — still gets an exact total order (each event completes before the
//! next begins), while genuinely concurrent multi-shard traces are best-effort ordered
//! (cross-shard probe side effects cannot be linearized after the fact) and replay treats
//! them as diagnostic only. [`TraceEvent::Submit`] is recorded on the lock-free intake
//! path, so under concurrent submitters its position is only causally ordered (it always
//! precedes the `IntakeDrain` that absorbs it).
//!
//! # Logical time
//!
//! Every timestamp is the **exact** `Instant` the scheduler passed to the policy call the
//! event describes (not a fresh `Instant::now()` taken by the recorder — a later timestamp
//! could cross a quantum or aging-valve deadline the decision itself did not cross),
//! stored as nanoseconds since the recorder's base instant. `Instant`/`Duration`
//! arithmetic is nanosecond-exact, as is the simulator's `SimTime`, so replaying an
//! [`TraceEvent::Enqueue`]/[`TraceEvent::Pop`] sequence with `SimTime::from_nanos(at)` in
//! place of the original instants reproduces every quantum rotation and valve decision
//! bit-for-bit. Events that involve no policy time (registration, shutdown) are stamped
//! with the recording moment for diagnostics; replay only uses their order.

use crate::config::{NosvConfig, PolicyKind};
use crate::process::ProcessId;
use crate::readyq::{PickTier, TopologyView};
use crate::task::TaskId;
use crate::topology::CoreId;
use parking_lot::Mutex;
use std::time::Instant;

/// Immutable description of the scheduler a trace was recorded from — everything the
/// replay harness needs to rebuild an equivalent policy instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// NUMA node of each core, indexed by dense core id (the full topology snapshot).
    pub core_nodes: Vec<usize>,
    /// The per-process quantum (doubling as the aging-valve window), in nanoseconds.
    pub quantum_nanos: u64,
    /// Diagnostic name of the installed policy (`"sched_coop"` for replayable traces).
    pub policy: String,
}

impl TraceMeta {
    /// Snapshot the scheduling-relevant parameters of a configuration.
    pub fn from_config(config: &NosvConfig) -> Self {
        let topo = &config.topology;
        TraceMeta {
            core_nodes: (0..topo.num_cores()).map(|c| topo.node_of(c)).collect(),
            quantum_nanos: config.process_quantum.as_nanos() as u64,
            policy: match &config.policy {
                PolicyKind::Coop => "sched_coop".to_string(),
                PolicyKind::CoopSharded => "sched_coop_sharded".to_string(),
                PolicyKind::CoopSplit => "sched_coop_split".to_string(),
                PolicyKind::Fifo => "fifo".to_string(),
                PolicyKind::Custom(_) => "custom".to_string(),
            },
        }
    }

    /// Number of cores in the recorded topology.
    pub fn cores(&self) -> usize {
        self.core_nodes.len()
    }
}

impl TopologyView for TraceMeta {
    fn view_cores(&self) -> usize {
        self.core_nodes.len()
    }

    fn view_node_of(&self, core: CoreId) -> usize {
        self.core_nodes[core]
    }
}

/// One recorded scheduling decision.
///
/// The variants that mutate policy state (`RegisterProcess`, `DeregisterProcess`,
/// `SetDomain`, `Enqueue`, `Pop`) form the replay script; the rest (`Submit`,
/// `IntakeDrain`, `Grant`, `Yield`, `Migrate`, `FaultInjected`, `Shutdown`) are
/// scheduler-level context the replay harness checks for consistency (every non-immediate
/// grant must follow its pop) and the fuzzer uses as choice points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A process domain was registered with the scheduler (and the policy).
    RegisterProcess {
        /// The new process id.
        process: ProcessId,
    },
    /// A process domain was deregistered; its queued entries were dropped.
    DeregisterProcess {
        /// The removed process id.
        process: ProcessId,
    },
    /// A placement domain was applied to a process (already filtered to in-range cores;
    /// `None` clears the restriction).
    SetDomain {
        /// The affected process.
        process: ProcessId,
        /// The cores the process is now restricted to, or `None` for unrestricted.
        cores: Option<Vec<CoreId>>,
    },
    /// A task entered the lock-free submit intake.
    Submit {
        /// Owning process.
        process: ProcessId,
        /// The submitted task.
        task: TaskId,
    },
    /// The intake stack was drained at a scheduling point.
    IntakeDrain {
        /// Number of entries absorbed (in submission order).
        n: usize,
    },
    /// A ready task was handed to the policy's queues.
    Enqueue {
        /// Owning process.
        process: ProcessId,
        /// The queued task.
        task: TaskId,
        /// The preference it was queued with (its last core, if any).
        preferred: Option<CoreId>,
    },
    /// The policy served a task to an idle core. Recorded for *every* pop, including pops
    /// of stale entries (tasks detached while queued) — the replayed queues contain the
    /// same entries, so the replay must reproduce stale pops too.
    Pop {
        /// The core that was offered the task.
        core: CoreId,
        /// Which tier of the tiered pop served it (`None` for tier-less policies).
        tier: Option<PickTier>,
        /// The served task.
        task: TaskId,
    },
    /// The policy was offered an idle core and served nothing. Recorded because an empty
    /// pick is *not* a no-op: probing the queues re-arms the anti-starvation valve
    /// (`next_valve_at` moves even when no entry is aged), so a replay that skipped empty
    /// picks would fire the valve at different steps than the recorded run.
    PopEmpty {
        /// The core that went unserved.
        core: CoreId,
    },
    /// A task was granted a core (it transitions to running there).
    Grant {
        /// The granted task.
        task: TaskId,
        /// The core it now occupies.
        core: CoreId,
        /// Whether this was an immediate idle-core grant that bypassed the policy queues
        /// (no preceding [`TraceEvent::Pop`]).
        immediate: bool,
    },
    /// A running task yielded its core to another ready task.
    Yield {
        /// The yielding task.
        task: TaskId,
        /// The core it gave up (and re-queued for).
        core: CoreId,
    },
    /// A grant placed a task away from its preferred core.
    Migrate {
        /// The migrated task.
        task: TaskId,
        /// The core it preferred (where it last ran).
        from: CoreId,
        /// The core it was granted instead.
        to: CoreId,
    },
    /// An armed fault site fired inside the scheduler (feature `fault-inject`). Context
    /// only: the fault's *effects* (the delayed drain, the redundant submit, the widened
    /// shutdown window) appear as ordinary events in the trace, so replay ignores this
    /// marker and still reproduces the faulty run.
    FaultInjected {
        /// The site that fired.
        site: crate::faults::FaultSite,
        /// The task in whose context it fired, when one was known.
        task: Option<TaskId>,
    },
    /// The scheduler shut down; all tasks and waiters were released.
    Shutdown,
}

/// One trace entry: a logical step number (the entry's index — the total order), the
/// event's timestamp in nanoseconds since the recorder's base instant, and the event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Logical step: dense index in recording order.
    pub step: u64,
    /// Nanoseconds since the recorder's base instant; for policy-relevant events this is
    /// the exact time the policy call used (see the module documentation).
    pub at_nanos: u64,
    /// The recorded event.
    pub event: TraceEvent,
}

/// An append-only recorder of [`TraceEntry`]s, shared between the scheduler (which appends)
/// and the test/replay harness (which snapshots).
///
/// The recorder's own mutex is *only* contended when the `sched-trace` feature is on and a
/// recorder is installed; the default build never touches it.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    base: Instant,
    /// `(seq, at_nanos, event)` in arrival order. `seq` is the recording-point order
    /// stamp: the scheduler passes its global atomic counter through
    /// [`TraceRecorder::record_at_seq`], which linearizes events recorded under
    /// different shard locks; entries are stable-sorted by it (and assigned dense
    /// `step`s) at snapshot/take time.
    events: Mutex<Vec<(u64, u64, TraceEvent)>>,
    /// Fallback stamp source for [`TraceRecorder::record_at`] callers that have no
    /// external counter (tests, ad-hoc recording).
    next_seq: std::sync::atomic::AtomicU64,
}

impl TraceRecorder {
    /// A fresh recorder for a scheduler described by `meta`. The base instant is captured
    /// now; every recorded timestamp is relative to it.
    pub fn new(meta: TraceMeta) -> Self {
        TraceRecorder {
            meta,
            base: Instant::now(),
            events: Mutex::new(Vec::new()),
            next_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The recorded scheduler description.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Append an event stamped with the exact instant the corresponding policy call used
    /// and an externally assigned order stamp (the scheduler's global sequence counter).
    pub fn record_at_seq(&self, at: Instant, seq: u64, event: TraceEvent) {
        let at_nanos = at.saturating_duration_since(self.base).as_nanos() as u64;
        // Keep the internal fallback counter ahead of external stamps so mixed callers
        // never interleave out of order.
        self.next_seq
            .fetch_max(seq + 1, std::sync::atomic::Ordering::Relaxed);
        self.events.lock().push((seq, at_nanos, event));
    }

    /// Append an event stamped with the exact instant the corresponding policy call used.
    pub fn record_at(&self, at: Instant, event: TraceEvent) {
        let seq = self
            .next_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let at_nanos = at.saturating_duration_since(self.base).as_nanos() as u64;
        self.events.lock().push((seq, at_nanos, event));
    }

    /// Append an event that involves no policy time (stamped with the recording moment).
    pub fn record(&self, event: TraceEvent) {
        self.record_at(Instant::now(), event);
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Sort raw entries by their order stamp and assign dense steps.
    fn finalize(mut raw: Vec<(u64, u64, TraceEvent)>) -> Vec<TraceEntry> {
        raw.sort_by_key(|&(seq, _, _)| seq);
        raw.into_iter()
            .enumerate()
            .map(|(i, (_, at_nanos, event))| TraceEntry {
                step: i as u64,
                at_nanos,
                event,
            })
            .collect()
    }

    /// Clone the recorded entries, ordered by their sequence stamp (the recorder keeps
    /// recording).
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        Self::finalize(self.events.lock().clone())
    }

    /// Take the recorded entries (ordered by their sequence stamp), leaving the recorder
    /// empty. Subsequent entries restart at step 0.
    pub fn take(&self) -> Vec<TraceEntry> {
        Self::finalize(std::mem::take(&mut *self.events.lock()))
    }
}

// ---------------------------------------------------------------------------------------
// JSONL interchange
// ---------------------------------------------------------------------------------------
//
// A recorded schedule is exchanged between processes (the chaos bench records, the
// `usf_trace` bin converts to Perfetto) as JSON Lines: one meta header line, then one
// line per entry. Hand-rolled like the rest of the repo's JSON (no serde) and compiled
// unconditionally — the *reader* side must work in builds without `sched-trace`.

/// Serialize a recorded schedule as JSONL: a `{"type":"meta",...}` header line followed
/// by one flat object per [`TraceEntry`]. The inverse of [`from_jsonl`].
pub fn to_jsonl(meta: &TraceMeta, entries: &[TraceEntry]) -> String {
    let mut out = String::new();
    let nodes: Vec<String> = meta.core_nodes.iter().map(|n| n.to_string()).collect();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"core_nodes\":[{}],\"quantum_nanos\":{},\"policy\":\"{}\"}}\n",
        nodes.join(","),
        meta.quantum_nanos,
        meta.policy
    ));
    for e in entries {
        out.push_str(&entry_to_json(e));
        out.push('\n');
    }
    out
}

/// Render one entry as a flat JSON object (no trailing newline).
fn entry_to_json(e: &TraceEntry) -> String {
    let head = format!("{{\"step\":{},\"at_nanos\":{},", e.step, e.at_nanos);
    let body = match &e.event {
        TraceEvent::RegisterProcess { process } => {
            format!("\"ev\":\"register\",\"process\":{process}")
        }
        TraceEvent::DeregisterProcess { process } => {
            format!("\"ev\":\"deregister\",\"process\":{process}")
        }
        TraceEvent::SetDomain { process, cores } => match cores {
            Some(cs) => {
                let cs: Vec<String> = cs.iter().map(|c| c.to_string()).collect();
                format!(
                    "\"ev\":\"set_domain\",\"process\":{process},\"cores\":[{}]",
                    cs.join(",")
                )
            }
            None => format!("\"ev\":\"set_domain\",\"process\":{process},\"cores\":null"),
        },
        TraceEvent::Submit { process, task } => {
            format!("\"ev\":\"submit\",\"process\":{process},\"task\":{task}")
        }
        TraceEvent::IntakeDrain { n } => format!("\"ev\":\"intake_drain\",\"n\":{n}"),
        TraceEvent::Enqueue {
            process,
            task,
            preferred,
        } => match preferred {
            Some(p) => format!(
                "\"ev\":\"enqueue\",\"process\":{process},\"task\":{task},\"preferred\":{p}"
            ),
            None => format!(
                "\"ev\":\"enqueue\",\"process\":{process},\"task\":{task},\"preferred\":null"
            ),
        },
        TraceEvent::Pop { core, tier, task } => {
            let tier = match tier {
                Some(PickTier::Aged) => "\"aged\"",
                Some(PickTier::Affinity) => "\"affinity\"",
                Some(PickTier::Node) => "\"node\"",
                Some(PickTier::Remote) => "\"remote\"",
                None => "null",
            };
            format!("\"ev\":\"pop\",\"core\":{core},\"tier\":{tier},\"task\":{task}")
        }
        TraceEvent::PopEmpty { core } => format!("\"ev\":\"pop_empty\",\"core\":{core}"),
        TraceEvent::Grant {
            task,
            core,
            immediate,
        } => format!("\"ev\":\"grant\",\"task\":{task},\"core\":{core},\"immediate\":{immediate}"),
        TraceEvent::Yield { task, core } => {
            format!("\"ev\":\"yield\",\"task\":{task},\"core\":{core}")
        }
        TraceEvent::Migrate { task, from, to } => {
            format!("\"ev\":\"migrate\",\"task\":{task},\"from\":{from},\"to\":{to}")
        }
        TraceEvent::FaultInjected { site, task } => {
            let site = format!("{site:?}");
            match task {
                Some(t) => format!("\"ev\":\"fault\",\"site\":\"{site}\",\"task\":{t}"),
                None => format!("\"ev\":\"fault\",\"site\":\"{site}\",\"task\":null"),
            }
        }
        TraceEvent::Shutdown => "\"ev\":\"shutdown\"".to_string(),
    };
    format!("{head}{body}}}")
}

/// Parse a schedule serialized by [`to_jsonl`]. Returns a descriptive error naming the
/// offending line on malformed input. Unknown `ev` values are an error (a trace from a
/// newer writer should fail loudly, not silently drop events).
pub fn from_jsonl(s: &str) -> Result<(TraceMeta, Vec<TraceEntry>), String> {
    let mut meta: Option<TraceMeta> = None;
    let mut entries = Vec::new();
    for (lineno, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = jsonl::parse_object(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if obj.get_str("type") == Some("meta") {
            meta = Some(TraceMeta {
                core_nodes: obj
                    .get_array("core_nodes")
                    .ok_or_else(|| format!("line {}: meta missing core_nodes", lineno + 1))?
                    .iter()
                    .map(|&n| n as usize)
                    .collect(),
                quantum_nanos: obj
                    .get_u64("quantum_nanos")
                    .ok_or_else(|| format!("line {}: meta missing quantum_nanos", lineno + 1))?,
                policy: obj
                    .get_str("policy")
                    .ok_or_else(|| format!("line {}: meta missing policy", lineno + 1))?
                    .to_string(),
            });
            continue;
        }
        let entry = entry_from_obj(&obj).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        entries.push(entry);
    }
    let meta = meta.ok_or_else(|| "missing meta header line".to_string())?;
    Ok((meta, entries))
}

/// Decode one parsed flat object into a [`TraceEntry`].
fn entry_from_obj(obj: &jsonl::FlatObject) -> Result<TraceEntry, String> {
    let need = |k: &str| obj.get_u64(k).ok_or_else(|| format!("missing field {k:?}"));
    let proc = |k: &str| need(k).map(|v| v as crate::process::ProcessId);
    let step = need("step")?;
    let at_nanos = need("at_nanos")?;
    let ev = obj.get_str("ev").ok_or("missing field \"ev\"")?;
    let event = match ev {
        "register" => TraceEvent::RegisterProcess {
            process: proc("process")?,
        },
        "deregister" => TraceEvent::DeregisterProcess {
            process: proc("process")?,
        },
        "set_domain" => TraceEvent::SetDomain {
            process: proc("process")?,
            cores: obj
                .get_array("cores")
                .map(|cs| cs.iter().map(|&c| c as usize).collect()),
        },
        "submit" => TraceEvent::Submit {
            process: proc("process")?,
            task: need("task")?,
        },
        "intake_drain" => TraceEvent::IntakeDrain {
            n: need("n")? as usize,
        },
        "enqueue" => TraceEvent::Enqueue {
            process: proc("process")?,
            task: need("task")?,
            preferred: obj.get_u64("preferred").map(|p| p as usize),
        },
        "pop" => TraceEvent::Pop {
            core: need("core")? as usize,
            tier: match obj.get_str("tier") {
                Some("aged") => Some(PickTier::Aged),
                Some("affinity") => Some(PickTier::Affinity),
                Some("node") => Some(PickTier::Node),
                Some("remote") => Some(PickTier::Remote),
                Some(other) => return Err(format!("unknown pick tier {other:?}")),
                None => None,
            },
            task: need("task")?,
        },
        "pop_empty" => TraceEvent::PopEmpty {
            core: need("core")? as usize,
        },
        "grant" => TraceEvent::Grant {
            task: need("task")?,
            core: need("core")? as usize,
            immediate: obj.get_bool("immediate").unwrap_or(false),
        },
        "yield" => TraceEvent::Yield {
            task: need("task")?,
            core: need("core")? as usize,
        },
        "migrate" => TraceEvent::Migrate {
            task: need("task")?,
            from: need("from")? as usize,
            to: need("to")? as usize,
        },
        "fault" => TraceEvent::FaultInjected {
            site: parse_fault_site(obj.get_str("site").ok_or("fault missing site")?)?,
            task: obj.get_u64("task"),
        },
        "shutdown" => TraceEvent::Shutdown,
        other => return Err(format!("unknown event {other:?}")),
    };
    Ok(TraceEntry {
        step,
        at_nanos,
        event,
    })
}

/// Decode a `Debug`-rendered [`crate::faults::FaultSite`] name.
fn parse_fault_site(s: &str) -> Result<crate::faults::FaultSite, String> {
    crate::faults::FaultSite::ALL
        .into_iter()
        .find(|site| format!("{site:?}") == s)
        .ok_or_else(|| format!("unknown fault site {s:?}"))
}

/// A minimal flat-JSON-object line parser: string, unsigned integer, bool, null and
/// array-of-unsigned values — exactly the value shapes [`to_jsonl`] emits. Not a general
/// JSON parser (no nesting, no floats, no escapes beyond `\"` and `\\`), by design: the
/// repo carries no serde, and the trace interchange format is under our control.
pub(crate) mod jsonl {
    /// One parsed value.
    #[derive(Debug, Clone, PartialEq)]
    pub(crate) enum Value {
        Str(String),
        U64(u64),
        Bool(bool),
        Null,
        Array(Vec<u64>),
    }

    /// A parsed flat object: ordered `(key, value)` pairs.
    #[derive(Debug)]
    pub(crate) struct FlatObject(Vec<(String, Value)>);

    impl FlatObject {
        fn get(&self, key: &str) -> Option<&Value> {
            self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        pub(crate) fn get_str(&self, key: &str) -> Option<&str> {
            match self.get(key) {
                Some(Value::Str(s)) => Some(s),
                _ => None,
            }
        }

        pub(crate) fn get_u64(&self, key: &str) -> Option<u64> {
            match self.get(key) {
                Some(Value::U64(n)) => Some(*n),
                _ => None,
            }
        }

        pub(crate) fn get_bool(&self, key: &str) -> Option<bool> {
            match self.get(key) {
                Some(Value::Bool(b)) => Some(*b),
                _ => None,
            }
        }

        pub(crate) fn get_array(&self, key: &str) -> Option<&Vec<u64>> {
            match self.get(key) {
                Some(Value::Array(a)) => Some(a),
                _ => None,
            }
        }
    }

    /// Parse one `{...}` line into a [`FlatObject`].
    pub(crate) fn parse_object(line: &str) -> Result<FlatObject, String> {
        let mut p = Parser {
            b: line.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut out = Vec::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.next();
            return Ok(FlatObject(out));
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(FlatObject(out))
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn next(&mut self) -> Option<u8> {
            let c = self.peek();
            if c.is_some() {
                self.i += 1;
            }
            c
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t')) {
                self.i += 1;
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            match self.next() {
                Some(got) if got == c => Ok(()),
                got => Err(format!("expected {:?}, got {got:?}", c as char)),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.next() {
                    Some(b'"') => return Ok(out),
                    Some(b'\\') => match self.next() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        other => return Err(format!("unsupported escape {other:?}")),
                    },
                    Some(c) => out.push(c as char),
                    None => return Err("unterminated string".to_string()),
                }
            }
        }

        fn number(&mut self) -> Result<u64, String> {
            let start = self.i;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
            }
            if start == self.i {
                return Err("expected digits".to_string());
            }
            std::str::from_utf8(&self.b[start..self.i])
                .map_err(|e| e.to_string())?
                .parse()
                .map_err(|e| format!("bad number: {e}"))
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'0'..=b'9') => Ok(Value::U64(self.number()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'[') => {
                    self.i += 1;
                    let mut arr = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.i += 1;
                        return Ok(Value::Array(arr));
                    }
                    loop {
                        self.skip_ws();
                        arr.push(self.number()?);
                        self.skip_ws();
                        match self.next() {
                            Some(b',') => continue,
                            Some(b']') => break,
                            other => return Err(format!("expected ',' or ']', got {other:?}")),
                        }
                    }
                    Ok(Value::Array(arr))
                }
                other => Err(format!("unexpected value start {other:?}")),
            }
        }

        fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(value)
            } else {
                Err(format!("expected literal {lit:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn meta_snapshots_config() {
        let cfg = NosvConfig::with_topology(crate::topology::Topology::new(4, 2))
            .quantum(Duration::from_micros(50));
        let meta = TraceMeta::from_config(&cfg);
        assert_eq!(meta.core_nodes, vec![0, 0, 1, 1]);
        assert_eq!(meta.quantum_nanos, 50_000);
        assert_eq!(meta.policy, "sched_coop");
        assert_eq!(meta.cores(), 4);
        assert_eq!(meta.view_node_of(3), 1);
    }

    #[test]
    fn recorder_orders_and_stamps_entries() {
        let rec = TraceRecorder::new(TraceMeta::from_config(&NosvConfig::with_cores(2)));
        let base = Instant::now();
        rec.record_at(base + Duration::from_nanos(10), TraceEvent::Shutdown);
        rec.record(TraceEvent::IntakeDrain { n: 3 });
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].step, 0);
        assert_eq!(events[1].step, 1);
        assert_eq!(events[0].event, TraceEvent::Shutdown);
        assert!(!rec.is_empty());
        assert_eq!(rec.take().len(), 2);
        assert!(rec.is_empty());
        rec.record(TraceEvent::Shutdown);
        assert_eq!(rec.snapshot()[0].step, 0, "steps restart after take()");
    }

    #[test]
    fn timestamps_before_base_saturate_to_zero() {
        let rec = TraceRecorder::new(TraceMeta::from_config(&NosvConfig::with_cores(1)));
        let past = Instant::now() - Duration::from_secs(1);
        rec.record_at(past, TraceEvent::Shutdown);
        assert_eq!(rec.snapshot()[0].at_nanos, 0);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let meta = TraceMeta {
            core_nodes: vec![0, 0, 1, 1],
            quantum_nanos: 20_000_000,
            policy: "sched_coop".to_string(),
        };
        let events = vec![
            TraceEvent::RegisterProcess { process: 1 },
            TraceEvent::SetDomain {
                process: 1,
                cores: Some(vec![0, 2]),
            },
            TraceEvent::SetDomain {
                process: 1,
                cores: None,
            },
            TraceEvent::Submit {
                process: 1,
                task: 7,
            },
            TraceEvent::IntakeDrain { n: 1 },
            TraceEvent::Enqueue {
                process: 1,
                task: 7,
                preferred: Some(2),
            },
            TraceEvent::Enqueue {
                process: 1,
                task: 8,
                preferred: None,
            },
            TraceEvent::Pop {
                core: 2,
                tier: Some(PickTier::Affinity),
                task: 7,
            },
            TraceEvent::Pop {
                core: 3,
                tier: None,
                task: 8,
            },
            TraceEvent::PopEmpty { core: 0 },
            TraceEvent::Grant {
                task: 7,
                core: 2,
                immediate: false,
            },
            TraceEvent::Yield { task: 7, core: 2 },
            TraceEvent::Migrate {
                task: 8,
                from: 2,
                to: 3,
            },
            TraceEvent::FaultInjected {
                site: crate::faults::FaultSite::WorkerStall,
                task: Some(7),
            },
            TraceEvent::FaultInjected {
                site: crate::faults::FaultSite::ShutdownRace,
                task: None,
            },
            TraceEvent::DeregisterProcess { process: 1 },
            TraceEvent::Shutdown,
        ];
        let entries: Vec<TraceEntry> = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TraceEntry {
                step: i as u64,
                at_nanos: i as u64 * 1000,
                event,
            })
            .collect();
        let text = to_jsonl(&meta, &entries);
        let (meta2, entries2) = from_jsonl(&text).expect("round trip parses");
        assert_eq!(meta2, meta);
        assert_eq!(entries2, entries);
    }

    #[test]
    fn jsonl_rejects_malformed_input() {
        assert!(from_jsonl("").unwrap_err().contains("missing meta"));
        let meta_line =
            "{\"type\":\"meta\",\"core_nodes\":[0],\"quantum_nanos\":1,\"policy\":\"p\"}\n";
        let bad_ev = format!("{meta_line}{{\"step\":0,\"at_nanos\":0,\"ev\":\"warp\"}}\n");
        assert!(from_jsonl(&bad_ev).unwrap_err().contains("unknown event"));
        let bad_json = format!("{meta_line}{{\"step\":0,,}}\n");
        assert!(from_jsonl(&bad_json).unwrap_err().starts_with("line 2"));
        let bad_site =
            format!("{meta_line}{{\"step\":0,\"at_nanos\":0,\"ev\":\"fault\",\"site\":\"X\",\"task\":null}}\n");
        assert!(from_jsonl(&bad_site).unwrap_err().contains("fault site"));
    }
}
