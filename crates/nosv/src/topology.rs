//! Virtual core and NUMA topology description.
//!
//! USF does not pin threads to physical CPUs in this reproduction (that would require
//! `libc`); instead the scheduler manages *core slots*. The invariant the paper relies on —
//! exactly one runnable participating thread per core — is enforced on the slots. The NUMA
//! structure is still modelled because SCHED_COOP's placement rule is
//! affinity → same NUMA node → anywhere (§4.1).

/// Identifier of a virtual core slot (0-based, dense).
pub type CoreId = usize;

/// Description of the virtual machine topology visible to the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    cores: usize,
    numa_nodes: usize,
    core_to_node: Vec<usize>,
}

impl Topology {
    /// Build a topology with `cores` cores distributed in `numa_nodes` equally sized,
    /// contiguous NUMA nodes (the layout of virtually every HPC node, including the
    /// evaluation machine of the paper).
    ///
    /// If `cores` is not divisible by `numa_nodes`, the first nodes get one extra core.
    ///
    /// # Panics
    /// Panics if `cores == 0` or `numa_nodes == 0` or `numa_nodes > cores`.
    pub fn new(cores: usize, numa_nodes: usize) -> Self {
        assert!(cores > 0, "topology needs at least one core");
        assert!(numa_nodes > 0, "topology needs at least one NUMA node");
        assert!(
            numa_nodes <= cores,
            "cannot have more NUMA nodes than cores"
        );
        let base = cores / numa_nodes;
        let extra = cores % numa_nodes;
        let mut core_to_node = Vec::with_capacity(cores);
        for node in 0..numa_nodes {
            let count = base + usize::from(node < extra);
            core_to_node.extend(std::iter::repeat(node).take(count));
        }
        debug_assert_eq!(core_to_node.len(), cores);
        Topology {
            cores,
            numa_nodes,
            core_to_node,
        }
    }

    /// A single-NUMA-node topology with `cores` cores.
    pub fn single_node(cores: usize) -> Self {
        Topology::new(cores, 1)
    }

    /// A topology from explicit per-node core counts — non-uniform NUMA layouts
    /// (e.g. a 6+2 big.LITTLE split or an asymmetric cloud slice). Core ids are dense and
    /// node-contiguous: node 0 owns `0..sizes[0]`, node 1 the next `sizes[1]` ids, …
    ///
    /// # Panics
    /// Panics if `sizes` is empty or any node size is zero.
    pub fn from_node_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "topology needs at least one NUMA node");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every NUMA node needs at least one core"
        );
        let cores = sizes.iter().sum();
        let mut core_to_node = Vec::with_capacity(cores);
        for (node, &count) in sizes.iter().enumerate() {
            core_to_node.extend(std::iter::repeat(node).take(count));
        }
        Topology {
            cores,
            numa_nodes: sizes.len(),
            core_to_node,
        }
    }

    /// Detect a topology from the host: `std::thread::available_parallelism` cores, split
    /// into the number of NUMA nodes named by the `USF_NUMA_NODES` environment variable
    /// when it holds a valid count (at least 1, at most the core count) — so real-host
    /// runs can model a multi-socket layout — and one node otherwise.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let raw = std::env::var("USF_NUMA_NODES").ok();
        Topology::new(cores, parse_numa_override(raw.as_deref(), cores))
    }

    /// The topology of the paper's evaluation machine (Table 1): Marenostrum 5 node with
    /// two 56-core Intel Sapphire Rapids 8480+ sockets (112 cores, 2 NUMA domains).
    pub fn marenostrum5() -> Self {
        Topology::new(112, 2)
    }

    /// Number of core slots.
    pub fn num_cores(&self) -> usize {
        self.cores
    }

    /// Number of NUMA nodes.
    pub fn num_numa_nodes(&self) -> usize {
        self.numa_nodes
    }

    /// NUMA node of a core.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn node_of(&self, core: CoreId) -> usize {
        self.core_to_node[core]
    }

    /// Whether two cores share a NUMA node.
    pub fn same_node(&self, a: CoreId, b: CoreId) -> bool {
        self.core_to_node[a] == self.core_to_node[b]
    }

    /// Iterator over the cores belonging to a NUMA node.
    pub fn cores_in_node(&self, node: usize) -> impl Iterator<Item = CoreId> + '_ {
        self.core_to_node
            .iter()
            .enumerate()
            .filter(move |(_, n)| **n == node)
            .map(|(c, _)| c)
    }

    /// Iterator over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        0..self.cores
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::detect()
    }
}

/// Validate a `USF_NUMA_NODES` override against the core count: a parseable value in
/// `1..=cores` is honoured, anything else falls back to a single node. Factored out of
/// [`Topology::detect`] so it is testable without mutating the process environment
/// (`setenv` races concurrent `getenv`s in the multi-threaded test harness).
fn parse_numa_override(raw: Option<&str>, cores: usize) -> usize {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1 && n <= cores)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let t = Topology::new(8, 2);
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.num_numa_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(7), 1);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn uneven_split_gives_extra_to_first_nodes() {
        let t = Topology::new(7, 3);
        let counts: Vec<usize> = (0..3).map(|n| t.cores_in_node(n).count()).collect();
        assert_eq!(counts, vec![3, 2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::single_node(4);
        assert_eq!(t.num_numa_nodes(), 1);
        assert!(t.cores().all(|c| t.node_of(c) == 0));
    }

    #[test]
    fn marenostrum_layout() {
        let t = Topology::marenostrum5();
        assert_eq!(t.num_cores(), 112);
        assert_eq!(t.num_numa_nodes(), 2);
        assert_eq!(t.cores_in_node(0).count(), 56);
        assert_eq!(t.cores_in_node(1).count(), 56);
        assert_eq!(t.node_of(55), 0);
        assert_eq!(t.node_of(56), 1);
    }

    #[test]
    fn detect_is_nonempty() {
        let t = Topology::detect();
        assert!(t.num_cores() >= 1);
    }

    #[test]
    fn numa_nodes_override_is_validated() {
        // The parsing/validation half of `detect()`, tested without touching the process
        // environment (setenv would race concurrent getenv in the parallel harness; the
        // env round-trip itself is covered by the single-process `tests/env_config.rs`).
        assert_eq!(parse_numa_override(Some("2"), 8), 2, "valid override");
        assert_eq!(parse_numa_override(Some(" 4 "), 8), 4, "whitespace trimmed");
        assert_eq!(parse_numa_override(Some("8"), 8), 8, "one core per node ok");
        assert_eq!(parse_numa_override(None, 8), 1, "unset falls back");
        for bad in ["0", "9", "not-a-number", "-1", ""] {
            assert_eq!(
                parse_numa_override(Some(bad), 8),
                1,
                "override {bad:?} must fall back to one node"
            );
        }
    }

    #[test]
    fn from_node_sizes_builds_non_uniform_maps() {
        let t = Topology::from_node_sizes(&[3, 1, 2]);
        assert_eq!(t.num_cores(), 6);
        assert_eq!(t.num_numa_nodes(), 3);
        assert_eq!(t.cores_in_node(0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(t.cores_in_node(1).collect::<Vec<_>>(), vec![3]);
        assert_eq!(t.cores_in_node(2).collect::<Vec<_>>(), vec![4, 5]);
        assert!(t.same_node(4, 5));
        assert!(!t.same_node(2, 3));
    }

    #[test]
    #[should_panic]
    fn from_node_sizes_rejects_empty_nodes() {
        let _ = Topology::from_node_sizes(&[2, 0]);
    }

    #[test]
    #[should_panic]
    fn zero_cores_panics() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    #[should_panic]
    fn more_nodes_than_cores_panics() {
        let _ = Topology::new(2, 4);
    }

    #[test]
    fn cores_iterator_is_dense() {
        let t = Topology::new(5, 2);
        let ids: Vec<_> = t.cores().collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
