//! Virtual core and NUMA topology description.
//!
//! USF does not pin threads to physical CPUs in this reproduction (that would require
//! `libc`); instead the scheduler manages *core slots*. The invariant the paper relies on —
//! exactly one runnable participating thread per core — is enforced on the slots. The NUMA
//! structure is still modelled because SCHED_COOP's placement rule is
//! affinity → same NUMA node → anywhere (§4.1).

/// Identifier of a virtual core slot (0-based, dense).
pub type CoreId = usize;

/// Description of the virtual machine topology visible to the scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    cores: usize,
    numa_nodes: usize,
    core_to_node: Vec<usize>,
}

impl Topology {
    /// Build a topology with `cores` cores distributed in `numa_nodes` equally sized,
    /// contiguous NUMA nodes (the layout of virtually every HPC node, including the
    /// evaluation machine of the paper).
    ///
    /// If `cores` is not divisible by `numa_nodes`, the first nodes get one extra core.
    ///
    /// # Panics
    /// Panics if `cores == 0` or `numa_nodes == 0` or `numa_nodes > cores`.
    pub fn new(cores: usize, numa_nodes: usize) -> Self {
        assert!(cores > 0, "topology needs at least one core");
        assert!(numa_nodes > 0, "topology needs at least one NUMA node");
        assert!(
            numa_nodes <= cores,
            "cannot have more NUMA nodes than cores"
        );
        let base = cores / numa_nodes;
        let extra = cores % numa_nodes;
        let mut core_to_node = Vec::with_capacity(cores);
        for node in 0..numa_nodes {
            let count = base + usize::from(node < extra);
            core_to_node.extend(std::iter::repeat(node).take(count));
        }
        debug_assert_eq!(core_to_node.len(), cores);
        Topology {
            cores,
            numa_nodes,
            core_to_node,
        }
    }

    /// A single-NUMA-node topology with `cores` cores.
    pub fn single_node(cores: usize) -> Self {
        Topology::new(cores, 1)
    }

    /// Detect a topology from the host: `std::thread::available_parallelism` cores in one
    /// NUMA node. Used when the user does not specify a core count.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology::single_node(cores)
    }

    /// The topology of the paper's evaluation machine (Table 1): Marenostrum 5 node with
    /// two 56-core Intel Sapphire Rapids 8480+ sockets (112 cores, 2 NUMA domains).
    pub fn marenostrum5() -> Self {
        Topology::new(112, 2)
    }

    /// Number of core slots.
    pub fn num_cores(&self) -> usize {
        self.cores
    }

    /// Number of NUMA nodes.
    pub fn num_numa_nodes(&self) -> usize {
        self.numa_nodes
    }

    /// NUMA node of a core.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn node_of(&self, core: CoreId) -> usize {
        self.core_to_node[core]
    }

    /// Whether two cores share a NUMA node.
    pub fn same_node(&self, a: CoreId, b: CoreId) -> bool {
        self.core_to_node[a] == self.core_to_node[b]
    }

    /// Iterator over the cores belonging to a NUMA node.
    pub fn cores_in_node(&self, node: usize) -> impl Iterator<Item = CoreId> + '_ {
        self.core_to_node
            .iter()
            .enumerate()
            .filter(move |(_, n)| **n == node)
            .map(|(c, _)| c)
    }

    /// Iterator over all core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        0..self.cores
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let t = Topology::new(8, 2);
        assert_eq!(t.num_cores(), 8);
        assert_eq!(t.num_numa_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(7), 1);
        assert!(t.same_node(0, 3));
        assert!(!t.same_node(3, 4));
    }

    #[test]
    fn uneven_split_gives_extra_to_first_nodes() {
        let t = Topology::new(7, 3);
        let counts: Vec<usize> = (0..3).map(|n| t.cores_in_node(n).count()).collect();
        assert_eq!(counts, vec![3, 2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), 7);
    }

    #[test]
    fn single_node_topology() {
        let t = Topology::single_node(4);
        assert_eq!(t.num_numa_nodes(), 1);
        assert!(t.cores().all(|c| t.node_of(c) == 0));
    }

    #[test]
    fn marenostrum_layout() {
        let t = Topology::marenostrum5();
        assert_eq!(t.num_cores(), 112);
        assert_eq!(t.num_numa_nodes(), 2);
        assert_eq!(t.cores_in_node(0).count(), 56);
        assert_eq!(t.cores_in_node(1).count(), 56);
        assert_eq!(t.node_of(55), 0);
        assert_eq!(t.node_of(56), 1);
    }

    #[test]
    fn detect_is_nonempty() {
        let t = Topology::detect();
        assert!(t.num_cores() >= 1);
    }

    #[test]
    #[should_panic]
    fn zero_cores_panics() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    #[should_panic]
    fn more_nodes_than_cores_panics() {
        let _ = Topology::new(2, 4);
    }

    #[test]
    fn cores_iterator_is_dense() {
        let t = Topology::new(5, 2);
        let ids: Vec<_> = t.cores().collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
