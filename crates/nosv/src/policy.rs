//! Scheduling policies.
//!
//! USF is a *framework*: the scheduler core only enforces the one-task-per-core invariant
//! and delegates the "which ready task should run on this idle core" decision to a
//! [`Policy`] object. [`CoopPolicy`] implements the paper's SCHED_COOP rule (§4.1);
//! [`FifoPolicy`] is a deliberately simple global-FIFO alternative used as an ablation and
//! as a template for user-defined policies.

use crate::process::ProcessId;
use crate::readyq::{CoopCore, PickTier, ShardedCoopCore};
use crate::task::TaskId;
use crate::topology::{CoreId, Topology};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The per-task information a policy is allowed to base its decisions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskMeta {
    /// Task identifier (opaque to the policy).
    pub id: TaskId,
    /// Process domain the task belongs to.
    pub process: ProcessId,
    /// The core the task last ran on, if any (its preferred core).
    pub preferred_core: Option<CoreId>,
}

/// A pluggable ready-queue policy.
///
/// All methods are called with the scheduler lock held; implementations must not block.
pub trait Policy: Send {
    /// Short identifier used in diagnostics.
    fn name(&self) -> &str;

    /// A process domain was registered.
    fn register_process(&mut self, process: ProcessId);

    /// A process domain was deregistered. Any queued tasks of that process have already
    /// finished; the policy only needs to drop its bookkeeping.
    fn deregister_process(&mut self, process: ProcessId);

    /// Restrict (or, with `None`, un-restrict) a process to a set of cores — NUMA-aware
    /// placement (§5.6 socket pinning). Placement-aware policies honour it on every pick
    /// path; the default is a no-op, so placement-oblivious policies (e.g. the FIFO
    /// ablation) keep treating the restriction as a hint.
    fn set_process_domain(&mut self, process: ProcessId, cores: Option<Vec<CoreId>>) {
        let _ = (process, cores);
    }

    /// A task became ready. The policy must keep it until a later [`Policy::pick`] returns it.
    fn enqueue(&mut self, topo: &Topology, task: TaskMeta, now: Instant);

    /// Core `core` is idle: return the task that should run there, or `None` to leave it
    /// idle. `now` is the scheduler's notion of the current time (for quantum accounting).
    fn pick(&mut self, topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta>;

    /// [`Policy::pick`], additionally reporting which tier of a tiered pop served the task
    /// when the policy knows (`None` for tier-less policies like the FIFO ablation). The
    /// scheduler always dispatches through this method so the `sched-trace` recorder can
    /// log the tier; the default simply delegates to `pick`.
    fn pick_traced(
        &mut self,
        topo: &Topology,
        core: CoreId,
        now: Instant,
    ) -> Option<(TaskMeta, Option<PickTier>)> {
        self.pick(topo, core, now).map(|m| (m, None))
    }

    /// Aging-valve-only pick on behalf of `core`: return a task that has waited longer
    /// than its fairness deadline, or `None`. The split-lock scheduler's cross-shard
    /// aging valve probes *foreign* shards through this method, so it must not rotate the
    /// quantum ring or otherwise consume the process turn. Policies without an aging
    /// valve (e.g. the FIFO ablation) keep the default no-op.
    fn pick_aged(&mut self, topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta> {
        let _ = (topo, core, now);
        None
    }

    /// Whether any task is ready (used by `yield` to decide whether switching is useful).
    fn has_ready(&self) -> bool;

    /// Number of ready tasks currently queued.
    fn ready_count(&self) -> usize;

    /// Number of process-quantum rotations performed so far (0 for policies without one).
    fn rotations(&self) -> u64 {
        0
    }

    /// Per-process ready-queue depths as `(process, bound, unbound)` — the stats plane's
    /// queue-depth gauges. Policies without per-process structure report nothing (the
    /// default), and the gauges fall back to zero.
    fn queue_depths(&self) -> Vec<(ProcessId, usize, usize)> {
        Vec::new()
    }
}

/// How a grant's placement relates to the task's preference; used for metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Granted the preferred core.
    Affinity,
    /// Granted a core in the preferred core's NUMA node.
    Numa,
    /// Granted a remote core, or the task had no preference.
    Remote,
}

/// Classify a placement for metric purposes.
pub fn classify_placement(
    topo: &Topology,
    preferred: Option<CoreId>,
    granted: CoreId,
) -> PlacementKind {
    match preferred {
        Some(p) if p == granted => PlacementKind::Affinity,
        Some(p) if topo.same_node(p, granted) => PlacementKind::Numa,
        _ => PlacementKind::Remote,
    }
}

// ---------------------------------------------------------------------------------------
// SCHED_COOP
// ---------------------------------------------------------------------------------------

/// The paper's SCHED_COOP ready-queue policy (§4.1).
///
/// * Ready tasks are queued FIFO per process and per preferred core.
/// * An idle core is first offered tasks that last ran on it, then — oldest enqueued first —
///   tasks from its NUMA node or unbound tasks, then the oldest remote task.
///   The FIFO aging between node-local and unbound queues keeps the policy
///   starvation-free: never-granted tasks must not wait forever behind yielding tasks
///   that re-queue to their last core (the oversubscribed busy-wait-barrier pattern).
/// * Each process is served for a quantum (default 20 ms); the quantum is evaluated only at
///   scheduling points (i.e. inside [`Policy::pick`]), never by interrupting a running task.
///
/// The queue structure itself lives in [`crate::readyq`], shared verbatim with the
/// discrete-event simulator (`usf-simsched`); this type is a thin adapter binding it to
/// real time and [`TaskMeta`]. The topology is snapshotted at construction, so the
/// `topo` arguments of the [`Policy`] methods are ignored.
#[derive(Debug)]
pub struct CoopPolicy {
    core: CoopCore<ProcessId, TaskMeta, Instant>,
}

impl CoopPolicy {
    /// Create a SCHED_COOP policy for the given topology and per-process quantum.
    pub fn new(topo: Topology, quantum: Duration) -> Self {
        CoopPolicy {
            core: CoopCore::new(&topo, quantum),
        }
    }

    /// The process whose quantum is currently active, if any.
    pub fn current_process(&self) -> Option<ProcessId> {
        self.core.current_process()
    }

    /// Pick with tier reporting — the same code path as [`Policy::pick`], exposed for
    /// trace/replay equivalence tests that want to compare picks tier-for-tier.
    pub fn pick_tiered(&mut self, core: CoreId, now: Instant) -> Option<(TaskMeta, PickTier)> {
        self.core.pick_tiered(core, now)
    }
}

impl Policy for CoopPolicy {
    fn name(&self) -> &str {
        "sched_coop"
    }

    fn register_process(&mut self, process: ProcessId) {
        self.core.register_process(process);
    }

    fn deregister_process(&mut self, process: ProcessId) {
        self.core.deregister_process(process);
    }

    fn set_process_domain(&mut self, process: ProcessId, cores: Option<Vec<CoreId>>) {
        self.core.set_process_domain(process, cores);
    }

    fn enqueue(&mut self, _topo: &Topology, task: TaskMeta, now: Instant) {
        self.core
            .enqueue(task.process, task, task.preferred_core, now);
    }

    fn pick(&mut self, _topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta> {
        self.core.pick(core, now)
    }

    fn pick_traced(
        &mut self,
        _topo: &Topology,
        core: CoreId,
        now: Instant,
    ) -> Option<(TaskMeta, Option<PickTier>)> {
        self.core.pick_tiered(core, now).map(|(m, t)| (m, Some(t)))
    }

    fn pick_aged(&mut self, _topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta> {
        self.core.pick_aged_for(core, now)
    }

    fn has_ready(&self) -> bool {
        self.core.has_ready()
    }

    fn ready_count(&self) -> usize {
        self.core.ready_count()
    }

    fn rotations(&self) -> u64 {
        self.core.rotations()
    }

    fn queue_depths(&self) -> Vec<(ProcessId, usize, usize)> {
        self.core.queue_depths()
    }
}

// ---------------------------------------------------------------------------------------
// SCHED_COOP, per-NUMA-node sharded
// ---------------------------------------------------------------------------------------

/// [`CoopPolicy`] over the per-NUMA-node sharded ready-queue backing.
///
/// Identical selection semantics — the policy drives the *same* [`CoopCore`] generic
/// (quantum ring, turn passing, tiered pick loop); only the queue storage differs:
/// per-core FIFOs are grouped into per-node shards, each behind its own lock, and a core
/// touches remote shards only after its own shard and the unbound queue are exhausted
/// (steal-on-exhaustion). Pick sequences are therefore pinned to [`CoopPolicy`]'s — the
/// `readyq_equivalence` property tests and `sched-trace` replay enforce it — while the
/// lock an enqueue or pick takes is (valve aside) local to the task's node.
///
/// Note that the [`Policy`] contract still serializes calls under the scheduler lock; the
/// sharding pays off once the scheduler itself drives shards concurrently, and is
/// exercised today for its equivalence properties and per-shard accounting.
#[derive(Debug)]
pub struct ShardedCoopPolicy {
    core: ShardedCoopCore<ProcessId, TaskMeta, Instant>,
}

impl ShardedCoopPolicy {
    /// Create a sharded SCHED_COOP policy for the given topology and per-process quantum.
    pub fn new(topo: Topology, quantum: Duration) -> Self {
        ShardedCoopPolicy {
            core: ShardedCoopCore::new(&topo, quantum),
        }
    }

    /// The process whose quantum is currently active, if any.
    pub fn current_process(&self) -> Option<ProcessId> {
        self.core.current_process()
    }

    /// Pick with tier reporting — see [`CoopPolicy::pick_tiered`].
    pub fn pick_tiered(&mut self, core: CoreId, now: Instant) -> Option<(TaskMeta, PickTier)> {
        self.core.pick_tiered(core, now)
    }
}

impl Policy for ShardedCoopPolicy {
    fn name(&self) -> &str {
        "sched_coop_sharded"
    }

    fn register_process(&mut self, process: ProcessId) {
        self.core.register_process(process);
    }

    fn deregister_process(&mut self, process: ProcessId) {
        self.core.deregister_process(process);
    }

    fn set_process_domain(&mut self, process: ProcessId, cores: Option<Vec<CoreId>>) {
        self.core.set_process_domain(process, cores);
    }

    fn enqueue(&mut self, _topo: &Topology, task: TaskMeta, now: Instant) {
        self.core
            .enqueue(task.process, task, task.preferred_core, now);
    }

    fn pick(&mut self, _topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta> {
        self.core.pick(core, now)
    }

    fn pick_traced(
        &mut self,
        _topo: &Topology,
        core: CoreId,
        now: Instant,
    ) -> Option<(TaskMeta, Option<PickTier>)> {
        self.core.pick_tiered(core, now).map(|(m, t)| (m, Some(t)))
    }

    fn pick_aged(&mut self, _topo: &Topology, core: CoreId, now: Instant) -> Option<TaskMeta> {
        self.core.pick_aged_for(core, now)
    }

    fn has_ready(&self) -> bool {
        self.core.has_ready()
    }

    fn ready_count(&self) -> usize {
        self.core.ready_count()
    }

    fn rotations(&self) -> u64 {
        self.core.rotations()
    }

    fn queue_depths(&self) -> Vec<(ProcessId, usize, usize)> {
        self.core.queue_depths()
    }
}

// ---------------------------------------------------------------------------------------
// Global FIFO
// ---------------------------------------------------------------------------------------

/// A single global FIFO without affinity or process awareness.
///
/// Serves two purposes: an ablation of SCHED_COOP's locality/quantum machinery, and the
/// smallest possible example of a user-defined policy for the framework.
#[derive(Debug, Default)]
pub struct FifoPolicy {
    queue: VecDeque<TaskMeta>,
}

impl FifoPolicy {
    /// Create an empty FIFO policy.
    pub fn new() -> Self {
        FifoPolicy::default()
    }
}

impl Policy for FifoPolicy {
    fn name(&self) -> &str {
        "fifo"
    }

    fn register_process(&mut self, _process: ProcessId) {}

    fn deregister_process(&mut self, _process: ProcessId) {}

    fn enqueue(&mut self, _topo: &Topology, task: TaskMeta, _now: Instant) {
        self.queue.push_back(task);
    }

    fn pick(&mut self, _topo: &Topology, _core: CoreId, _now: Instant) -> Option<TaskMeta> {
        self.queue.pop_front()
    }

    fn has_ready(&self) -> bool {
        !self.queue.is_empty()
    }

    fn ready_count(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: TaskId, process: ProcessId, pref: Option<CoreId>) -> TaskMeta {
        TaskMeta {
            id,
            process,
            preferred_core: pref,
        }
    }

    #[test]
    fn fifo_policy_is_fifo() {
        let topo = Topology::single_node(2);
        let mut p = FifoPolicy::new();
        let now = Instant::now();
        assert!(!p.has_ready());
        p.enqueue(&topo, meta(1, 0, None), now);
        p.enqueue(&topo, meta(2, 0, Some(1)), now);
        p.enqueue(&topo, meta(3, 1, None), now);
        assert_eq!(p.ready_count(), 3);
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 1);
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 2);
        assert_eq!(p.pick(&topo, 1, now).unwrap().id, 3);
        assert!(p.pick(&topo, 0, now).is_none());
    }

    #[test]
    fn coop_prefers_affinity_core() {
        let topo = Topology::new(4, 2);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(20));
        p.register_process(0);
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 0, Some(2)), now);
        p.enqueue(&topo, meta(2, 0, Some(0)), now);
        // Core 0 should get task 2 (its affine task), not task 1.
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 2);
        // Core 2 gets its own.
        assert_eq!(p.pick(&topo, 2, now).unwrap().id, 1);
    }

    #[test]
    fn coop_falls_back_to_numa_then_remote() {
        let topo = Topology::new(4, 2); // cores 0,1 node 0; cores 2,3 node 1
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(20));
        p.register_process(0);
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 0, Some(1)), now); // node 0
        p.enqueue(&topo, meta(2, 0, Some(3)), now); // node 1
                                                    // Core 0 (node 0) should steal from core 1 (same node) before core 3.
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 1);
        // Now only the remote task remains; core 0 still gets it (anywhere placement).
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 2);
        assert!(!p.has_ready());
    }

    #[test]
    fn coop_unbound_tasks_served_after_affine() {
        let topo = Topology::single_node(2);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(20));
        p.register_process(0);
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 0, None), now);
        p.enqueue(&topo, meta(2, 0, Some(0)), now);
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 2);
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 1);
    }

    #[test]
    fn coop_fifo_order_within_core_queue() {
        let topo = Topology::single_node(1);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(20));
        p.register_process(0);
        let now = Instant::now();
        for id in 1..=5 {
            p.enqueue(&topo, meta(id, 0, Some(0)), now);
        }
        let order: Vec<TaskId> = (0..5).map(|_| p.pick(&topo, 0, now).unwrap().id).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn coop_serves_other_process_when_current_is_empty() {
        let topo = Topology::single_node(2);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(1000));
        p.register_process(0);
        p.register_process(1);
        let now = Instant::now();
        p.enqueue(&topo, meta(10, 1, None), now);
        // Process 0 (current) has nothing; the pick should fall through to process 1.
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 10);
        assert!(p.rotations() >= 1);
    }

    #[test]
    fn coop_quantum_rotation() {
        let topo = Topology::single_node(1);
        let quantum = Duration::from_millis(10);
        let mut p = CoopPolicy::new(topo.clone(), quantum);
        p.register_process(0);
        p.register_process(1);
        let t0 = Instant::now();
        p.enqueue(&topo, meta(1, 0, None), t0);
        p.enqueue(&topo, meta(2, 1, None), t0);
        p.enqueue(&topo, meta(3, 0, None), t0);
        p.enqueue(&topo, meta(4, 1, None), t0);
        // Within the quantum, process 0 is served.
        assert_eq!(p.pick(&topo, 0, t0).unwrap().id, 1);
        assert_eq!(
            p.pick(&topo, 0, t0 + Duration::from_millis(5)).unwrap().id,
            3
        );
        // After the quantum expires, process 1 gets its turn.
        assert_eq!(
            p.pick(&topo, 0, t0 + Duration::from_millis(15)).unwrap().id,
            2
        );
        assert_eq!(p.current_process(), Some(1));
        // And process 1 keeps the core for its own quantum.
        assert_eq!(
            p.pick(&topo, 0, t0 + Duration::from_millis(20)).unwrap().id,
            4
        );
    }

    #[test]
    fn coop_deregister_process_removes_bookkeeping() {
        let topo = Topology::single_node(1);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(10));
        p.register_process(0);
        p.register_process(1);
        p.deregister_process(0);
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 1, None), now);
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 1);
        // Registering twice is a no-op.
        p.register_process(1);
        assert_eq!(p.ready_count(), 0);
    }

    #[test]
    fn coop_process_domain_restricts_picks() {
        let topo = Topology::new(4, 2);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(20));
        p.set_process_domain(0, Some(vec![2, 3])); // pin to node 1
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 0, None), now);
        assert!(p.pick(&topo, 0, now).is_none(), "core 0 is outside the pin");
        assert_eq!(p.pick(&topo, 3, now).unwrap().id, 1);
    }

    #[test]
    fn classify_placement_kinds() {
        let topo = Topology::new(4, 2);
        assert_eq!(
            classify_placement(&topo, Some(1), 1),
            PlacementKind::Affinity
        );
        assert_eq!(classify_placement(&topo, Some(0), 1), PlacementKind::Numa);
        assert_eq!(classify_placement(&topo, Some(0), 3), PlacementKind::Remote);
        assert_eq!(classify_placement(&topo, None, 2), PlacementKind::Remote);
    }

    #[test]
    fn enqueue_for_unregistered_process_registers_it() {
        let topo = Topology::single_node(1);
        let mut p = CoopPolicy::new(topo.clone(), Duration::from_millis(10));
        let now = Instant::now();
        p.enqueue(&topo, meta(1, 7, None), now);
        assert!(p.has_ready());
        assert_eq!(p.pick(&topo, 0, now).unwrap().id, 1);
    }
}
