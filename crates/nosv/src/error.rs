//! Error types for the nOS-V substrate.

use std::fmt;

/// Errors reported by the scheduler substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NosvError {
    /// The referenced process domain is not registered with the scheduler.
    UnknownProcess(u32),
    /// The referenced task is not registered with the scheduler.
    UnknownTask(u64),
    /// The operation requires the calling thread to be attached, but it is not.
    NotAttached,
    /// The scheduler has been shut down and no longer accepts the operation.
    ShutDown,
    /// An invalid configuration value was supplied.
    InvalidConfig(String),
}

impl fmt::Display for NosvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NosvError::UnknownProcess(p) => write!(f, "unknown process domain {p}"),
            NosvError::UnknownTask(t) => write!(f, "unknown task {t}"),
            NosvError::NotAttached => write!(f, "calling thread is not attached to nOS-V"),
            NosvError::ShutDown => write!(f, "scheduler instance has been shut down"),
            NosvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for NosvError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, NosvError>;
