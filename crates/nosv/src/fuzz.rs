//! Deterministic, seeded schedule fuzzing of the real [`Scheduler`].
//!
//! The fuzzer drives a single-threaded [`Scheduler`] through a generated sequence of
//! [`FuzzOp`]s — the scheduler's *non-blocking* entry points only (`submit`,
//! `submit_locked`, `detach`, `set_process_domain`, `deregister_process`, `kill_process`,
//! `watchdog_scan`, `shutdown`; the blocking points `attach`/`pause`/`yield_now`/`waitfor`
//! would park the fuzzing thread in `wait_grant` forever) — and checks a set of invariants
//! after **every** op:
//!
//! * **No double grant** — at most one running task per core ([`Violation::DoubleGrant`]).
//! * **Gauge consistency** — the busy-core gauge equals the number of running tasks
//!   ([`Violation::BusyGaugeMismatch`]).
//! * **Domains respected** — a task newly granted while its process is pinned must land
//!   inside the pinned core set ([`Violation::DomainViolation`]). Only *new* grants are
//!   checked: a pin does not preempt tasks already running outside it (domains are
//!   evaluated at scheduling points, paper §4.1).
//! * **No ghost grants** — a task must never be granted after its process was
//!   deregistered ([`Violation::GhostGrant`]).
//! * **No lost task** — at quiescence (all running work detached, queues drained) every
//!   task the model still expects to run must have been granted at least once
//!   ([`Violation::LostTask`]), and the lock-free ready gauge must have reconciled to
//!   zero ([`Violation::ReadyGaugeStuck`]).
//! * **No orphaned waiter** — at quiescence no task of a dead (deregistered or killed)
//!   process may be left parked: ungranted, unreleased, with nothing that will ever wake
//!   it ([`Violation::OrphanedWaiter`]).
//!
//! Sequences come from a seeded [`StdRng`], so every failure is reproducible from
//! `(config, seed)` alone, and [`shrink`] reduces a failing sequence to a (locally)
//! minimal one with a ddmin-style greedy pass. [`Mutation::DropSubmit`] injects a
//! lost-submit bug into an otherwise healthy run — the canary that proves the harness
//! actually catches lost tasks.
//!
//! The interleavings explored here are exactly the record/replay choice points of
//! [`crate::sched_trace`]: submits racing intake drains (`submit` vs `submit_locked`),
//! grants delayed behind `Detach`-driven dispatches, domain changes and deregistrations
//! between placement decisions, and shutdown cutting through all of them.
//!
//! [`Scheduler`]: crate::scheduler::Scheduler

use crate::config::NosvConfig;
use crate::process::ProcessId;
use crate::scheduler::Scheduler;
use crate::task::{TaskId, TaskRef, TaskState};
use crate::topology::{CoreId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::time::Duration;

/// Shape of a fuzzed scheduler instance and op sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Number of virtual cores.
    pub cores: usize,
    /// Number of NUMA nodes (cores are split evenly).
    pub nodes: usize,
    /// Number of process domains registered up front.
    pub processes: usize,
    /// Number of task slots; slot `i` belongs to process `i % processes`.
    pub slots: usize,
    /// The per-process quantum / aging-valve window.
    pub quantum: Duration,
    /// Ops per generated sequence.
    pub ops: usize,
    /// Whether [`FuzzOp::Shutdown`] may be generated (ops after it keep running, which
    /// exercises the shutdown-vs-submit interleavings).
    pub allow_shutdown: bool,
    /// Bias generation towards domain pin/unpin churn.
    pub pin_bias: bool,
    /// Install the per-NUMA-node sharded ready-queue backing
    /// ([`crate::config::PolicyKind::CoopSharded`]) instead of the flat one. Pick
    /// sequences are specified to be identical, so every oracle holds unchanged.
    pub sharded: bool,
    /// Install the split-lock scheduler ([`crate::config::PolicyKind::CoopSplit`]): one
    /// dispatch lock and one policy instance per NUMA node, with cross-shard stealing
    /// and the cross-shard aging valve arbitrating between them. The fuzz harness is
    /// serial, so every `try_lock` probe succeeds and the recorded schedules replay
    /// deterministically through the simulator's split path. Takes precedence over
    /// `sharded` when both are set.
    pub split: bool,
}

impl FuzzConfig {
    /// The baseline configuration: 4 cores / 2 nodes, 3 processes, 8 slots, a quantum far
    /// longer than any run (the valve never fires), no shutdown.
    pub fn base() -> Self {
        FuzzConfig {
            cores: 4,
            nodes: 2,
            processes: 3,
            slots: 8,
            quantum: Duration::from_millis(20),
            ops: 64,
            allow_shutdown: false,
            pin_bias: false,
            sharded: false,
            split: false,
        }
    }

    /// Oversubscribed single-core variant with a 1 ns quantum: every pop crosses the
    /// quantum and aging-valve deadlines, exercising the anti-starvation tiers.
    pub fn valve() -> Self {
        FuzzConfig {
            cores: 1,
            nodes: 1,
            slots: 12,
            quantum: Duration::from_nanos(1),
            ..Self::base()
        }
    }

    /// Like [`FuzzConfig::base`] but [`FuzzOp::Shutdown`] can appear mid-sequence, with
    /// submits and domain changes continuing after it.
    pub fn shutdown_biased() -> Self {
        FuzzConfig {
            allow_shutdown: true,
            ..Self::base()
        }
    }

    /// Domain-churn variant: placement pins and unpins dominate the op mix.
    pub fn domain_heavy() -> Self {
        FuzzConfig {
            pin_bias: true,
            ..Self::base()
        }
    }

    /// [`FuzzConfig::base`] over the per-node sharded ready queues, with shutdown
    /// interleavings allowed: same invariants, sharded storage.
    pub fn sharded() -> Self {
        FuzzConfig {
            sharded: true,
            allow_shutdown: true,
            ..Self::base()
        }
    }

    /// Sharded variant of [`FuzzConfig::valve`] — but on a 4-core / 2-node topology so
    /// the aging valve's cross-shard scan (not just the trivial single-shard case) runs
    /// on every pop.
    pub fn sharded_valve() -> Self {
        FuzzConfig {
            sharded: true,
            slots: 12,
            quantum: Duration::from_nanos(1),
            ..Self::base()
        }
    }

    /// [`FuzzConfig::base`] over the split-lock scheduler (two dispatch locks on the
    /// 4-core / 2-node topology) with shutdown interleavings allowed: cross-shard
    /// steals, the multi-shard teardown paths, and the shard-routing of every
    /// scheduling point run under the full oracle set.
    pub fn split_lock() -> Self {
        FuzzConfig {
            split: true,
            allow_shutdown: true,
            ..Self::base()
        }
    }

    /// Split-lock variant of [`FuzzConfig::sharded_valve`]: a 1 ns quantum makes the
    /// *cross-shard* aging valve fire on essentially every pop, so the valve tier and
    /// the steal tier compete constantly.
    pub fn split_valve() -> Self {
        FuzzConfig {
            split: true,
            slots: 12,
            quantum: Duration::from_nanos(1),
            ..Self::base()
        }
    }
}

/// One fuzzed scheduler operation. Slots index the harness's task table (slot `i` maps to
/// process `i % processes`); process and node indices are taken modulo the configured
/// counts, so any `usize` is valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// Submit the slot's task via the lock-free intake path (creating the task first if
    /// the slot is empty).
    Submit {
        /// Task-slot index.
        slot: usize,
    },
    /// Submit the slot's task via the pre-intake locked path.
    SubmitLocked {
        /// Task-slot index.
        slot: usize,
    },
    /// Detach the slot's task (no-op on an empty slot).
    Detach {
        /// Task-slot index.
        slot: usize,
    },
    /// Pin a process to the cores of one NUMA node.
    PinNode {
        /// Process index (modulo the process count).
        proc_index: usize,
        /// NUMA node index (modulo the node count).
        node: usize,
    },
    /// Clear a process's placement domain.
    Unpin {
        /// Process index (modulo the process count).
        proc_index: usize,
    },
    /// Deregister a process; its queued tasks are released, running ones keep their cores.
    Deregister {
        /// Process index (modulo the process count).
        proc_index: usize,
    },
    /// Forcibly kill a process via [`Scheduler::kill_process`]: queued work reclaimed,
    /// running tasks evicted, waiters released.
    KillProcess {
        /// Process index (modulo the process count).
        proc_index: usize,
    },
    /// Run a zero-deadline [`Scheduler::watchdog_scan`] (flags every busy core once;
    /// report-only, so it must never perturb any other invariant).
    WatchdogScan,
    /// Shut the scheduler down mid-sequence. Later ops still execute against the
    /// shut-down scheduler.
    Shutdown,
}

impl fmt::Display for FuzzOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzOp::Submit { slot } => write!(f, "submit(slot {slot})"),
            FuzzOp::SubmitLocked { slot } => write!(f, "submit_locked(slot {slot})"),
            FuzzOp::Detach { slot } => write!(f, "detach(slot {slot})"),
            FuzzOp::PinNode { proc_index, node } => {
                write!(f, "pin(proc {proc_index} -> node {node})")
            }
            FuzzOp::Unpin { proc_index } => write!(f, "unpin(proc {proc_index})"),
            FuzzOp::Deregister { proc_index } => write!(f, "deregister(proc {proc_index})"),
            FuzzOp::KillProcess { proc_index } => write!(f, "kill(proc {proc_index})"),
            FuzzOp::WatchdogScan => write!(f, "watchdog_scan"),
            FuzzOp::Shutdown => write!(f, "shutdown"),
        }
    }
}

/// Generate a seeded op sequence for `cfg`. The same `(cfg, seed)` always yields the same
/// sequence (the RNG is the vendored deterministic xoshiro256++).
pub fn generate(cfg: &FuzzConfig, seed: u64) -> Vec<FuzzOp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w_pin: u32 = if cfg.pin_bias { 25 } else { 8 };
    let w_unpin: u32 = if cfg.pin_bias { 12 } else { 5 };
    let w_shutdown: u32 = if cfg.allow_shutdown { 4 } else { 0 };
    // Submit, SubmitLocked, Detach, PinNode, Unpin, Deregister, KillProcess,
    // WatchdogScan, Shutdown.
    let weights = [35u32, 10, 25, w_pin, w_unpin, 4, 3, 3, w_shutdown];
    let total: u32 = weights.iter().sum();
    (0..cfg.ops)
        .map(|_| {
            let mut roll = rng.gen_range(0..total);
            let mut which = 0usize;
            while roll >= weights[which] {
                roll -= weights[which];
                which += 1;
            }
            match which {
                0 => FuzzOp::Submit {
                    slot: rng.gen_range(0..cfg.slots),
                },
                1 => FuzzOp::SubmitLocked {
                    slot: rng.gen_range(0..cfg.slots),
                },
                2 => FuzzOp::Detach {
                    slot: rng.gen_range(0..cfg.slots),
                },
                3 => FuzzOp::PinNode {
                    proc_index: rng.gen_range(0..cfg.processes),
                    node: rng.gen_range(0..cfg.nodes),
                },
                4 => FuzzOp::Unpin {
                    proc_index: rng.gen_range(0..cfg.processes),
                },
                5 => FuzzOp::Deregister {
                    proc_index: rng.gen_range(0..cfg.processes),
                },
                6 => FuzzOp::KillProcess {
                    proc_index: rng.gen_range(0..cfg.processes),
                },
                7 => FuzzOp::WatchdogScan,
                _ => FuzzOp::Shutdown,
            }
        })
        .collect()
}

/// A bug deliberately injected into the execution, used to prove the harness detects the
/// corresponding invariant violation (a canary for the fuzzer itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Silently drop the `nth` (0-based) effective submit — and every later submit of the
    /// same slot: the model records the task as runnable but the real scheduler calls are
    /// skipped, a sticky "lost wake-up path" bug. Unless a later op detaches the slot or
    /// kills its process, the run must end with [`Violation::LostTask`].
    DropSubmit {
        /// Which effective submit starts the drop.
        nth: usize,
    },
}

/// An invariant violation detected by the fuzzing harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two live tasks report the same current core while running.
    DoubleGrant {
        /// The shared core.
        core: CoreId,
        /// The two conflicting tasks.
        tasks: (TaskId, TaskId),
    },
    /// The busy-core gauge disagrees with the number of running tasks.
    BusyGaugeMismatch {
        /// Running tasks counted by the model.
        running: usize,
        /// `Scheduler::busy_cores()`.
        busy: usize,
    },
    /// A task was granted a core outside its process's pinned domain.
    DomainViolation {
        /// The offending task.
        task: TaskId,
        /// The out-of-domain core it was granted.
        core: CoreId,
    },
    /// A task was granted after its process was deregistered.
    GhostGrant {
        /// The offending task.
        task: TaskId,
        /// Its (deregistered) process.
        process: ProcessId,
    },
    /// A submitted task was never granted even though the scheduler fully drained.
    LostTask {
        /// The task's slot in the harness.
        slot: usize,
        /// The lost task.
        task: TaskId,
    },
    /// The lock-free ready gauge failed to reconcile to zero at quiescence.
    ReadyGaugeStuck {
        /// The stuck gauge value.
        ready: usize,
    },
    /// A task of a dead (deregistered or killed) process is still parked at quiescence:
    /// neither granted, nor released, nor finished — a `wait_grant` on it would hang
    /// forever even though nothing will ever schedule it.
    OrphanedWaiter {
        /// The task's slot in the harness.
        slot: usize,
        /// The orphaned task.
        task: TaskId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DoubleGrant { core, tasks } => {
                write!(f, "double grant: tasks {:?} share core {core}", tasks)
            }
            Violation::BusyGaugeMismatch { running, busy } => {
                write!(
                    f,
                    "gauge mismatch: {running} running but busy_cores()={busy}"
                )
            }
            Violation::DomainViolation { task, core } => {
                write!(
                    f,
                    "domain violation: task {task:?} granted core {core} outside pin"
                )
            }
            Violation::GhostGrant { task, process } => {
                write!(
                    f,
                    "ghost grant: task {task:?} of deregistered process {process}"
                )
            }
            Violation::LostTask { slot, task } => {
                write!(
                    f,
                    "lost task: slot {slot} ({task:?}) submitted but never granted"
                )
            }
            Violation::ReadyGaugeStuck { ready } => {
                write!(f, "ready gauge stuck at {ready} after quiescence")
            }
            Violation::OrphanedWaiter { slot, task } => {
                write!(
                    f,
                    "orphaned waiter: slot {slot} ({task:?}) of a dead process is still parked"
                )
            }
        }
    }
}

/// A failed fuzz run: the violation and where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzFailure {
    /// The detected violation.
    pub violation: Violation,
    /// Index of the op after which the violation was detected, or `None` when it was
    /// detected during the final quiescence drain.
    pub op_index: Option<usize>,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op_index {
            Some(i) => write!(f, "after op {i}: {}", self.violation),
            None => write!(f, "at quiescence: {}", self.violation),
        }
    }
}

/// Summary of a green fuzz run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzStats {
    /// Ops executed.
    pub ops: usize,
    /// Total grants performed by the scheduler (including the quiescence drain).
    pub grants: u64,
    /// Total submits reaching the scheduler.
    pub submits: u64,
}

/// The single-threaded fuzzing harness: one real scheduler plus the reference model the
/// invariants are checked against.
struct Harness {
    sched: Scheduler,
    topo: Topology,
    pids: Vec<ProcessId>,
    alive: Vec<bool>,
    /// Task slots; `None` = empty (never created, or detached).
    slots: Vec<Option<TaskRef>>,
    /// Grant counter observed per slot at the last check — a slot whose counter advanced
    /// was *newly* granted and gets the domain/liveness checks.
    last_grants: Vec<u64>,
    /// Slots the model expects to be granted eventually: submitted while their process was
    /// alive and the scheduler up, not yet granted, not detached.
    pending: HashSet<usize>,
    /// Model view of each process's pinned cores.
    domains: Vec<Option<Vec<CoreId>>>,
    shutdown_done: bool,
    /// Effective submits so far (for [`Mutation::DropSubmit`]).
    submit_no: usize,
    /// Slots whose real submits are being dropped by the active mutation.
    dropped_slots: HashSet<usize>,
}

impl Harness {
    fn new(cfg: &FuzzConfig, sched: Scheduler) -> Self {
        let pids = (0..cfg.processes)
            .map(|i| sched.register_process(format!("fuzz-p{i}")))
            .collect();
        Harness {
            sched,
            topo: Topology::new(cfg.cores, cfg.nodes),
            pids,
            alive: vec![true; cfg.processes],
            slots: vec![None; cfg.slots],
            last_grants: vec![0; cfg.slots],
            pending: HashSet::new(),
            domains: vec![None; cfg.processes],
            shutdown_done: false,
            submit_no: 0,
            dropped_slots: HashSet::new(),
        }
    }

    fn proc_of_slot(&self, slot: usize) -> usize {
        slot % self.pids.len()
    }

    /// Apply one op to the real scheduler and mirror it in the model.
    fn apply(&mut self, op: FuzzOp, mutation: Option<Mutation>, stats: &mut FuzzStats) {
        match op {
            FuzzOp::Submit { slot } => self.do_submit(slot, false, mutation, stats),
            FuzzOp::SubmitLocked { slot } => self.do_submit(slot, true, mutation, stats),
            FuzzOp::Detach { slot } => {
                if let Some(t) = self.slots[slot].take() {
                    self.sched.detach(&t);
                    self.pending.remove(&slot);
                    self.last_grants[slot] = 0;
                }
            }
            FuzzOp::PinNode { proc_index, node } => {
                let p = proc_index % self.pids.len();
                let node = node % self.topo.num_numa_nodes();
                let cores: Vec<CoreId> = self.topo.cores_in_node(node).collect();
                self.sched
                    .set_process_domain(self.pids[p], Some(cores.clone()));
                if self.alive[p] {
                    self.domains[p] = Some(cores);
                }
            }
            FuzzOp::Unpin { proc_index } => {
                let p = proc_index % self.pids.len();
                self.sched.set_process_domain(self.pids[p], None);
                if self.alive[p] {
                    self.domains[p] = None;
                }
            }
            FuzzOp::Deregister { proc_index } => {
                let p = proc_index % self.pids.len();
                self.sched.deregister_process(self.pids[p]);
                self.alive[p] = false;
                // Queued tasks of the process were released: the model no longer expects
                // them to be granted (running ones keep their cores and were never
                // pending).
                let n = self.pids.len();
                self.pending.retain(|&slot| slot % n != p);
            }
            FuzzOp::KillProcess { proc_index } => {
                let p = proc_index % self.pids.len();
                self.sched.kill_process(self.pids[p]);
                self.alive[p] = false;
                // Queued work was reclaimed and running tasks evicted: the process owes
                // nothing to the model any more.
                let n = self.pids.len();
                self.pending.retain(|&slot| slot % n != p);
            }
            FuzzOp::WatchdogScan => {
                // Report-only: flags every currently busy core (zero deadline) and must
                // not change any schedule-visible state.
                let _ = self.sched.watchdog_scan(Duration::ZERO);
            }
            FuzzOp::Shutdown => {
                self.sched.shutdown();
                self.shutdown_done = true;
                // Everything waiting was released from scheduler control.
                self.pending.clear();
            }
        }
    }

    fn do_submit(
        &mut self,
        slot: usize,
        locked: bool,
        mutation: Option<Mutation>,
        stats: &mut FuzzStats,
    ) {
        let p = self.proc_of_slot(slot);
        if self.slots[slot].is_none() {
            // (Re)create the slot's task; fails (and the op becomes a no-op) once the
            // process is gone or the scheduler is shut down.
            match self.sched.create_task(self.pids[p], None) {
                Ok(t) => {
                    self.slots[slot] = Some(t);
                    self.last_grants[slot] = 0;
                }
                Err(_) => return,
            }
        }
        let t = self.slots[slot].as_ref().unwrap().clone();
        // Will this submit make the task runnable (so the scheduler *owes* it a grant)?
        let effective = !self.shutdown_done
            && self.alive[p]
            && t.state() != TaskState::Running
            && !self.pending.contains(&slot);
        if effective {
            if matches!(mutation, Some(Mutation::DropSubmit { nth }) if nth == self.submit_no) {
                self.dropped_slots.insert(slot);
            }
            self.submit_no += 1;
            self.pending.insert(slot);
        }
        if self.dropped_slots.contains(&slot) {
            return; // the injected bug: model updated, real submit(s) skipped
        }
        stats.submits += 1;
        if locked {
            self.sched.submit_locked(&t);
        } else {
            self.sched.submit(&t);
        }
    }

    /// Check every per-step invariant against the current scheduler state.
    fn check(&mut self) -> Result<(), Violation> {
        let mut core_owner: HashMap<CoreId, TaskId> = HashMap::new();
        let mut running = 0usize;
        for slot in 0..self.slots.len() {
            let Some(t) = self.slots[slot].as_ref() else {
                continue;
            };
            let grants = t.stats.grants.load(std::sync::atomic::Ordering::SeqCst);
            let newly_granted = grants > self.last_grants[slot];
            self.last_grants[slot] = grants;
            if t.state() == TaskState::Running {
                let Some(core) = t.current_core() else {
                    continue;
                };
                running += 1;
                if let Some(&other) = core_owner.get(&core) {
                    return Err(Violation::DoubleGrant {
                        core,
                        tasks: (other, t.id()),
                    });
                }
                core_owner.insert(core, t.id());
                let p = self.proc_of_slot(slot);
                if newly_granted {
                    self.pending.remove(&slot);
                    if !self.alive[p] {
                        return Err(Violation::GhostGrant {
                            task: t.id(),
                            process: self.pids[p],
                        });
                    }
                    if let Some(domain) = &self.domains[p] {
                        if !domain.contains(&core) {
                            return Err(Violation::DomainViolation { task: t.id(), core });
                        }
                    }
                }
            }
        }
        let busy = self.sched.busy_cores();
        if running != busy {
            return Err(Violation::BusyGaugeMismatch { running, busy });
        }
        Ok(())
    }

    /// Drain the scheduler to quiescence: detach running tasks (each release dispatches
    /// queued work) until nothing runs, then verify nothing was lost.
    ///
    /// A bounded number of "flusher" rounds forces extra drain + dispatch passes: stale
    /// queue entries (tasks detached while queued) can leave the ready gauge nonzero with
    /// every core idle, and an armed [`crate::faults::FaultSite::DelayIntakeDrain`] can
    /// park the sequence's final submits in the intake stack past the last organic
    /// scheduling point. Fault fires are capped by their plan, so the rounds converge; a
    /// genuinely lost task (e.g. [`Mutation::DropSubmit`]) never reached the scheduler at
    /// all and stays lost no matter how many passes run.
    fn quiesce(&mut self) -> Result<(), Violation> {
        for round in 0..8 {
            loop {
                self.check()?;
                let running: Vec<usize> = (0..self.slots.len())
                    .filter(|&s| {
                        self.slots[s]
                            .as_ref()
                            .is_some_and(|t| t.state() == TaskState::Running)
                    })
                    .collect();
                if running.is_empty() {
                    break;
                }
                for slot in running {
                    if let Some(t) = self.slots[slot].take() {
                        self.sched.detach(&t);
                        self.pending.remove(&slot);
                    }
                }
            }
            // Flush again while the scheduler owes a grant (pending) *or* the ready gauge
            // has not reconciled — a fault-delayed drain can strand a stale intake entry
            // (its task already detached) that only another drain pass can pop.
            let need_flush = !self.shutdown_done
                && (round == 0 || !self.pending.is_empty() || self.sched.ready_count() != 0);
            if !need_flush {
                break;
            }
            // The throwaway "flusher" task's submit + detach are two scheduling points
            // that pop stale entries and drain any fault-delayed intake.
            let Some(p) = (0..self.pids.len()).find(|&p| self.alive[p]) else {
                break;
            };
            let Ok(t) = self.sched.create_task(self.pids[p], None) else {
                break;
            };
            self.sched.submit(&t);
            self.sched.detach(&t);
        }
        if let Some(&slot) = self.pending.iter().min() {
            let task = self.slots[slot]
                .as_ref()
                .map(|t| t.id())
                .unwrap_or(TaskId::MAX);
            return Err(Violation::LostTask { slot, task });
        }
        let ready = self.sched.ready_count();
        if ready != 0 {
            return Err(Violation::ReadyGaugeStuck { ready });
        }
        // Degradation contract: once a process is dead, none of its tasks may be left in
        // a parked state (queued or blocked, ungranted, unreleased) — any `wait_grant` on
        // such a task would hang forever with nothing left to wake it.
        for slot in 0..self.slots.len() {
            let Some(t) = self.slots[slot].as_ref() else {
                continue;
            };
            if self.alive[self.proc_of_slot(slot)] {
                continue;
            }
            let state = t.state();
            let parked = matches!(state, TaskState::Ready | TaskState::Blocked) && {
                let g = t.grant.lock();
                g.granted.is_none() && !g.released
            };
            if parked {
                return Err(Violation::OrphanedWaiter { slot, task: t.id() });
            }
        }
        Ok(())
    }
}

fn build_scheduler(cfg: &FuzzConfig) -> Scheduler {
    let mut config =
        NosvConfig::with_topology(Topology::new(cfg.cores, cfg.nodes)).quantum(cfg.quantum);
    if cfg.split {
        config = config.policy(crate::config::PolicyKind::CoopSplit);
    } else if cfg.sharded {
        config = config.policy(crate::config::PolicyKind::CoopSharded);
    }
    Scheduler::new(config)
}

fn run(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
    mutation: Option<Mutation>,
    sched: Scheduler,
) -> Result<FuzzStats, FuzzFailure> {
    let mut h = Harness::new(cfg, sched);
    let mut stats = FuzzStats::default();
    for (i, &op) in ops.iter().enumerate() {
        h.apply(op, mutation, &mut stats);
        stats.ops += 1;
        if let Err(violation) = h.check() {
            return Err(FuzzFailure {
                violation,
                op_index: Some(i),
            });
        }
    }
    if let Err(violation) = h.quiesce() {
        return Err(FuzzFailure {
            violation,
            op_index: None,
        });
    }
    stats.grants = h.sched.metrics().snapshot().grants;
    Ok(stats)
}

/// Execute an op sequence against a fresh scheduler, checking every invariant after each
/// op and draining to quiescence at the end.
pub fn execute(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
    mutation: Option<Mutation>,
) -> Result<FuzzStats, FuzzFailure> {
    run(cfg, ops, mutation, build_scheduler(cfg))
}

/// Like [`execute`], but with a trace recorder installed: returns the run result together
/// with the recorded schedule, ready for the simulator's replay harness.
#[cfg(feature = "sched-trace")]
pub fn execute_traced(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
) -> (
    Result<FuzzStats, FuzzFailure>,
    crate::sched_trace::TraceMeta,
    Vec<crate::sched_trace::TraceEntry>,
) {
    let mut sched = build_scheduler(cfg);
    let rec = sched.install_tracer();
    let result = run(cfg, ops, None, sched);
    (result, rec.meta().clone(), rec.snapshot())
}

/// Like [`execute`], but with `plan` installed into the fuzzed scheduler (feature
/// `fault-inject`): scheduler-level fault sites fire during the run and the harness
/// requires every invariant to hold anyway. Returns the run result together with the
/// shared fault state, so callers can assert on what actually fired.
#[cfg(feature = "fault-inject")]
pub fn execute_faulted(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
    plan: &crate::faults::FaultPlan,
) -> (
    Result<FuzzStats, FuzzFailure>,
    std::sync::Arc<crate::faults::FaultState>,
) {
    let sched = build_scheduler(cfg);
    let state = sched.install_faults(plan);
    (run(cfg, ops, None, sched), state)
}

/// [`execute_faulted`] with a trace recorder installed as well (features `fault-inject`
/// and `sched-trace`): the faulty run's schedule comes back ready for the simulator's
/// replay harness. An injected fault's *effects* are ordinary trace events, so a faulty
/// run must replay divergence-free exactly like a clean one.
#[cfg(all(feature = "fault-inject", feature = "sched-trace"))]
pub fn execute_faulted_traced(
    cfg: &FuzzConfig,
    ops: &[FuzzOp],
    plan: &crate::faults::FaultPlan,
) -> (
    Result<FuzzStats, FuzzFailure>,
    std::sync::Arc<crate::faults::FaultState>,
    crate::sched_trace::TraceMeta,
    Vec<crate::sched_trace::TraceEntry>,
) {
    let mut sched = build_scheduler(cfg);
    let rec = sched.install_tracer();
    let state = sched.install_faults(plan);
    let result = run(cfg, ops, None, sched);
    (result, state, rec.meta().clone(), rec.snapshot())
}

/// The fault plan the faulted fuzz sweeps arm: only sites the scheduler must *absorb*
/// without violating any invariant — duplicated wakeups (redundant deliveries), a bounded
/// number of delayed intake drains (recovered at later scheduling points), and one
/// widened shutdown race window. [`crate::faults::FaultSite::DropWakeup`] is deliberately
/// absent: a dropped wakeup genuinely loses the task unless the submitter retries, which
/// is the chaos harness's canary, not an invariant the scheduler can hold on its own.
#[cfg(feature = "fault-inject")]
pub fn absorbable_fault_plan(seed: u64) -> crate::faults::FaultPlan {
    use crate::faults::{FaultPlan, FaultSite, FaultSpec};
    FaultPlan::new(seed)
        .arm(FaultSpec::new(FaultSite::DuplicateWakeup).one_in(3))
        .arm(
            FaultSpec::new(FaultSite::DelayIntakeDrain)
                .one_in(5)
                .max_fires(3),
        )
        .arm(
            FaultSpec::new(FaultSite::ShutdownRace)
                .one_in(1)
                .max_fires(1)
                .stall(Duration::from_millis(1)),
        )
}

/// Greedily reduce a failing op sequence to a locally minimal one (ddmin-style): try
/// removing exponentially shrinking chunks, keeping any removal under which the sequence
/// still fails. Returns `ops` unchanged if it does not fail in the first place.
pub fn shrink(cfg: &FuzzConfig, ops: &[FuzzOp], mutation: Option<Mutation>) -> Vec<FuzzOp> {
    let fails = |candidate: &[FuzzOp]| execute(cfg, candidate, mutation).is_err();
    let mut best = ops.to_vec();
    if !fails(&best) {
        return best;
    }
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.drain(i..(i + chunk).min(candidate.len()));
            if fails(&candidate) {
                best = candidate;
                progressed = true;
            } else {
                i += chunk;
            }
        }
        if chunk > 1 {
            chunk = (chunk / 2).max(1);
        } else if !progressed {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = FuzzConfig::base();
        assert_eq!(generate(&cfg, 42), generate(&cfg, 42));
        assert_ne!(generate(&cfg, 42), generate(&cfg, 43));
        assert_eq!(generate(&cfg, 7).len(), cfg.ops);
    }

    #[test]
    fn seeded_runs_hold_invariants() {
        for cfg in [
            FuzzConfig::base(),
            FuzzConfig::valve(),
            FuzzConfig::shutdown_biased(),
            FuzzConfig::domain_heavy(),
            FuzzConfig::sharded(),
            FuzzConfig::sharded_valve(),
            FuzzConfig::split_lock(),
            FuzzConfig::split_valve(),
        ] {
            for seed in 0..8 {
                let ops = generate(&cfg, seed);
                let stats = execute(&cfg, &ops, None)
                    .unwrap_or_else(|f| panic!("seed {seed} failed: {f} (cfg {cfg:?})"));
                assert_eq!(stats.ops, ops.len());
            }
        }
    }

    /// Keep only the ops that cannot heal a dropped submit (a later detach, deregister or
    /// shutdown legitimately cancels the model's claim on the slot).
    fn without_healing_ops(ops: Vec<FuzzOp>) -> Vec<FuzzOp> {
        ops.into_iter()
            .filter(|op| {
                matches!(
                    op,
                    FuzzOp::Submit { .. }
                        | FuzzOp::SubmitLocked { .. }
                        | FuzzOp::PinNode { .. }
                        | FuzzOp::Unpin { .. }
                )
            })
            .collect()
    }

    #[test]
    fn lost_submit_canary_is_caught() {
        // Drop the first effective submit of a healthy sequence: the harness must report
        // the task as lost (proof the LostTask oracle has teeth).
        let cfg = FuzzConfig::base();
        let ops = without_healing_ops(generate(&cfg, 1));
        assert!(ops.iter().any(|o| matches!(o, FuzzOp::Submit { .. })));
        let failure = execute(&cfg, &ops, Some(Mutation::DropSubmit { nth: 0 }))
            .expect_err("dropped submit must be detected");
        assert!(
            matches!(failure.violation, Violation::LostTask { .. }),
            "expected LostTask, got {failure}"
        );
    }

    #[test]
    fn submit_locked_counterexample_shrinks() {
        // The deregister-then-submit_locked interleaving that exposed the missing
        // process-liveness check in `submit_locked` (a Created task of a purged process
        // was granted / resurrected the process in the quantum rotation). With the fix
        // the sequence is green; the sequence is pinned here as a regression.
        let cfg = FuzzConfig::base();
        let ops = vec![
            FuzzOp::Submit { slot: 0 },
            FuzzOp::Detach { slot: 0 },
            FuzzOp::Deregister { proc_index: 0 },
            FuzzOp::SubmitLocked { slot: 0 },
            FuzzOp::Submit { slot: 1 },
            FuzzOp::Detach { slot: 1 },
        ];
        execute(&cfg, &ops, None).unwrap_or_else(|f| panic!("regression: {f}"));
    }

    #[test]
    fn shrinking_minimises_the_canary() {
        let cfg = FuzzConfig::base();
        let ops = without_healing_ops(generate(&cfg, 3));
        let mutation = Some(Mutation::DropSubmit { nth: 0 });
        assert!(execute(&cfg, &ops, mutation).is_err());
        let minimal = shrink(&cfg, &ops, mutation);
        // The minimal reproduction of "the first submit is dropped" is a single submit.
        assert_eq!(
            minimal.len(),
            1,
            "expected a 1-op counterexample: {minimal:?}"
        );
        assert!(execute(&cfg, &minimal, mutation).is_err());
    }

    /// Every permutation of `ops`, via Heap's algorithm.
    fn permutations(ops: &[FuzzOp]) -> Vec<Vec<FuzzOp>> {
        fn heap(k: usize, arr: &mut Vec<FuzzOp>, out: &mut Vec<Vec<FuzzOp>>) {
            if k <= 1 {
                out.push(arr.clone());
                return;
            }
            for i in 0..k {
                heap(k - 1, arr, out);
                if k % 2 == 0 {
                    arr.swap(i, k - 1);
                } else {
                    arr.swap(0, k - 1);
                }
            }
        }
        let mut arr = ops.to_vec();
        let mut out = Vec::new();
        let n = arr.len();
        heap(n, &mut arr, &mut out);
        out
    }

    #[test]
    fn deregister_kill_submit_permutations_leave_no_orphans() {
        // Property: ANY interleaving of process teardown (deregister / kill) with
        // submits, grants (implicit in submit) and detaches must end with no orphaned
        // waiter and no ghost grant. Exhaustive over all 720 orders of this multiset —
        // slots 0 and 3 belong to process 0, slot 1 to process 1 (base config has 3
        // processes).
        let cfg = FuzzConfig::base();
        let ops = [
            FuzzOp::Submit { slot: 0 },
            FuzzOp::SubmitLocked { slot: 3 },
            FuzzOp::Detach { slot: 0 },
            FuzzOp::Deregister { proc_index: 0 },
            FuzzOp::Submit { slot: 1 },
            FuzzOp::KillProcess { proc_index: 1 },
        ];
        for (i, perm) in permutations(&ops).into_iter().enumerate() {
            execute(&cfg, &perm, None).unwrap_or_else(|f| {
                let listing: Vec<String> = perm.iter().map(|o| o.to_string()).collect();
                panic!("permutation {i} [{}] failed: {f}", listing.join(", "))
            });
        }
    }

    #[test]
    fn killed_process_slots_are_inert_afterwards() {
        // Kill with work queued and running, then keep poking the dead process's slots:
        // every later op must be a no-op and quiescence must stay clean.
        let cfg = FuzzConfig::base();
        let ops = [
            FuzzOp::Submit { slot: 0 },
            FuzzOp::Submit { slot: 3 },
            FuzzOp::Submit { slot: 6 },
            FuzzOp::KillProcess { proc_index: 0 },
            FuzzOp::Submit { slot: 0 },
            FuzzOp::SubmitLocked { slot: 3 },
            FuzzOp::WatchdogScan,
            FuzzOp::Detach { slot: 6 },
        ];
        execute(&cfg, &ops, None).unwrap_or_else(|f| panic!("kill regression: {f}"));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn faulted_seeded_runs_hold_invariants() {
        // Every invariant must hold with the absorbable fault sites armed — and the plan
        // must actually fire across the sweep, or the test proves nothing.
        let mut fired = 0u64;
        for cfg in [
            FuzzConfig::base(),
            FuzzConfig::valve(),
            FuzzConfig::shutdown_biased(),
            FuzzConfig::sharded_valve(),
            FuzzConfig::split_valve(),
        ] {
            for seed in 0..6 {
                let ops = generate(&cfg, seed);
                let (result, state) = execute_faulted(&cfg, &ops, &absorbable_fault_plan(seed));
                result.unwrap_or_else(|f| panic!("faulted seed {seed} failed: {f} (cfg {cfg:?})"));
                fired += state.total_fires();
            }
        }
        assert!(
            fired > 0,
            "the absorbable plan never fired across the sweep"
        );
    }

    #[test]
    fn shutdown_interleavings_hold_invariants() {
        // Force shutdown at every cut point of a fixed sequence, with submits and domain
        // changes continuing after it.
        let cfg = FuzzConfig::shutdown_biased();
        let base_ops = generate(&cfg, 11);
        for cut in 0..base_ops.len() {
            let mut ops = base_ops.clone();
            ops.insert(cut, FuzzOp::Shutdown);
            execute(&cfg, &ops, None).unwrap_or_else(|f| panic!("shutdown at {cut} failed: {f}"));
        }
    }
}
