//! Public instance handle and the named instance registry.
//!
//! [`NosvInstance`] is the equivalent of "a process connected to the nOS-V shared memory
//! segment". `NosvInstance::new` creates a fresh scheduler; [`NosvInstance::connect`] joins
//! (or lazily creates) a *named* scheduler so that independently initialised components —
//! the stand-in for separate OS processes — coordinate through the same centralized
//! scheduler, exactly like nOS-V processes attaching to the same shm segment (§2.3, §4.3.3).

use crate::config::NosvConfig;
use crate::error::Result;
use crate::metrics::MetricsSnapshot;
use crate::process::ProcessId;
use crate::scheduler::Scheduler;
use crate::task::{TaskRef, TaskState, WaitOutcome};
use crate::topology::CoreId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Global registry of named scheduler instances (the `shm_open`-by-name analog).
static REGISTRY: Mutex<Option<HashMap<String, Weak<Scheduler>>>> = Mutex::new(None);

/// A handle to a scheduler instance. Cheap to clone; all clones share the same scheduler.
#[derive(Clone, Debug)]
pub struct NosvInstance {
    sched: Arc<Scheduler>,
}

impl NosvInstance {
    /// Create a new private scheduler instance.
    pub fn new(config: NosvConfig) -> Self {
        NosvInstance {
            sched: Arc::new(Scheduler::new(config)),
        }
    }

    /// Connect to the named instance, creating it with `config` if it does not exist yet.
    ///
    /// This mimics how every process started with `USF_ENABLE` attaches to the same nOS-V
    /// shared memory segment at startup. Only processes of "the same user" can connect in
    /// the paper; here the name is the isolation boundary.
    pub fn connect(name: &str, config: NosvConfig) -> Self {
        let mut reg = REGISTRY.lock();
        let map = reg.get_or_insert_with(HashMap::new);
        if let Some(weak) = map.get(name) {
            if let Some(sched) = weak.upgrade() {
                // Never join a dead scheduler: `shutdown` deregisters the name, but a racy
                // or direct `Scheduler::shutdown` could still leave one behind.
                if !sched.is_shutdown() {
                    return NosvInstance { sched };
                }
            }
        }
        let inst = NosvInstance::new(config);
        map.insert(name.to_string(), Arc::downgrade(&inst.sched));
        inst
    }

    /// Remove a named instance from the registry (subsequent `connect`s create a fresh one).
    pub fn disconnect_name(name: &str) {
        let mut reg = REGISTRY.lock();
        if let Some(map) = reg.as_mut() {
            map.remove(name);
        }
    }

    /// Access the underlying scheduler (advanced use: custom policies, metrics, tests).
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Register a process domain.
    pub fn register_process(&self, name: impl Into<String>) -> ProcessId {
        self.sched.register_process(name)
    }

    /// Deregister a process domain.
    pub fn deregister_process(&self, process: ProcessId) {
        self.sched.deregister_process(process)
    }

    /// Forcibly reclaim a process domain mid-run (the `kill -9` analog): its queued work
    /// is dropped, its running tasks are evicted (their cores re-dispatched), and every
    /// thread parked on one of its tasks is released. Co-tenant processes are unaffected.
    pub fn kill_process(&self, process: ProcessId) -> crate::scheduler::KillReport {
        self.sched.kill_process(process)
    }

    /// Instantiate and install a [`crate::faults::FaultPlan`] into the shared scheduler,
    /// returning the [`crate::faults::FaultState`] harnesses assert against. Install-once
    /// per scheduler (see [`Scheduler::install_faults`]).
    #[cfg(feature = "fault-inject")]
    pub fn install_faults(
        &self,
        plan: &crate::faults::FaultPlan,
    ) -> Arc<crate::faults::FaultState> {
        self.sched.install_faults(plan)
    }

    /// Attach the calling OS thread as a worker with a new task in `process`.
    ///
    /// The call blocks until the scheduler grants the new task a core; from then on the
    /// thread must only block through the scheduling points exposed by the returned
    /// [`TaskHandle`] (or the higher-level USF primitives built on them).
    pub fn attach(&self, process: ProcessId, label: Option<&str>) -> TaskHandle {
        let task = self
            .sched
            .create_task(process, label.map(str::to_owned))
            .expect("attach: process must be registered and scheduler running");
        self.sched.attach(&task);
        TaskHandle {
            task,
            sched: Arc::clone(&self.sched),
        }
    }

    /// Fallible variant of [`NosvInstance::attach`].
    pub fn try_attach(&self, process: ProcessId, label: Option<&str>) -> Result<TaskHandle> {
        let task = self.sched.create_task(process, label.map(str::to_owned))?;
        self.sched.attach(&task);
        Ok(TaskHandle {
            task,
            sched: Arc::clone(&self.sched),
        })
    }

    /// Make a (blocked or new) task ready. This is `nosv_submit` and is what unblocking
    /// paths (e.g. `pthread_mutex_unlock`, Listing 1) call.
    pub fn submit(&self, task: &TaskRef) {
        self.sched.submit(task)
    }

    /// Snapshot of the scheduler metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.sched.metrics().snapshot()
    }

    /// One unified stats observation — counters, gauges and stage-boundary latency
    /// histograms (see [`crate::obs::StatsSnapshot`]).
    pub fn stats_snapshot(&self) -> crate::obs::StatsSnapshot {
        self.sched.stats_snapshot()
    }

    /// Start a background stats sampler with the given period (off unless called; see
    /// [`crate::obs::StatsSampler`]).
    pub fn start_sampler(&self, period: Duration) -> crate::obs::StatsSampler {
        self.sched.start_sampler(period)
    }

    /// Number of virtual cores managed by the instance.
    pub fn num_cores(&self) -> usize {
        self.sched.topology().num_cores()
    }

    /// Shut down the scheduler, releasing every task from scheduler control.
    ///
    /// If the instance was published under a name via [`NosvInstance::connect`], the name
    /// is removed from the registry so that a later `connect` with the same name creates a
    /// fresh scheduler instead of joining this dead one.
    pub fn shutdown(&self) {
        self.sched.shutdown();
        let mut reg = REGISTRY.lock();
        if let Some(map) = reg.as_mut() {
            map.retain(|_, weak| match weak.upgrade() {
                Some(sched) => !Arc::ptr_eq(&sched, &self.sched),
                None => false, // opportunistically drop entries whose scheduler is gone
            });
        }
    }
}

/// Handle owned by an attached worker thread for its own task.
///
/// All methods must be called from the thread that attached (the task's worker); the
/// exception is [`TaskHandle::task`], which hands out the [`TaskRef`] other threads use to
/// wake it via [`NosvInstance::submit`].
#[derive(Clone, Debug)]
pub struct TaskHandle {
    task: TaskRef,
    sched: Arc<Scheduler>,
}

impl TaskHandle {
    /// The task this handle controls.
    pub fn task(&self) -> &TaskRef {
        &self.task
    }

    /// The core currently granted to the task, if any.
    pub fn current_core(&self) -> Option<CoreId> {
        self.task.current_core()
    }

    /// Current lifecycle state of the task.
    pub fn state(&self) -> TaskState {
        self.task.state()
    }

    /// Block at a scheduling point until another thread submits this task (`nosv_pause`).
    pub fn pause(&self) {
        self.sched.pause(&self.task)
    }

    /// Make this task ready again (normally called by *other* threads through
    /// [`NosvInstance::submit`], but exposed here for symmetry).
    pub fn submit(&self) {
        self.sched.submit(&self.task)
    }

    /// Timed block (`nosv_waitfor`); wakes early if submitted.
    pub fn waitfor(&self, timeout: Duration) -> WaitOutcome {
        self.sched.waitfor(&self.task, timeout)
    }

    /// Voluntarily yield the core to another ready task. Returns whether a switch happened.
    pub fn yield_now(&self) -> bool {
        self.sched.yield_now(&self.task)
    }

    /// Detach the worker: the task finishes and its core is handed over (`nosv_detach`).
    pub fn detach(self) {
        self.sched.detach(&self.task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn attach_runs_up_to_core_count_concurrently() {
        let inst = NosvInstance::new(NosvConfig::with_cores(2));
        let pid = inst.register_process("p");
        let running = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..6 {
            let inst = inst.clone();
            let running = Arc::clone(&running);
            let max_seen = Arc::clone(&max_seen);
            handles.push(std::thread::spawn(move || {
                let h = inst.attach(pid, Some(&format!("w{i}")));
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                max_seen.fetch_max(now, Ordering::SeqCst);
                // Hold the core briefly, then finish.
                std::thread::sleep(Duration::from_millis(5));
                running.fetch_sub(1, Ordering::SeqCst);
                h.detach();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "never more running attached workers than cores (saw {})",
            max_seen.load(Ordering::SeqCst)
        );
        let m = inst.metrics();
        assert_eq!(m.attaches, 6);
        assert_eq!(m.detaches, 6);
    }

    #[test]
    fn pause_submit_round_trip_between_threads() {
        let inst = NosvInstance::new(NosvConfig::with_cores(1));
        let pid = inst.register_process("p");
        let inst2 = inst.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            let h = inst2.attach(pid, Some("sleeper"));
            tx.send(TaskRef::clone(h.task())).unwrap();
            h.pause(); // wait to be woken
            h.detach();
            42
        });
        let task = rx.recv().unwrap();
        // Wait for it to actually block, then wake it.
        while task.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        inst.submit(&task);
        assert_eq!(worker.join().unwrap(), 42);
    }

    #[test]
    fn waitfor_acts_as_sleep() {
        let inst = NosvInstance::new(NosvConfig::with_cores(1));
        let pid = inst.register_process("p");
        let h = inst.attach(pid, None);
        let start = std::time::Instant::now();
        let outcome = h.waitfor(Duration::from_millis(20));
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(15));
        h.detach();
    }

    #[test]
    fn connect_shares_scheduler_by_name() {
        let a = NosvInstance::connect("instance-test-shared", NosvConfig::with_cores(3));
        let b = NosvInstance::connect("instance-test-shared", NosvConfig::with_cores(7));
        // The second connect must join the first instance (3 cores), not create a new one.
        assert_eq!(a.num_cores(), 3);
        assert_eq!(b.num_cores(), 3);
        assert!(Arc::ptr_eq(a.scheduler(), b.scheduler()));
        NosvInstance::disconnect_name("instance-test-shared");
        let c = NosvInstance::connect("instance-test-shared", NosvConfig::with_cores(7));
        assert_eq!(c.num_cores(), 7);
        NosvInstance::disconnect_name("instance-test-shared");
    }

    #[test]
    fn shutdown_auto_disconnects_named_instance() {
        // Regression: `shutdown` used to leave the name in the registry, so a later
        // `connect` with the same name joined a dead scheduler whose `attach` panicked.
        let a = NosvInstance::connect("instance-test-shutdown-leak", NosvConfig::with_cores(2));
        let pid = a.register_process("p");
        let h = a.attach(pid, None);
        h.detach();
        a.shutdown();
        assert!(a.scheduler().is_shutdown());
        let b = NosvInstance::connect("instance-test-shutdown-leak", NosvConfig::with_cores(5));
        assert!(
            !Arc::ptr_eq(a.scheduler(), b.scheduler()),
            "connect after shutdown must create a fresh scheduler"
        );
        assert!(!b.scheduler().is_shutdown());
        assert_eq!(b.num_cores(), 5);
        // The fresh instance is fully functional.
        let pid = b.register_process("p2");
        let h = b.attach(pid, None);
        h.detach();
        b.shutdown();
        // Shutdown of the fresh instance cleans its own entry up too.
        let c = NosvInstance::connect("instance-test-shutdown-leak", NosvConfig::with_cores(3));
        assert_eq!(c.num_cores(), 3);
        c.shutdown();
    }

    #[test]
    fn yield_round_robins_two_workers_on_one_core() {
        let inst = NosvInstance::new(NosvConfig::with_cores(1));
        let pid = inst.register_process("p");
        let progress = Arc::new(AtomicUsize::new(0));
        let started = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let inst = inst.clone();
            let progress = Arc::clone(&progress);
            let started = Arc::clone(&started);
            joins.push(std::thread::spawn(move || {
                let h = inst.attach(pid, None);
                // Rendezvous with the other worker cooperatively so that the yield loop below
                // really has someone to hand the core to (cooperative yielding is the only way
                // the second worker can ever attach on a single core).
                started.fetch_add(1, Ordering::SeqCst);
                while started.load(Ordering::SeqCst) < 2 {
                    h.yield_now();
                    std::thread::yield_now();
                }
                for _ in 0..50 {
                    progress.fetch_add(1, Ordering::SeqCst);
                    h.yield_now();
                }
                h.detach();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(progress.load(Ordering::SeqCst), 100);
        // With one core and two workers, yields must actually have switched at least once.
        assert!(inst.metrics().yields >= 1);
    }

    #[test]
    fn multi_process_quantum_rotation_happens() {
        let inst = NosvInstance::new(NosvConfig::with_cores(1).quantum(Duration::from_millis(1)));
        let pa = inst.register_process("a");
        let pb = inst.register_process("b");
        let mut joins = Vec::new();
        for pid in [pa, pb, pa, pb] {
            let inst = inst.clone();
            joins.push(std::thread::spawn(move || {
                let h = inst.attach(pid, None);
                for _ in 0..20 {
                    std::thread::sleep(Duration::from_micros(200));
                    h.yield_now();
                }
                h.detach();
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(
            inst.scheduler().policy_rotations() >= 1,
            "quantum should have rotated between processes"
        );
    }
}
