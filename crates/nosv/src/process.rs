//! Process domains.
//!
//! The paper's nOS-V coordinates *real* OS processes through a shared-memory segment; every
//! process registers itself at startup (§4.3.3) and the single centralized scheduler serves
//! tasks of all of them, rotating a per-process quantum. In this reproduction a "process" is
//! a *scheduling domain* identified by a [`ProcessId`]; several domains share one scheduler
//! instance and the quantum rotation behaves identically (see DESIGN.md, substitutions).

/// Identifier of a process domain registered with a scheduler instance.
pub type ProcessId = u32;

use crate::topology::CoreId;

/// Bookkeeping for one registered process domain.
#[derive(Debug, Clone)]
pub struct ProcessInfo {
    /// Identifier assigned at registration.
    pub id: ProcessId,
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of tasks ever created in this domain.
    pub tasks_created: u64,
    /// Number of live (not yet finished) tasks.
    pub tasks_live: u64,
    /// Placement domain: the cores this process's tasks may be granted, when restricted
    /// (NUMA-aware pinning, §5.6). `None` means anywhere.
    pub domain: Option<Vec<CoreId>>,
}

impl ProcessInfo {
    /// Create bookkeeping for a new process domain.
    pub fn new(id: ProcessId, name: impl Into<String>) -> Self {
        ProcessInfo {
            id,
            name: name.into(),
            tasks_created: 0,
            tasks_live: 0,
            domain: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_info_is_empty() {
        let p = ProcessInfo::new(3, "llama-server");
        assert_eq!(p.id, 3);
        assert_eq!(p.name, "llama-server");
        assert_eq!(p.tasks_created, 0);
        assert_eq!(p.tasks_live, 0);
    }
}
