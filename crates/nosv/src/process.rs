//! Process domains.
//!
//! The paper's nOS-V coordinates *real* OS processes through a shared-memory segment; every
//! process registers itself at startup (§4.3.3) and the single centralized scheduler serves
//! tasks of all of them, rotating a per-process quantum. In this reproduction a "process" is
//! a *scheduling domain* identified by a [`ProcessId`]; several domains share one scheduler
//! instance and the quantum rotation behaves identically (see DESIGN.md, substitutions).

/// Identifier of a process domain registered with a scheduler instance.
pub type ProcessId = u32;

use crate::topology::CoreId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Lock-free(ish) per-process liveness + placement cell, shared between the global process
/// table and every task of the process. Scheduling hot paths (intake drain, shard-local
/// placement) consult it without touching the global section: process ids are never reused,
/// so a dead cell stays dead and there is no ABA hazard. The domain is a tiny mutex-guarded
/// vector — written only by `set_process_domain` (rare) and read at placement time under a
/// shard lock, which is below the grant lock in the hierarchy and never contends with it.
#[derive(Debug)]
pub(crate) struct ProcCell {
    alive: AtomicBool,
    domain: Mutex<Option<Vec<CoreId>>>,
}

impl ProcCell {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ProcCell {
            alive: AtomicBool::new(true),
            domain: Mutex::new(None),
        })
    }

    /// Whether the owning process is still registered.
    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Mark the process dead (deregister / kill). Sticky: never resurrected.
    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Replace the placement domain.
    pub(crate) fn set_domain(&self, domain: Option<Vec<CoreId>>) {
        *self.domain.lock() = domain;
    }

    /// Clone the placement domain (placement decisions need an owned copy anyway since
    /// they outlive the cell lock).
    pub(crate) fn domain(&self) -> Option<Vec<CoreId>> {
        self.domain.lock().clone()
    }
}

/// Bookkeeping for one registered process domain.
#[derive(Debug, Clone)]
pub struct ProcessInfo {
    /// Identifier assigned at registration.
    pub id: ProcessId,
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Number of tasks ever created in this domain.
    pub tasks_created: u64,
    /// Number of live (not yet finished) tasks.
    pub tasks_live: u64,
    /// Placement domain: the cores this process's tasks may be granted, when restricted
    /// (NUMA-aware pinning, §5.6). `None` means anywhere.
    pub domain: Option<Vec<CoreId>>,
    /// Shared liveness/domain cell; each task of the process holds a clone so shard-local
    /// scheduling paths can check process liveness without the global lock.
    pub(crate) cell: Arc<ProcCell>,
}

impl ProcessInfo {
    /// Create bookkeeping for a new process domain.
    pub fn new(id: ProcessId, name: impl Into<String>) -> Self {
        ProcessInfo {
            id,
            name: name.into(),
            tasks_created: 0,
            tasks_live: 0,
            domain: None,
            cell: ProcCell::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_info_is_empty() {
        let p = ProcessInfo::new(3, "llama-server");
        assert_eq!(p.id, 3);
        assert_eq!(p.name, "llama-server");
        assert_eq!(p.tasks_created, 0);
        assert_eq!(p.tasks_live, 0);
    }
}
