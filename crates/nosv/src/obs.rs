//! Observability plane: lock-free latency histograms, runtime gauges, and unified
//! stats snapshots for the scheduler.
//!
//! SCHED_COOP's pitch is *scheduling noise you can measure*; the counters in
//! [`crate::metrics`] say how often things happened, but localizing a latency regression
//! (e.g. the wake-churn p99 tracked in `BENCH_sched.json`) needs *distributions* per
//! pipeline stage. This module provides them, always on:
//!
//! * [`Histogram`] — a mergeable, log₂-bucketed latency histogram sharded per recording
//!   thread. Recording is lock-free (relaxed atomic adds on a thread-local shard) and
//!   never takes the scheduler lock, so instrumenting the submit fast path preserves its
//!   lock-freedom (the `sched_stress --smoke` sentinel still holds).
//! * [`StageStats`] — one histogram per stage boundary of the scheduling pipeline:
//!   submit→intake-drain, enqueue→grant (wake latency), grant→first-run (dispatch
//!   latency), and the off-core durations of pauses and yields.
//! * [`StatsSnapshot`] — counters + gauges + stage histograms behind one value with
//!   `delta(&prev)` and `to_json()`, assembled by
//!   [`Scheduler::stats_snapshot`](crate::scheduler::Scheduler::stats_snapshot).
//! * [`StatsSampler`] — an optional background thread (default: not running) appending
//!   lock-free [`StatsSample`] time-series points for scenario reports and Perfetto
//!   counter tracks.
//!
//! # Always-on doctrine
//!
//! Unlike the `sched-trace` and `fault-inject` features (exact event logs, expensive,
//! compiled out by default), the histograms here are cheap enough to keep on in every
//! build: a recording is one `Instant` read plus a handful of relaxed `fetch_add`s on a
//! cache-line-padded shard. Production observability that has to be switched on after
//! the incident is not observability.

use crate::metrics::MetricsSnapshot;
use crate::process::ProcessId;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of log₂ buckets. Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` nanoseconds; the last bucket absorbs everything from ~4.6 seconds up.
pub const NUM_BUCKETS: usize = 64;

/// Bucket index of a nanosecond value: 0 for 0, else `floor(log2(ns)) + 1`, clamped.
#[inline]
fn bucket_index(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive lower edge of a bucket, in nanoseconds.
fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper edge of a bucket, in nanoseconds.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i < NUM_BUCKETS - 1 {
        (1u64 << i) - 1
    } else {
        u64::MAX
    }
}

/// One recording shard, padded to its own cache lines so concurrent recorders on
/// different shards never false-share.
#[repr(align(128))]
struct Shard {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Round-robin seed for assigning recording threads to shards. A thread keeps its shard
/// for its whole life (cached in a thread-local), so steady-state recording is a pure
/// thread-local index plus relaxed adds — no shared counter on the hot path.
static NEXT_SHARD_SEED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_SEED: usize = NEXT_SHARD_SEED.fetch_add(1, Ordering::Relaxed);
}

/// A lock-free, mergeable, log₂-bucketed latency histogram, sharded per recording
/// thread.
///
/// * **Recording** ([`Histogram::record`]) is wait-free: bucket a nanosecond value with
///   `leading_zeros`, then a handful of relaxed `fetch_add`s on the calling thread's
///   shard. No locks, no CAS loops — safe on the scheduler's lock-free submit path.
/// * **Reading** ([`Histogram::snapshot`]) merges the shards into a plain
///   [`HistogramSnapshot`]; merging is per-bucket addition, so snapshots of different
///   histograms (or deltas of the same one) merge associatively and commutatively.
/// * **Accuracy**: counts are exact (relaxed increments never lose updates — they are
///   atomic RMWs, only unordered); percentiles are bounded by the log₂ bucket width, so
///   a reported percentile is within one power of two of the true sample (see
///   [`HistogramSnapshot::percentile_bounds`]).
///
/// The useful range is sub-microsecond to seconds; values land in buckets 0..=63 and
/// everything ≥ ~4.6 s saturates into the last bucket.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("shards", &self.shards.len())
            .field("count", &self.snapshot().count)
            .finish()
    }
}

impl Histogram {
    /// A histogram with `shards` recording shards (clamped to at least 1). Size it to the
    /// expected recorder parallelism — the scheduler uses one shard per virtual core.
    pub fn new(shards: usize) -> Self {
        Histogram {
            shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
        }
    }

    /// Record a duration. Lock-free; negative-free by construction (durations are
    /// unsigned); saturates at `u64::MAX` nanoseconds.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record a raw nanosecond value. Lock-free.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let shard = SHARD_SEED.with(|s| *s) % self.shards.len();
        self.shards[shard].record(ns);
    }

    /// Merge every shard into one plain snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for sh in self.shards.iter() {
            // Read the bucket array first: a recording racing this snapshot may appear
            // in the buckets but not yet in `count` or vice versa; recompute `count`
            // from the buckets so the invariant `count == Σ buckets` always holds.
            let mut shard_count = 0u64;
            for (i, b) in sh.buckets.iter().enumerate() {
                let v = b.load(Ordering::Relaxed);
                out.buckets[i] += v;
                shard_count += v;
            }
            out.count += shard_count;
            out.sum += sh.sum.load(Ordering::Relaxed);
            out.min_ns = out.min_ns.min(sh.min.load(Ordering::Relaxed));
            out.max_ns = out.max_ns.max(sh.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// Plain, mergeable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`NUM_BUCKETS`] for the bucket layout).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total recorded samples (exactly `Σ buckets`).
    pub count: u64,
    /// Sum of all recorded values, nanoseconds (drives [`HistogramSnapshot::mean_ns`]).
    pub sum: u64,
    /// Smallest recorded value, nanoseconds (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest recorded value, nanoseconds (0 when empty).
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot into this one (per-bucket addition — associative and
    /// commutative, so shard/scheduler/process snapshots can be combined in any order).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The samples recorded *since* `prev` (which must be an earlier snapshot of the same
    /// histogram): per-bucket saturating subtraction. `min_ns`/`max_ns` cannot be
    /// recovered for the interval, so they are re-derived from the edges of the delta's
    /// outermost non-empty buckets (within one bucket of the true values).
    pub fn delta(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for i in 0..NUM_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(prev.buckets[i]);
            out.count += out.buckets[i];
        }
        out.sum = self.sum.saturating_sub(prev.sum);
        if let Some(first) = out.buckets.iter().position(|&b| b > 0) {
            out.min_ns = bucket_lower(first);
        }
        if let Some(last) = out.buckets.iter().rposition(|&b| b > 0) {
            out.max_ns = bucket_upper(last).min(self.max_ns);
        }
        out
    }

    /// Mean recorded value, nanoseconds (0 when empty). Exact (true sum / true count).
    pub fn mean_ns(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The bucket edges bracketing the `p`-th percentile (`0.0..=1.0`): the true sample
    /// at that rank lies in `[lower, upper]`. Zero-width only for exact-zero samples.
    pub fn percentile_bounds(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (bucket_lower(i), bucket_upper(i).min(self.max_ns));
            }
        }
        (self.max_ns, self.max_ns)
    }

    /// The `p`-th percentile (`0.0..=1.0`), nanoseconds, reported as the upper edge of
    /// the bucket holding that rank (capped at the exact recorded maximum). Within one
    /// log₂ bucket of the true value — i.e. at most 2× above it.
    pub fn percentile(&self, p: f64) -> u64 {
        self.percentile_bounds(p).1
    }

    /// Render the summary fields as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
            self.count,
            self.mean_ns(),
            if self.count == 0 { 0 } else { self.min_ns },
            self.max_ns,
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.percentile(0.999),
        )
    }
}

// ---------------------------------------------------------------------------------------
// Stage histograms
// ---------------------------------------------------------------------------------------

/// The always-on latency histograms at the scheduling pipeline's stage boundaries.
///
/// The pipeline a wake-up traverses (see DESIGN.md §"Observability plane"):
///
/// ```text
/// submit ──► intake stack ──► drain ──► policy enqueue ──► grant ──► first run
///        intake_wait────────────────┘                           │
///        wake (enqueue→grant)───────────────────────────────────┘
///        dispatch (grant→first-run)──────────────────────────────────────┘
/// ```
///
/// plus the off-core residence times of the two blocking scheduling points
/// (`pause`/`waitfor` and `yield`).
#[derive(Debug)]
pub struct StageStats {
    /// Submit → intake-drain: how long a published wake-up sat in the lock-free intake
    /// stack before a scheduling point absorbed it.
    pub intake_wait: Histogram,
    /// Enqueue → grant (wake latency): from the grant slot turning ready to the
    /// scheduler granting a core. This is the stage `BENCH_sched.json`'s wake-churn
    /// percentiles come from.
    pub wake: Histogram,
    /// Grant → first-run (dispatch latency): from the grant being published to the
    /// woken worker thread observing it.
    pub dispatch: Histogram,
    /// Off-core duration of pauses and timed waits (block → re-run).
    pub pause_block: Histogram,
    /// Off-core duration of yields that actually switched (yield → re-run).
    pub yield_block: Histogram,
}

impl StageStats {
    /// Stage histograms with `shards` shards each (one per virtual core is the
    /// scheduler's sizing).
    pub fn new(shards: usize) -> Self {
        StageStats {
            intake_wait: Histogram::new(shards),
            wake: Histogram::new(shards),
            dispatch: Histogram::new(shards),
            pause_block: Histogram::new(shards),
            yield_block: Histogram::new(shards),
        }
    }

    /// Snapshot every stage histogram.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            intake_wait: self.intake_wait.snapshot(),
            wake: self.wake.snapshot(),
            dispatch: self.dispatch.snapshot(),
            pause_block: self.pause_block.snapshot(),
            yield_block: self.yield_block.snapshot(),
        }
    }
}

/// Plain snapshot of [`StageStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSnapshot {
    /// See [`StageStats::intake_wait`].
    pub intake_wait: HistogramSnapshot,
    /// See [`StageStats::wake`].
    pub wake: HistogramSnapshot,
    /// See [`StageStats::dispatch`].
    pub dispatch: HistogramSnapshot,
    /// See [`StageStats::pause_block`].
    pub pause_block: HistogramSnapshot,
    /// See [`StageStats::yield_block`].
    pub yield_block: HistogramSnapshot,
}

impl StageSnapshot {
    /// Stage-wise [`HistogramSnapshot::delta`].
    pub fn delta(&self, prev: &StageSnapshot) -> StageSnapshot {
        StageSnapshot {
            intake_wait: self.intake_wait.delta(&prev.intake_wait),
            wake: self.wake.delta(&prev.wake),
            dispatch: self.dispatch.delta(&prev.dispatch),
            pause_block: self.pause_block.delta(&prev.pause_block),
            yield_block: self.yield_block.delta(&prev.yield_block),
        }
    }

    /// Stage-wise [`HistogramSnapshot::merge`]: fold `other`'s samples into `self`.
    pub fn merge(&mut self, other: &StageSnapshot) {
        self.intake_wait.merge(&other.intake_wait);
        self.wake.merge(&other.wake);
        self.dispatch.merge(&other.dispatch);
        self.pause_block.merge(&other.pause_block);
        self.yield_block.merge(&other.yield_block);
    }

    /// `(name, snapshot)` pairs for iteration-driven rendering.
    pub fn named(&self) -> [(&'static str, &HistogramSnapshot); 5] {
        [
            ("intake_wait", &self.intake_wait),
            ("wake", &self.wake),
            ("dispatch", &self.dispatch),
            ("pause_block", &self.pause_block),
            ("yield_block", &self.yield_block),
        ]
    }

    /// Render every stage as a JSON object of histogram summaries.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .named()
            .iter()
            .map(|(name, h)| format!("\"{name}\":{}", h.to_json()))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

// ---------------------------------------------------------------------------------------
// Per-shard (per-NUMA-node) scheduler-section stats
// ---------------------------------------------------------------------------------------

/// Contention counters and the dispatch-latency histogram of one scheduler shard (one
/// NUMA node under the split-lock scheduler; flat-locked schedulers keep everything in
/// shard 0). Counters are bumped with relaxed atomics by the shard's lock/steal/valve
/// paths; the histogram records grant→first-run latencies attributed to the *granted*
/// core's node, so a single slow node cannot hide inside the pooled `dispatch` p99.
#[derive(Debug)]
pub struct ShardStats {
    /// Times this shard's dispatch lock was acquired (blocking or successful try-lock).
    pub lock_acquisitions: AtomicU64,
    /// Ready entries this shard *lost* to a foreign core's steal-on-exhaustion.
    pub steals: AtomicU64,
    /// Cross-shard aging-valve probes issued *by* this shard's cores that served an aged
    /// entry from a foreign shard.
    pub valve_crossings: AtomicU64,
    /// Grant→first-run latency of grants onto this node's cores.
    pub dispatch: Histogram,
}

impl ShardStats {
    fn new(hist_shards: usize) -> Self {
        ShardStats {
            lock_acquisitions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            valve_crossings: AtomicU64::new(0),
            dispatch: Histogram::new(hist_shards),
        }
    }

    /// Plain snapshot of the shard counters and histogram.
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            valve_crossings: self.valve_crossings.load(Ordering::Relaxed),
            dispatch: self.dispatch.snapshot(),
        }
    }
}

/// Plain snapshot of a [`ShardStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// See [`ShardStats::lock_acquisitions`].
    pub lock_acquisitions: u64,
    /// See [`ShardStats::steals`].
    pub steals: u64,
    /// See [`ShardStats::valve_crossings`].
    pub valve_crossings: u64,
    /// See [`ShardStats::dispatch`].
    pub dispatch: HistogramSnapshot,
}

impl ShardSnapshot {
    /// The activity between `prev` and `self` (counters subtracted, histogram delta'd).
    pub fn delta(&self, prev: &ShardSnapshot) -> ShardSnapshot {
        ShardSnapshot {
            lock_acquisitions: self
                .lock_acquisitions
                .saturating_sub(prev.lock_acquisitions),
            steals: self.steals.saturating_sub(prev.steals),
            valve_crossings: self.valve_crossings.saturating_sub(prev.valve_crossings),
            dispatch: self.dispatch.delta(&prev.dispatch),
        }
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"lock_acquisitions\":{},\"steals\":{},\"valve_crossings\":{},\"dispatch\":{}}}",
            self.lock_acquisitions,
            self.steals,
            self.valve_crossings,
            self.dispatch.to_json()
        )
    }
}

// ---------------------------------------------------------------------------------------
// Gauges and the unified snapshot
// ---------------------------------------------------------------------------------------

/// Point-in-time ready-state of one registered process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessGauges {
    /// The process id.
    pub id: ProcessId,
    /// The registered name.
    pub name: String,
    /// Ready entries in the process's per-core (bound) FIFOs.
    pub queued_bound: usize,
    /// Ready entries in the process's unbound FIFO.
    pub queued_unbound: usize,
    /// Cores currently running a task of this process.
    pub running: usize,
}

/// Point-in-time gauges of the scheduler (instantaneous state, not cumulative — a delta
/// of two [`StatsSnapshot`]s keeps the *later* gauges verbatim).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaugesSnapshot {
    /// Ready-task gauge: intake entries plus policy-queued entries (clamped at 0).
    pub ready_tasks: usize,
    /// Entries currently sitting in the lock-free intake stack (approximate under
    /// concurrent pushes), summed over the per-node shards.
    pub intake_depth: usize,
    /// Per-NUMA-node intake shard depths (same approximation; `intake_depth` is their
    /// sum). Lets a dashboard see a hot shard that the summed gauge hides.
    pub intake_shards: Vec<usize>,
    /// Cores currently running a task.
    pub busy_cores: usize,
    /// Cores currently idle.
    pub idle_cores: usize,
    /// Live (registered, unfinished) tasks.
    pub live_tasks: usize,
    /// Per-process ready-queue depths (bound vs unbound tiers) and running counts,
    /// ordered by process id.
    pub processes: Vec<ProcessGauges>,
}

impl GaugesSnapshot {
    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let procs: Vec<String> = self
            .processes
            .iter()
            .map(|p| {
                format!(
                    "{{\"id\":{},\"name\":{},\"queued_bound\":{},\"queued_unbound\":{},\"running\":{}}}",
                    p.id,
                    json_string(&p.name),
                    p.queued_bound,
                    p.queued_unbound,
                    p.running
                )
            })
            .collect();
        let shards: Vec<String> = self.intake_shards.iter().map(|d| d.to_string()).collect();
        format!(
            "{{\"ready_tasks\":{},\"intake_depth\":{},\"intake_shards\":[{}],\"busy_cores\":{},\"idle_cores\":{},\"live_tasks\":{},\"processes\":[{}]}}",
            self.ready_tasks,
            self.intake_depth,
            shards.join(","),
            self.busy_cores,
            self.idle_cores,
            self.live_tasks,
            procs.join(",")
        )
    }
}

/// Escape a string as a JSON string literal (the subset the scheduler emits: process
/// names and policy names).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One unified observation of the scheduler: cumulative counters, instantaneous gauges
/// and stage histograms, stamped with the time since the scheduler was created.
///
/// Obtain via [`Scheduler::stats_snapshot`](crate::scheduler::Scheduler::stats_snapshot)
/// (or the instance/runtime wrappers); subtract two with [`StatsSnapshot::delta`] to
/// isolate one benchmark phase; render with [`StatsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Time since the scheduler was created.
    pub at: Duration,
    /// Cumulative scheduler counters.
    pub counters: MetricsSnapshot,
    /// Instantaneous gauges.
    pub gauges: GaugesSnapshot,
    /// Stage-boundary latency histograms.
    pub stages: StageSnapshot,
    /// Per-NUMA-node scheduler-shard stats (one entry per node; flat-locked schedulers
    /// report a single shard).
    pub shards: Vec<ShardSnapshot>,
}

impl StatsSnapshot {
    /// The activity between `prev` and `self`: counters and histograms are subtracted
    /// (cumulative), gauges are kept from `self` (instantaneous).
    pub fn delta(&self, prev: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            at: self.at,
            counters: self.counters.delta(&prev.counters),
            gauges: self.gauges.clone(),
            stages: self.stages.delta(&prev.stages),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| match prev.shards.get(i) {
                    Some(p) => s.delta(p),
                    None => s.clone(),
                })
                .collect(),
        }
    }

    /// Render the whole snapshot as one JSON object (hand-rolled: `usf-nosv` has no
    /// JSON dependency and must not grow one for the sake of a debug dump).
    pub fn to_json(&self) -> String {
        let shards: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"at_s\":{:.6},\"counters\":{{\"submits\":{},\"intake_submits\":{},\"grants\":{},\"pauses\":{},\"yields\":{},\"waitfors\":{},\"lock_acquisitions\":{},\"global_lock_acquisitions\":{},\"stalls_detected\":{},\"faults_injected\":{}}},\"gauges\":{},\"stages\":{},\"shards\":[{}]}}",
            self.at.as_secs_f64(),
            self.counters.submits,
            self.counters.intake_submits,
            self.counters.grants,
            self.counters.pauses,
            self.counters.yields,
            self.counters.waitfors,
            self.counters.lock_acquisitions,
            self.counters.global_lock_acquisitions,
            self.counters.stalls_detected,
            self.counters.faults_injected,
            self.gauges.to_json(),
            self.stages.to_json(),
            shards.join(","),
        )
    }
}

// ---------------------------------------------------------------------------------------
// Registry and sampler
// ---------------------------------------------------------------------------------------

/// The scheduler-resident half of the stats plane: creation instant (the time base every
/// snapshot and sample is stamped against) plus the always-on stage histograms.
///
/// Counters live in [`crate::metrics::SchedulerMetrics`] and gauges are read from the
/// scheduler's atomics/locked state at snapshot time; this registry unifies them into
/// [`StatsSnapshot`]s via the scheduler.
#[derive(Debug)]
pub struct StatsRegistry {
    created: Instant,
    /// Stage-boundary histograms (recorded by the scheduler hot paths).
    pub stages: StageStats,
    /// Per-NUMA-node scheduler-shard stats (one entry per node).
    pub shards: Vec<ShardStats>,
}

impl StatsRegistry {
    /// A registry with `shards` histogram shards per stage and `nodes` scheduler shards.
    pub fn new(shards: usize, nodes: usize) -> Self {
        StatsRegistry {
            created: Instant::now(),
            stages: StageStats::new(shards),
            shards: (0..nodes.max(1)).map(|_| ShardStats::new(shards)).collect(),
        }
    }

    /// Snapshot every scheduler-shard stat, ordered by node.
    pub fn shard_snapshots(&self) -> Vec<ShardSnapshot> {
        self.shards.iter().map(ShardStats::snapshot).collect()
    }

    /// The instant the registry (and scheduler) was created — the snapshot time base.
    pub fn created(&self) -> Instant {
        self.created
    }

    /// Time since creation.
    pub fn elapsed(&self) -> Duration {
        self.created.elapsed()
    }
}

/// One lock-free time-series point appended by a [`StatsSampler`] (a strict subset of
/// [`StatsSnapshot`], restricted to what can be read without the scheduler lock so the
/// sampler never perturbs the schedule it observes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSample {
    /// Time since the scheduler was created.
    pub at: Duration,
    /// Ready-task gauge at the sample instant.
    pub ready_tasks: usize,
    /// Intake-stack depth at the sample instant (approximate under concurrent pushes).
    pub intake_depth: usize,
    /// Busy cores at the sample instant.
    pub busy_cores: usize,
    /// Cumulative submits at the sample instant.
    pub submits: u64,
    /// Cumulative grants at the sample instant.
    pub grants: u64,
}

impl StatsSample {
    /// Render as one JSONL line (no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        format!(
            "{{\"at_nanos\":{},\"ready_tasks\":{},\"intake_depth\":{},\"busy_cores\":{},\"submits\":{},\"grants\":{}}}",
            self.at.as_nanos(),
            self.ready_tasks,
            self.intake_depth,
            self.busy_cores,
            self.submits,
            self.grants
        )
    }

    /// Parse one line produced by [`StatsSample::to_jsonl_line`].
    ///
    /// # Errors
    /// Returns a message naming the malformed or missing field.
    pub fn from_jsonl_line(line: &str) -> Result<StatsSample, String> {
        let obj = crate::sched_trace::jsonl::parse_object(line)?;
        let need = |k: &str| obj.get_u64(k).ok_or_else(|| format!("missing field {k:?}"));
        Ok(StatsSample {
            at: Duration::from_nanos(need("at_nanos")?),
            ready_tasks: need("ready_tasks")? as usize,
            intake_depth: need("intake_depth")? as usize,
            busy_cores: need("busy_cores")? as usize,
            submits: need("submits")?,
            grants: need("grants")?,
        })
    }
}

/// A background sampler thread appending [`StatsSample`]s at a fixed period.
///
/// Off by default — a scenario opts in via
/// [`NosvInstance::start_sampler`](crate::instance::NosvInstance::start_sampler) (or the
/// `Usf` wrapper), runs its workload, then calls [`StatsSampler::stop`] to collect the
/// series. Each tick reads only atomics (see [`StatsSample`]), so sampling at
/// millisecond periods does not perturb the scheduler.
#[derive(Debug)]
pub struct StatsSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<StatsSample>>>,
}

impl StatsSampler {
    /// Start a sampler calling `sample` every `period` (clamped to ≥ 10µs so a zero
    /// period cannot spin a core).
    pub(crate) fn start<F>(period: Duration, sample: F) -> StatsSampler
    where
        F: Fn() -> StatsSample + Send + 'static,
    {
        let period = period.max(Duration::from_micros(10));
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("usf-stats-sampler".into())
            .spawn(move || {
                let mut out = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    out.push(sample());
                    std::thread::sleep(period);
                }
                // One final sample so the series always covers the stop point.
                out.push(sample());
                out
            })
            .expect("spawn stats sampler");
        StatsSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the sampler and return the collected series (always ≥ 1 sample).
    pub fn stop(mut self) -> Vec<StatsSample> {
        self.stop.store(true, Ordering::Relaxed);
        match self.handle.take() {
            Some(h) => h.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Drop for StatsSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for i in 1..NUM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = Histogram::new(4);
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 100_000);
        assert_eq!(s.mean_ns(), (100 + 200 + 400 + 800 + 100_000) / 5);
        let (lo, hi) = s.percentile_bounds(0.5);
        assert!(lo <= 400 && 400 <= hi, "p50 bracket {lo}..{hi}");
        assert_eq!(s.percentile(1.0), 100_000, "max caps the last bucket");
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::new(1).snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean_ns(), 0);
        assert_eq!(s.percentile_bounds(0.5), (0, 0));
    }

    #[test]
    fn delta_isolates_an_interval() {
        let h = Histogram::new(2);
        h.record_ns(100);
        let before = h.snapshot();
        h.record_ns(1000);
        h.record_ns(2000);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 3000);
        assert!(d.min_ns <= 1000 && d.max_ns >= 2000);
    }

    #[test]
    fn snapshot_json_is_flat_object() {
        let h = Histogram::new(1);
        h.record_ns(5000);
        let j = h.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"count\":1"));
        assert!(j.contains("\"p99_ns\":"));
    }

    #[test]
    fn sampler_collects_and_stops() {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let sampler = StatsSampler::start(Duration::from_micros(100), move || {
            let k = n2.fetch_add(1, Ordering::Relaxed);
            StatsSample {
                at: Duration::from_micros(k),
                ready_tasks: 0,
                intake_depth: 0,
                busy_cores: 0,
                submits: k,
                grants: 0,
            }
        });
        std::thread::sleep(Duration::from_millis(2));
        let samples = sampler.stop();
        assert!(!samples.is_empty());
        assert!(samples[0].to_jsonl_line().contains("\"submits\":0"));
    }

    #[test]
    fn sample_jsonl_round_trips() {
        let s = StatsSample {
            at: Duration::from_nanos(123_456_789),
            ready_tasks: 4,
            intake_depth: 2,
            busy_cores: 3,
            submits: 100,
            grants: 97,
        };
        assert_eq!(StatsSample::from_jsonl_line(&s.to_jsonl_line()), Ok(s));
        assert!(StatsSample::from_jsonl_line("{\"at_nanos\":1}")
            .unwrap_err()
            .contains("ready_tasks"));
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
