//! The unified SCHED_COOP ready-queue.
//!
//! This module is the **single** implementation of the paper's SCHED_COOP ready-queue
//! structure (§4.1): per-process, per-preferred-core FIFO queues with an unbound queue, an
//! affinity → NUMA-node → remote tiered pop, a rate-limited anti-starvation aging valve,
//! and a per-process quantum ring. It is generic over
//!
//! * the **time type** ([`ReadyTime`]): the real runtime instantiates it with
//!   [`std::time::Instant`], the discrete-event simulator with its virtual `SimTime`, and
//!   tests/benches with plain `u64` nanoseconds; and
//! * the **topology view** ([`TopologyView`]): any type that can say how many cores exist
//!   and which NUMA node each belongs to (the runtime's `Topology`, the simulator's
//!   `Machine`).
//!
//! Both `usf_nosv::policy::CoopPolicy` and `usf_simsched`'s `CoopScheduler` are thin
//! adapters over [`CoopCore`], which is what guarantees the simulator always validates the
//! exact policy code the real runtime ships (previously the two crates hand-mirrored this
//! structure and had to be kept in sync by review).
//!
//! # Complexity
//!
//! The seed implementation located the oldest queued entry with an O(#cores) scan of every
//! queue head on each aging-valve deadline and on every NUMA-tier pop. Here every queue
//! *head* is registered in lazy min-heaps keyed by the entry's global enqueue sequence
//! number — one heap over all queues plus one per NUMA node — so `oldest head` queries are
//! O(log cores) amortised. Registrations are appended when a queue's head changes
//! (push-to-empty or pop) and stale registrations are discarded lazily when they surface;
//! a size-triggered compaction (rebuild from the ≤ cores+1 live heads) bounds heap memory
//! regardless of how rarely the slow tiers run.
//!
//! # Ordering specification
//!
//! `pop_for(core)` serves, in order:
//!
//! 1. the **aging valve**: at most once per `aging` window, the globally oldest entry if
//!    it has waited ≥ `aging` (the starvation-freedom guarantee);
//! 2. the core's own FIFO (**affinity**);
//! 3. the oldest entry among the core's **NUMA node** queues and the **unbound** queue;
//! 4. the oldest **remote** entry. (The seed picked the first non-empty remote queue in
//!    core order; serving the oldest instead is strictly fairer and is what the heaps give
//!    for free. The property tests in `tests/readyq_equivalence.rs` pin this spec.)

use crate::topology::{CoreId, Topology};
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::Hash;
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point in time the ready-queue can do arithmetic on.
///
/// Implemented for [`Instant`] (the real scheduler), for `u64` nanoseconds (tests and
/// benches), and by `usf-simsched` for its virtual `SimTime`.
pub trait ReadyTime: Copy + PartialOrd {
    /// The duration type separating two points.
    type Delta: Copy + PartialOrd;

    /// Time elapsed from `earlier` to `self`, saturating at zero.
    fn since(self, earlier: Self) -> Self::Delta;

    /// The point `delta` after `self`.
    fn advance(self, delta: Self::Delta) -> Self;
}

impl ReadyTime for Instant {
    type Delta = Duration;

    fn since(self, earlier: Self) -> Duration {
        self.saturating_duration_since(earlier)
    }

    fn advance(self, delta: Duration) -> Self {
        self + delta
    }
}

impl ReadyTime for u64 {
    type Delta = u64;

    fn since(self, earlier: Self) -> u64 {
        self.saturating_sub(earlier)
    }

    fn advance(self, delta: u64) -> Self {
        self.saturating_add(delta)
    }
}

/// The scheduling-relevant view of a machine topology: a dense [`CoreId`] space
/// partitioned into NUMA nodes. [`Topology`] is the canonical implementation — the
/// simulator's `Machine` embeds one and delegates — so every consumer speaks the same
/// core-id/node vocabulary.
pub trait TopologyView {
    /// Number of cores (dense ids `0..cores`).
    fn view_cores(&self) -> usize;

    /// NUMA node of a core.
    fn view_node_of(&self, core: CoreId) -> usize;
}

impl TopologyView for Topology {
    fn view_cores(&self) -> usize {
        self.num_cores()
    }

    fn view_node_of(&self, core: CoreId) -> usize {
        self.node_of(core)
    }
}

/// An immutable core → NUMA-node map snapshotted from a [`TopologyView`].
///
/// [`ProcQueues`] stores one (shared via `Arc`, so per-process clones are cheap) instead of
/// borrowing the topology on every call, which keeps the hot-path signatures free of a view
/// parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreMap {
    core_node: Vec<usize>,
    node_cores: Vec<Vec<usize>>,
}

impl CoreMap {
    /// Snapshot a view.
    pub fn from_view(view: &impl TopologyView) -> Self {
        let cores = view.view_cores();
        let core_node: Vec<usize> = (0..cores).map(|c| view.view_node_of(c)).collect();
        let nodes = core_node.iter().copied().max().map_or(1, |m| m + 1);
        let mut node_cores = vec![Vec::new(); nodes];
        for (c, &n) in core_node.iter().enumerate() {
            node_cores[n].push(c);
        }
        CoreMap {
            core_node,
            node_cores,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.core_node.len()
    }

    /// Number of NUMA nodes.
    pub fn nodes(&self) -> usize {
        self.node_cores.len()
    }

    /// NUMA node of a core.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn node_of(&self, core: usize) -> usize {
        self.core_node[core]
    }

    /// Cores belonging to a node.
    pub fn cores_in_node(&self, node: usize) -> &[usize] {
        &self.node_cores[node]
    }
}

/// Which tier of the tiered pop served an item — the classification the `sched-trace`
/// recorder logs with every `Pop` event so a replay can assert not just *which* item was
/// served but *why*.
///
/// The variants mirror the ordering specification in the [module documentation](self):
/// aging valve → affinity → NUMA node/unbound → remote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PickTier {
    /// Served by the rate-limited anti-starvation aging valve.
    Aged,
    /// Served from the popping core's own FIFO (the affinity fast path).
    Affinity,
    /// Served as the oldest of the core's NUMA-node queues and the unbound queue.
    Node,
    /// Served as the oldest remote entry.
    Remote,
}

/// Queue source identifier inside the head heaps: a core id, or [`UNBOUND`].
const UNBOUND: usize = usize::MAX;

/// One queued item: its payload, a monotonically increasing enqueue sequence number (total
/// FIFO order across all of the process's queues) and the enqueue time (drives the
/// anti-starvation aging valve).
#[derive(Debug)]
struct Entry<T, C> {
    item: T,
    seq: u64,
    at: C,
}

/// Per-process ready queues: one FIFO per preferred core plus an unbound FIFO, with lazy
/// min-heaps over the queue heads for O(log cores) oldest-head queries.
///
/// See the [module documentation](self) for the ordering specification.
#[derive(Debug)]
pub struct ProcQueues<T, C: ReadyTime> {
    map: Arc<CoreMap>,
    per_core: Vec<VecDeque<Entry<T, C>>>,
    unbound: VecDeque<Entry<T, C>>,
    /// Per-process placement domain: when `Some`, only the flagged cores may pop from
    /// these queues (NUMA-aware pinning — the §5.6 socket-placement variants). `None`
    /// means any core (the default "anywhere" rule).
    domain: Option<Vec<bool>>,
    count: usize,
    next_seq: u64,
    /// Earliest time the anti-starvation valve needs to look at the queues again. Keeps
    /// the valve off the hot path: between deadlines, `pop_for` is the plain tiered pick.
    next_valve_at: Option<C>,
    /// Lazy min-heap over `(head seq, source)` of every non-empty queue (`source` is a
    /// core id or [`UNBOUND`]). Each entry is registered at most once — when it becomes a
    /// queue head — and discarded when it surfaces stale.
    heads: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-NUMA-node lazy min-heaps over that node's per-core queue heads (the unbound
    /// queue is tracked separately: it competes in every node).
    node_heads: Vec<BinaryHeap<Reverse<(u64, usize)>>>,
}

impl<T, C: ReadyTime> ProcQueues<T, C> {
    /// Empty queues for the given core map.
    pub fn new(map: Arc<CoreMap>) -> Self {
        let cores = map.cores();
        let nodes = map.nodes();
        ProcQueues {
            map,
            per_core: (0..cores).map(|_| VecDeque::new()).collect(),
            unbound: VecDeque::new(),
            domain: None,
            count: 0,
            next_seq: 0,
            next_valve_at: None,
            heads: BinaryHeap::new(),
            node_heads: (0..nodes).map(|_| BinaryHeap::new()).collect(),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no item is queued.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of queued items in the unbound FIFO (no usable core preference). The
    /// remainder (`len() - unbound_len()`) sits in the per-core bound FIFOs.
    pub fn unbound_len(&self) -> usize {
        self.unbound.len()
    }

    /// The core map these queues were built for.
    pub fn core_map(&self) -> &CoreMap {
        &self.map
    }

    /// Restrict (or, with `None`, un-restrict) these queues to a placement domain: only
    /// the given cores may pop. Cores outside the core map are ignored; an empty or fully
    /// out-of-range list leaves the domain unrestricted (a dead domain would strand every
    /// entry forever, which no caller can mean).
    pub fn set_domain(&mut self, cores: Option<&[CoreId]>) {
        self.domain = cores.and_then(|cs| {
            let mut mask = vec![false; self.map.cores()];
            let mut any = false;
            for &c in cs {
                if c < mask.len() {
                    mask[c] = true;
                    any = true;
                }
            }
            any.then_some(mask)
        });
    }

    /// Whether `core` may pop from these queues under the current placement domain.
    pub fn allows(&self, core: CoreId) -> bool {
        match &self.domain {
            Some(mask) => core < mask.len() && mask[core],
            None => true,
        }
    }

    /// Enqueue an item. A preference outside the core id range (e.g. recorded before a
    /// topology change) or outside the placement domain is treated as unbound — a pinned
    /// process's stale affinity to a core it can no longer run on must not strand the
    /// entry in a queue only the domain tiers can reach.
    pub fn push(&mut self, item: T, preferred: Option<usize>, now: C) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { item, seq, at: now };
        let source = match preferred {
            Some(c) if c < self.per_core.len() && self.allows(c) => c,
            _ => UNBOUND,
        };
        let was_empty = if source == UNBOUND {
            self.unbound.is_empty()
        } else {
            self.per_core[source].is_empty()
        };
        // Enqueue BEFORE registering: registration can trigger a heap compaction, which
        // rebuilds from the queue fronts — the entry must already be visible there or its
        // registration is lost and the item becomes unreachable to every heap-based tier.
        if source == UNBOUND {
            self.unbound.push_back(entry);
        } else {
            self.per_core[source].push_back(entry);
        }
        self.count += 1;
        if was_empty {
            // The entry became this queue's head: register it.
            self.register_head(seq, source);
        }
    }

    /// Current head sequence number of a queue, if non-empty.
    fn head_seq(&self, source: usize) -> Option<u64> {
        if source == UNBOUND {
            self.unbound.front().map(|e| e.seq)
        } else {
            self.per_core[source].front().map(|e| e.seq)
        }
    }

    /// Register a new queue head in the heaps, compacting the ones this registration
    /// touched if stale entries have piled up.
    fn register_head(&mut self, seq: u64, source: usize) {
        self.heads.push(Reverse((seq, source)));
        if self.heads.len() > 2 * (self.per_core.len() + 1) + 16 {
            self.compact_global();
        }
        if source != UNBOUND {
            let node = self.map.node_of(source);
            self.node_heads[node].push(Reverse((seq, source)));
            if self.node_heads[node].len() > 2 * self.map.cores_in_node(node).len() + 8 {
                self.compact_node(node);
            }
        }
    }

    /// Rebuild the global heap from the ≤ cores+1 live heads. Registrations are only
    /// discarded lazily at the top, so a workload that always exits at the affinity tier
    /// would otherwise grow the heap without bound; the rebuild is O(cores) and triggered
    /// at most once per O(cores) head changes, so it amortises to O(1). (Only the heaps a
    /// registration touched can have grown, so `register_head` checks just those — the
    /// threshold comparisons themselves are O(1) and allocation-free.)
    fn compact_global(&mut self) {
        self.heads.clear();
        for (c, q) in self.per_core.iter().enumerate() {
            if let Some(e) = q.front() {
                self.heads.push(Reverse((e.seq, c)));
            }
        }
        if let Some(e) = self.unbound.front() {
            self.heads.push(Reverse((e.seq, UNBOUND)));
        }
    }

    /// Rebuild one node heap from that node's live per-core heads (see
    /// [`ProcQueues::compact_global`]).
    fn compact_node(&mut self, node: usize) {
        self.node_heads[node].clear();
        let cores = self.map.cores_in_node(node).len();
        for i in 0..cores {
            let c = self.map.cores_in_node(node)[i];
            if let Some(e) = self.per_core[c].front() {
                let seq = e.seq;
                self.node_heads[node].push(Reverse((seq, c)));
            }
        }
    }

    /// Oldest live head in the global heap, discarding stale registrations.
    fn peek_global(&mut self) -> Option<(u64, usize)> {
        loop {
            let (seq, src) = match self.heads.peek() {
                Some(&Reverse(top)) => top,
                None => return None,
            };
            if self.head_seq(src) == Some(seq) {
                return Some((seq, src));
            }
            self.heads.pop();
        }
    }

    /// Oldest live per-core head in `node`'s heap, discarding stale registrations.
    fn peek_node(&mut self, node: usize) -> Option<(u64, usize)> {
        loop {
            let (seq, src) = match self.node_heads[node].peek() {
                Some(&Reverse(top)) => top,
                None => return None,
            };
            if self.head_seq(src) == Some(seq) {
                return Some((seq, src));
            }
            self.node_heads[node].pop();
        }
    }

    /// Pop the head of `source`, registering the queue's new head if any.
    fn pop_from(&mut self, source: usize) -> Entry<T, C> {
        let entry = if source == UNBOUND {
            self.unbound.pop_front()
        } else {
            self.per_core[source].pop_front()
        }
        .expect("candidate queue has a head");
        self.count -= 1;
        if let Some(seq) = self.head_seq(source) {
            self.register_head(seq, source);
        }
        entry
    }

    /// The anti-starvation valve: at most once per `aging` window, serve the oldest queued
    /// entry regardless of placement if it has waited longer than `aging`. Every pop path
    /// (including affinity-only pre-passes like the simulator's `pick_affine`) must consult
    /// this first so no pick can bypass the liveness guarantee.
    ///
    /// The valve is rate-limited (one aged grant per `aging` window, tracked by
    /// `next_valve_at`) so that under sustained oversubscription — where *every* entry is
    /// older than one quantum — the policy stays affinity-first instead of degrading into a
    /// global FIFO; liveness only needs the oldest entry to be served eventually, with
    /// bounded delay. The deadline check also keeps the oldest-head query off the common
    /// path entirely.
    pub fn pop_aged(&mut self, now: C, aging: C::Delta) -> Option<T> {
        if self.next_valve_at.map_or(true, |t| now >= t) {
            match self.peek_global() {
                Some((_, src)) => {
                    let at = if src == UNBOUND {
                        self.unbound.front().expect("live head").at
                    } else {
                        self.per_core[src].front().expect("live head").at
                    };
                    if now.since(at) >= aging {
                        self.next_valve_at = Some(now.advance(aging));
                        return Some(self.pop_from(src).item);
                    }
                    // Nothing aged yet: the current oldest entry is the first that can
                    // age (later entries age strictly later).
                    self.next_valve_at = Some(at.advance(aging));
                }
                None => self.next_valve_at = Some(now.advance(aging)),
            }
        }
        None
    }

    /// Pop the head of `core`'s own FIFO, if any. Used by affinity-only pre-passes; callers
    /// must run [`ProcQueues::pop_aged`] first (see there). Returns `None` for cores
    /// outside the placement domain.
    pub fn pop_affine(&mut self, core: usize) -> Option<T> {
        if !self.allows(core) {
            return None;
        }
        if self.per_core[core].front().is_some() {
            Some(self.pop_from(core).item)
        } else {
            None
        }
    }

    /// Tiered pop for an idle core: aging valve → own FIFO → oldest of (same-node FIFOs,
    /// unbound FIFO) → oldest remote entry. See the module documentation for the rationale
    /// of each tier. A core outside the placement domain gets nothing — not even the aging
    /// valve may violate a pin; the valve's liveness guarantee holds because every domain
    /// contains at least one core ([`ProcQueues::set_domain`]) and domain cores still run
    /// the valve first.
    ///
    /// # Panics
    /// Panics if `core` is outside the core map.
    pub fn pop_for(&mut self, core: usize, now: C, aging: C::Delta) -> Option<T> {
        self.pop_for_tiered(core, now, aging).map(|(t, _)| t)
    }

    /// [`ProcQueues::pop_for`], additionally reporting which tier served the item (the
    /// form the trace recorder and the sim-replay harness use).
    ///
    /// # Panics
    /// Panics if `core` is outside the core map.
    pub fn pop_for_tiered(
        &mut self,
        core: usize,
        now: C,
        aging: C::Delta,
    ) -> Option<(T, PickTier)> {
        if !self.allows(core) {
            return None;
        }
        if let Some(t) = self.pop_aged(now, aging) {
            return Some((t, PickTier::Aged));
        }
        if self.per_core[core].front().is_some() {
            return Some((self.pop_from(core).item, PickTier::Affinity));
        }
        // Same-node queues and the unbound queue compete by enqueue order. The core's own
        // queue is empty here, so any of its registrations in the node heap are stale and
        // get discarded by the peek.
        let node = self.map.node_of(core);
        let node_best = self.peek_node(node);
        let unbound_seq = self.unbound.front().map(|e| e.seq);
        let best = match (node_best, unbound_seq) {
            (Some((s, src)), Some(us)) => Some(if us < s { UNBOUND } else { src }),
            (Some((_, src)), None) => Some(src),
            (None, Some(_)) => Some(UNBOUND),
            (None, None) => None,
        };
        if let Some(src) = best {
            return Some((self.pop_from(src).item, PickTier::Node));
        }
        // Every same-node queue and the unbound queue are empty, so the global minimum (if
        // any) is the oldest entry on a remote node.
        if let Some((_, src)) = self.peek_global() {
            debug_assert!(src != UNBOUND && self.map.node_of(src) != node);
            return Some((self.pop_from(src).item, PickTier::Remote));
        }
        None
    }

    /// Number of heap registrations currently held (diagnostics: bounded by compaction).
    #[cfg(test)]
    fn heap_len(&self) -> usize {
        self.heads.len() + self.node_heads.iter().map(|h| h.len()).sum::<usize>()
    }
}

/// The per-process ready-queue interface [`CoopCore`] schedules through: everything the
/// quantum ring and the tiered pick need from a backing store. [`ProcQueues`] (the single
/// structure) and [`ShardedProcQueues`] (per-NUMA-node shards with per-shard locks)
/// implement it, which is what lets one copy of the ring/turn-passing logic drive both —
/// the sharded policy cannot drift from the reference because there is no second copy of
/// the pick sequence to drift.
pub trait ReadyQueues<T, C: ReadyTime>: Sized {
    /// Empty queues for the given core map.
    fn new(map: Arc<CoreMap>) -> Self;

    /// Number of queued items.
    fn len(&self) -> usize;

    /// Whether no item is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queued items with no usable core preference.
    fn unbound_len(&self) -> usize;

    /// Restrict (or, with `None`, un-restrict) to a placement domain (see
    /// [`ProcQueues::set_domain`]).
    fn set_domain(&mut self, cores: Option<&[CoreId]>);

    /// Whether `core` may pop under the current placement domain.
    fn allows(&self, core: CoreId) -> bool;

    /// Enqueue an item (see [`ProcQueues::push`]).
    fn push(&mut self, item: T, preferred: Option<usize>, now: C);

    /// The anti-starvation valve (see [`ProcQueues::pop_aged`]).
    fn pop_aged(&mut self, now: C, aging: C::Delta) -> Option<T>;

    /// Affinity-only pop (see [`ProcQueues::pop_affine`]).
    fn pop_affine(&mut self, core: usize) -> Option<T>;

    /// The tiered pop with tier reporting (see [`ProcQueues::pop_for_tiered`]).
    fn pop_for_tiered(&mut self, core: usize, now: C, aging: C::Delta) -> Option<(T, PickTier)>;
}

impl<T, C: ReadyTime> ReadyQueues<T, C> for ProcQueues<T, C> {
    fn new(map: Arc<CoreMap>) -> Self {
        ProcQueues::new(map)
    }

    fn len(&self) -> usize {
        ProcQueues::len(self)
    }

    fn unbound_len(&self) -> usize {
        ProcQueues::unbound_len(self)
    }

    fn set_domain(&mut self, cores: Option<&[CoreId]>) {
        ProcQueues::set_domain(self, cores)
    }

    fn allows(&self, core: CoreId) -> bool {
        ProcQueues::allows(self, core)
    }

    fn push(&mut self, item: T, preferred: Option<usize>, now: C) {
        ProcQueues::push(self, item, preferred, now)
    }

    fn pop_aged(&mut self, now: C, aging: C::Delta) -> Option<T> {
        ProcQueues::pop_aged(self, now, aging)
    }

    fn pop_affine(&mut self, core: usize) -> Option<T> {
        ProcQueues::pop_affine(self, core)
    }

    fn pop_for_tiered(&mut self, core: usize, now: C, aging: C::Delta) -> Option<(T, PickTier)> {
        ProcQueues::pop_for_tiered(self, core, now, aging)
    }
}

/// One per-NUMA-node shard of a [`ShardedProcQueues`]: the node's per-core FIFOs plus the
/// lazy min-heap over their heads (same registration/compaction doctrine as
/// [`ProcQueues`]'s `node_heads`), guarded by its own lock. FIFOs are indexed by the
/// core's position within the node (`ShardedProcQueues::core_shard` maps global ids).
#[derive(Debug)]
struct NodeShard<T, C: ReadyTime> {
    /// Per-core FIFOs, indexed by the core's position in `CoreMap::cores_in_node` order.
    queues: Vec<VecDeque<Entry<T, C>>>,
    /// Lazy min-heap over `(head seq, local index)` of the non-empty FIFOs.
    heads: BinaryHeap<Reverse<(u64, usize)>>,
}

impl<T, C: ReadyTime> NodeShard<T, C> {
    fn head_seq(&self, local: usize) -> Option<u64> {
        self.queues[local].front().map(|e| e.seq)
    }

    fn register_head(&mut self, seq: u64, local: usize) {
        self.heads.push(Reverse((seq, local)));
        if self.heads.len() > 2 * self.queues.len() + 8 {
            self.compact();
        }
    }

    fn compact(&mut self) {
        self.heads.clear();
        for (i, q) in self.queues.iter().enumerate() {
            if let Some(e) = q.front() {
                self.heads.push(Reverse((e.seq, i)));
            }
        }
    }

    /// Oldest live head in this shard, discarding stale registrations.
    fn peek(&mut self) -> Option<(u64, usize)> {
        loop {
            let (seq, local) = match self.heads.peek() {
                Some(&Reverse(top)) => top,
                None => return None,
            };
            if self.head_seq(local) == Some(seq) {
                return Some((seq, local));
            }
            self.heads.pop();
        }
    }

    /// Pop the head of a local FIFO, registering the queue's new head if any.
    fn pop_local(&mut self, local: usize) -> Entry<T, C> {
        let entry = self.queues[local]
            .pop_front()
            .expect("candidate queue has a head");
        if let Some(seq) = self.head_seq(local) {
            self.register_head(seq, local);
        }
        entry
    }
}

/// Shared (non-sharded) section of a [`ShardedProcQueues`]: the unbound FIFO — which
/// competes in every node's tier, so no shard can own it — plus the placement domain, the
/// counters and the aging-valve deadline.
#[derive(Debug)]
struct SharedQ<T, C: ReadyTime> {
    unbound: VecDeque<Entry<T, C>>,
    domain: Option<Vec<bool>>,
    count: usize,
    next_seq: u64,
    next_valve_at: Option<C>,
}

impl<T, C: ReadyTime> SharedQ<T, C> {
    fn allows(&self, core: CoreId) -> bool {
        match &self.domain {
            Some(mask) => core < mask.len() && mask[core],
            None => true,
        }
    }
}

/// [`ProcQueues`] split into per-NUMA-node shards with per-shard locks.
///
/// Each shard owns its node's per-core FIFOs and head heap; the unbound FIFO, domain
/// mask, counters and valve deadline live in a small shared section. The pop tiers map
/// onto shard ownership directly: **affinity** touches only the popping core's own shard,
/// the **node** tier compares that shard's oldest head against the unbound front, and the
/// **remote** tier — cross-shard stealing — runs only on local exhaustion (own shard and
/// unbound both empty), scanning the other shards for the global oldest. The **valve**
/// scans all shards, but at most once per aging window (the deadline check keeps it off
/// the common path).
///
/// Lock order: shared section → shard, never the reverse, and never two shards at once
/// (cross-shard scans lock one shard at a time). Today every call already runs under the
/// scheduler's global lock, so the per-shard locks are uncontended — they encode the
/// ownership boundary this structure is sharded along, which is what a future per-shard
/// scheduler lock split needs to already be load-bearing in the data structure.
///
/// The pick sequence is **identical** to [`ProcQueues`]' — same seq stamps, same tier
/// order, same tie-breaks, same valve deadlines — pinned by `tests/readyq_equivalence.rs`
/// and the `sched_fuzz` sharded config's trace replays.
#[derive(Debug)]
pub struct ShardedProcQueues<T, C: ReadyTime> {
    map: Arc<CoreMap>,
    /// Global core id → (owning shard, index within the shard).
    core_shard: Vec<(usize, usize)>,
    shards: Vec<Mutex<NodeShard<T, C>>>,
    shared: Mutex<SharedQ<T, C>>,
}

impl<T, C: ReadyTime> ShardedProcQueues<T, C> {
    /// Empty sharded queues for the given core map (one shard per NUMA node).
    pub fn new(map: Arc<CoreMap>) -> Self {
        let mut core_shard = vec![(0usize, 0usize); map.cores()];
        let shards: Vec<Mutex<NodeShard<T, C>>> = (0..map.nodes())
            .map(|n| {
                let cores: Vec<usize> = map.cores_in_node(n).to_vec();
                for (i, &c) in cores.iter().enumerate() {
                    core_shard[c] = (n, i);
                }
                Mutex::new(NodeShard {
                    queues: (0..cores.len()).map(|_| VecDeque::new()).collect(),
                    heads: BinaryHeap::new(),
                })
            })
            .collect();
        ShardedProcQueues {
            map,
            core_shard,
            shards,
            shared: Mutex::new(SharedQ {
                unbound: VecDeque::new(),
                domain: None,
                count: 0,
                next_seq: 0,
                next_valve_at: None,
            }),
        }
    }

    /// Number of shards (NUMA nodes).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of queued items in a shard's per-core FIFOs (diagnostics).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard]
            .lock()
            .queues
            .iter()
            .map(|q| q.len())
            .sum()
    }

    /// Oldest queued entry across every shard and the unbound FIFO:
    /// `(seq, None)` for the unbound front, `(seq, Some((shard, local)))` for a bound
    /// head. Caller holds the shared lock; shards are locked one at a time.
    fn global_oldest(&self, sh: &SharedQ<T, C>) -> Option<(u64, Option<(usize, usize)>)> {
        let mut best: Option<(u64, Option<(usize, usize)>)> =
            sh.unbound.front().map(|e| (e.seq, None));
        for (n, shard) in self.shards.iter().enumerate() {
            if let Some((seq, local)) = shard.lock().peek() {
                if best.map_or(true, |(b, _)| seq < b) {
                    best = Some((seq, Some((n, local))));
                }
            }
        }
        best
    }

    /// The valve body (see [`ProcQueues::pop_aged`] — same deadlines, same rate limit,
    /// with `peek_global` realised as a cross-shard scan).
    fn pop_aged_inner(&mut self, now: C, aging: C::Delta) -> Option<T> {
        let mut sh = self.shared.lock();
        if !sh.next_valve_at.map_or(true, |t| now >= t) {
            return None;
        }
        match self.global_oldest(&sh) {
            Some((_, src)) => {
                let at = match src {
                    None => sh.unbound.front().expect("live head").at,
                    Some((n, local)) => {
                        self.shards[n].lock().queues[local]
                            .front()
                            .expect("live head")
                            .at
                    }
                };
                if now.since(at) >= aging {
                    sh.next_valve_at = Some(now.advance(aging));
                    sh.count -= 1;
                    match src {
                        None => Some(sh.unbound.pop_front().expect("live head").item),
                        Some((n, local)) => Some(self.shards[n].lock().pop_local(local).item),
                    }
                } else {
                    // Nothing aged yet: the current oldest entry is the first that can
                    // age (later entries age strictly later).
                    sh.next_valve_at = Some(at.advance(aging));
                    None
                }
            }
            None => {
                sh.next_valve_at = Some(now.advance(aging));
                None
            }
        }
    }
}

impl<T, C: ReadyTime> ReadyQueues<T, C> for ShardedProcQueues<T, C> {
    fn new(map: Arc<CoreMap>) -> Self {
        ShardedProcQueues::new(map)
    }

    fn len(&self) -> usize {
        self.shared.lock().count
    }

    fn unbound_len(&self) -> usize {
        self.shared.lock().unbound.len()
    }

    fn set_domain(&mut self, cores: Option<&[CoreId]>) {
        let n = self.map.cores();
        self.shared.lock().domain = cores.and_then(|cs| {
            let mut mask = vec![false; n];
            let mut any = false;
            for &c in cs {
                if c < mask.len() {
                    mask[c] = true;
                    any = true;
                }
            }
            any.then_some(mask)
        });
    }

    fn allows(&self, core: CoreId) -> bool {
        self.shared.lock().allows(core)
    }

    fn push(&mut self, item: T, preferred: Option<usize>, now: C) {
        let mut sh = self.shared.lock();
        let seq = sh.next_seq;
        sh.next_seq += 1;
        sh.count += 1;
        let entry = Entry { item, seq, at: now };
        // Same unbound rule as ProcQueues::push: out-of-range or out-of-domain
        // preferences must stay reachable through the shared unbound FIFO.
        match preferred {
            Some(c) if c < self.map.cores() && sh.allows(c) => {
                let (n, local) = self.core_shard[c];
                let mut shard = self.shards[n].lock();
                let was_empty = shard.queues[local].is_empty();
                shard.queues[local].push_back(entry);
                if was_empty {
                    shard.register_head(seq, local);
                }
            }
            _ => sh.unbound.push_back(entry),
        }
    }

    fn pop_aged(&mut self, now: C, aging: C::Delta) -> Option<T> {
        self.pop_aged_inner(now, aging)
    }

    fn pop_affine(&mut self, core: usize) -> Option<T> {
        let mut sh = self.shared.lock();
        if !sh.allows(core) {
            return None;
        }
        let (n, local) = self.core_shard[core];
        let mut shard = self.shards[n].lock();
        if shard.queues[local].front().is_some() {
            sh.count -= 1;
            Some(shard.pop_local(local).item)
        } else {
            None
        }
    }

    fn pop_for_tiered(&mut self, core: usize, now: C, aging: C::Delta) -> Option<(T, PickTier)> {
        if !ReadyQueues::allows(self, core) {
            return None;
        }
        if let Some(t) = self.pop_aged_inner(now, aging) {
            return Some((t, PickTier::Aged));
        }
        let (node, local) = self.core_shard[core];
        let mut sh = self.shared.lock();
        {
            let mut shard = self.shards[node].lock();
            if shard.queues[local].front().is_some() {
                sh.count -= 1;
                return Some((shard.pop_local(local).item, PickTier::Affinity));
            }
            // Node tier: the own shard's oldest head competes with the unbound front by
            // enqueue order (same comparison as ProcQueues — the bound side wins the
            // impossible tie, seqs being unique).
            let node_best = shard.peek();
            let unbound_seq = sh.unbound.front().map(|e| e.seq);
            let best = match (node_best, unbound_seq) {
                (Some((s, l)), Some(us)) => Some(if us < s { None } else { Some(l) }),
                (Some((_, l)), None) => Some(Some(l)),
                (None, Some(_)) => Some(None),
                (None, None) => None,
            };
            if let Some(src) = best {
                sh.count -= 1;
                return match src {
                    Some(l) => Some((shard.pop_local(l).item, PickTier::Node)),
                    None => Some((
                        sh.unbound.pop_front().expect("live head").item,
                        PickTier::Node,
                    )),
                };
            }
        }
        // Steal-on-exhaustion: the own shard and the unbound FIFO are empty, so the
        // global oldest (if any) sits in another shard.
        let mut best: Option<(u64, usize, usize)> = None;
        for (n, s) in self.shards.iter().enumerate() {
            if n == node {
                continue;
            }
            if let Some((seq, l)) = s.lock().peek() {
                if best.map_or(true, |(b, _, _)| seq < b) {
                    best = Some((seq, n, l));
                }
            }
        }
        if let Some((_, n, l)) = best {
            sh.count -= 1;
            return Some((self.shards[n].lock().pop_local(l).item, PickTier::Remote));
        }
        None
    }
}

/// The shared SCHED_COOP policy core: per-process ready queues (any [`ReadyQueues`]
/// backing — [`ProcQueues`] by default, [`ShardedProcQueues`] for the per-node-sharded
/// variant) plus the per-process quantum ring, generic over process id, queued item and
/// time type.
///
/// `usf_nosv::policy::CoopPolicy` instantiates it as
/// `CoopCore<ProcessId, TaskMeta, Instant>`; the simulator's `CoopScheduler` as
/// `CoopCore<ProcessId, ThreadId, SimTime>`; the sharded policy via the
/// [`ShardedCoopCore`] alias. The ring/turn-passing logic is this one copy of code for
/// every backing, so the sharded pick sequence cannot drift from the reference.
#[derive(Debug)]
pub struct CoopCore<P, T, C: ReadyTime, Q: ReadyQueues<T, C> = ProcQueues<T, C>> {
    map: Arc<CoreMap>,
    queues: HashMap<P, Q>,
    /// Requested per-process placement domains (survive topology re-snapshots, which
    /// rebuild the queues).
    domains: HashMap<P, Vec<CoreId>>,
    /// Registration order; quantum rotation walks this ring.
    order: Vec<P>,
    current: usize,
    quantum: C::Delta,
    quantum_started: Option<C>,
    rotations: u64,
    /// Total queued across every process (O(1) `has_ready`/`ready_count`).
    total: usize,
    /// The queued-item type only appears through the `Q: ReadyQueues<T, _>` bound.
    _item: PhantomData<fn() -> T>,
}

/// [`CoopCore`] over per-NUMA-node-sharded ready queues ([`ShardedProcQueues`]): the
/// same ring, quantum and tier semantics, with per-shard locks and cross-shard stealing
/// on local exhaustion.
pub type ShardedCoopCore<P, T, C> = CoopCore<P, T, C, ShardedProcQueues<T, C>>;

impl<P: Copy + Eq + Hash, T, C: ReadyTime, Q: ReadyQueues<T, C>> CoopCore<P, T, C, Q> {
    /// Create a policy core for the given topology view and per-process quantum
    /// (the quantum doubles as the aging-valve window).
    pub fn new(view: &impl TopologyView, quantum: C::Delta) -> Self {
        CoopCore {
            map: Arc::new(CoreMap::from_view(view)),
            queues: HashMap::new(),
            domains: HashMap::new(),
            order: Vec::new(),
            current: 0,
            quantum,
            quantum_started: None,
            rotations: 0,
            total: 0,
            _item: PhantomData,
        }
    }

    /// Re-snapshot the topology. Queues built for a different core map are recreated
    /// empty (their entries are dropped — callers only do this before work is queued,
    /// e.g. the simulator's `init`).
    pub fn set_topology(&mut self, view: &impl TopologyView) {
        let map = Arc::new(CoreMap::from_view(view));
        if *map == *self.map {
            return;
        }
        self.map = Arc::clone(&map);
        for (pid, q) in self.queues.iter_mut() {
            self.total -= q.len();
            *q = Q::new(Arc::clone(&map));
            q.set_domain(self.domains.get(pid).map(|d| d.as_slice()));
        }
    }

    /// Restrict (or, with `None`, un-restrict) a process domain to a set of cores — the
    /// scheduler-level half of NUMA-aware placement: once set, no pop path (not even the
    /// aging valve) serves this process's entries to a core outside the set. Unknown
    /// processes are registered first; the restriction survives topology re-snapshots.
    pub fn set_process_domain(&mut self, process: P, cores: Option<Vec<CoreId>>) {
        self.register_process(process);
        match &cores {
            Some(cs) => {
                self.domains.insert(process, cs.clone());
            }
            None => {
                self.domains.remove(&process);
            }
        }
        self.queues
            .get_mut(&process)
            .expect("process just registered")
            .set_domain(cores.as_deref());
    }

    /// The placement domain of a process, if one was set.
    pub fn process_domain(&self, process: P) -> Option<&[CoreId]> {
        self.domains.get(&process).map(|d| d.as_slice())
    }

    /// The process whose quantum is currently active, if any.
    pub fn current_process(&self) -> Option<P> {
        self.order.get(self.current).copied()
    }

    /// Number of process-quantum rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Total queued items.
    pub fn ready_count(&self) -> usize {
        self.total
    }

    /// Whether anything is queued.
    pub fn has_ready(&self) -> bool {
        self.total > 0
    }

    /// Per-process ready-queue depths as `(process, bound, unbound)` — bound entries sit
    /// in per-core FIFOs, unbound entries in the process's anywhere queue. Ordered by the
    /// registration ring (deterministic), which is what the stats plane reports as the
    /// per-tier queue-depth gauges.
    pub fn queue_depths(&self) -> Vec<(P, usize, usize)> {
        self.order
            .iter()
            .filter_map(|p| {
                self.queues
                    .get(p)
                    .map(|q| (*p, q.len() - q.unbound_len(), q.unbound_len()))
            })
            .collect()
    }

    /// Whether anything is queued that `core` would be allowed to run — i.e. some
    /// process with a non-empty queue whose placement domain (if any) contains the core.
    /// Equals [`CoopCore::has_ready`] when no domains are set.
    pub fn has_ready_for(&self, core: usize) -> bool {
        self.total > 0
            && self
                .queues
                .values()
                .any(|q| !q.is_empty() && q.allows(core))
    }

    /// Register a process domain (idempotent). A placement restriction recorded for the
    /// process is (re)applied.
    pub fn register_process(&mut self, process: P) {
        if self.queues.contains_key(&process) {
            return;
        }
        let mut q = Q::new(Arc::clone(&self.map));
        q.set_domain(self.domains.get(&process).map(|d| d.as_slice()));
        self.queues.insert(process, q);
        self.order.push(process);
    }

    /// Deregister a process domain, dropping any queued entries and its placement
    /// restriction.
    pub fn deregister_process(&mut self, process: P) {
        if let Some(q) = self.queues.remove(&process) {
            self.total -= q.len();
        }
        self.domains.remove(&process);
        if let Some(pos) = self.order.iter().position(|p| *p == process) {
            self.order.remove(pos);
            if self.current >= self.order.len() {
                self.current = 0;
            }
        }
    }

    /// Enqueue a ready item for `process` (auto-registering unknown processes).
    pub fn enqueue(&mut self, process: P, item: T, preferred: Option<usize>, now: C) {
        self.register_process(process);
        self.queues
            .get_mut(&process)
            .expect("process just registered")
            .push(item, preferred, now);
        self.total += 1;
    }

    fn rotate_if_expired(&mut self, now: C) {
        if self.order.len() <= 1 {
            return;
        }
        let expired = match self.quantum_started {
            Some(start) => now.since(start) >= self.quantum,
            None => false,
        };
        if expired {
            // Advance to the next process that has ready work (or just the next process if
            // none do — the quantum restarts either way).
            let len = self.order.len();
            let mut next = (self.current + 1) % len;
            for off in 0..len {
                let cand = (self.current + 1 + off) % len;
                let pid = self.order[cand];
                if self
                    .queues
                    .get(&pid)
                    .map(|q| !q.is_empty())
                    .unwrap_or(false)
                {
                    next = cand;
                    break;
                }
            }
            if next != self.current {
                self.rotations += 1;
            }
            self.current = next;
            self.quantum_started = Some(now);
        }
    }

    /// Pick the next item an idle `core` should run: rotate the quantum ring if expired,
    /// then tiered-pop ([`ProcQueues::pop_for`]) from the current process, falling through
    /// to the other processes (which passes the turn to whichever one had work — but only
    /// when the current process is genuinely *empty*, see below).
    pub fn pick(&mut self, core: usize, now: C) -> Option<T> {
        self.pick_tiered(core, now).map(|(t, _)| t)
    }

    /// [`CoopCore::pick`], additionally reporting which tier of the tiered pop served the
    /// item. The turn-passing and quantum semantics are identical — this is the same code
    /// path, and it is what the `sched-trace` recorder and the replay harness call so a
    /// recorded pick can be checked tier-for-tier against its sim re-execution.
    pub fn pick_tiered(&mut self, core: usize, now: C) -> Option<(T, PickTier)> {
        if self.order.is_empty() {
            return None;
        }
        if self.quantum_started.is_none() {
            self.quantum_started = Some(now);
        }
        self.rotate_if_expired(now);
        // The turn passes on a fall-through only if the current process has nothing
        // queued at all. With placement domains, pop_for also returns None when this
        // *core* is outside the process's pin while work is still queued — a foreign
        // core serving another process is then a courtesy fill, not a turn steal;
        // otherwise every pick from outside the pin would reset the quantum and the
        // pinned process would only ever be served through the aging valve.
        // (Without domains, pop_for == None implies empty, so this is the old rule.)
        let current_empty = self
            .order
            .get(self.current)
            .and_then(|pid| self.queues.get(pid))
            .map_or(true, |q| q.is_empty());
        let len = self.order.len();
        for off in 0..len {
            let idx = (self.current + off) % len;
            let pid = self.order[idx];
            if let Some(q) = self.queues.get_mut(&pid) {
                // Entries older than one quantum are served oldest-first regardless of
                // placement (the starvation valve in ProcQueues::pop_for).
                if let Some((t, tier)) = q.pop_for_tiered(core, now, self.quantum) {
                    if off != 0 && current_empty {
                        // We skipped ahead because the current process had nothing ready;
                        // its turn effectively passes to this process.
                        self.current = idx;
                        self.quantum_started = Some(now);
                        self.rotations += 1;
                    }
                    self.total -= 1;
                    return Some((t, tier));
                }
            }
        }
        None
    }

    /// Affinity-only pick: serve items whose preferred core is exactly `core`, regardless
    /// of the process rotation (affinity placement is checked before quantum fairness,
    /// §4.1) — but the anti-starvation valve still comes first: a saturated dispatch that
    /// always finds affine candidates here would otherwise never reach the valve in
    /// [`ProcQueues::pop_for`] (the real nOS-V runtime has no valve-free pick path, and no
    /// user of this core must have one either).
    pub fn pick_affine(&mut self, core: usize, now: C) -> Option<T> {
        for i in 0..self.order.len() {
            let pid = self.order[i];
            if let Some(q) = self.queues.get_mut(&pid) {
                // A pinned process is skipped entirely on foreign cores — its aging valve
                // runs when one of its own cores reaches a scheduling point.
                if !q.allows(core) {
                    continue;
                }
                if let Some(t) = q.pop_aged(now, self.quantum) {
                    self.total -= 1;
                    return Some(t);
                }
                if let Some(t) = q.pop_affine(core) {
                    self.total -= 1;
                    return Some(t);
                }
            }
        }
        None
    }

    /// Aging-valve-only pick on behalf of `core`: serve an entry that has waited longer
    /// than one quantum, oldest-first, from any process whose domain allows the core.
    /// This is the cross-shard aging valve's probe into a foreign shard — the quantum
    /// ring is deliberately not rotated and the current turn is untouched, exactly like
    /// the valve tier inside `pop_for`: aged service is a fairness override, not a turn.
    /// Like [`ProcQueues::pop_aged`], probing re-arms each probed queue's valve deadline
    /// even when nothing is old enough, a side effect the sim replay re-executes.
    pub fn pick_aged_for(&mut self, core: usize, now: C) -> Option<T> {
        for i in 0..self.order.len() {
            let pid = self.order[i];
            if let Some(q) = self.queues.get_mut(&pid) {
                if !q.allows(core) {
                    continue;
                }
                if let Some(t) = q.pop_aged(now, self.quantum) {
                    self.total -= 1;
                    return Some(t);
                }
            }
        }
        None
    }
}

/// Rate limiter for the cross-shard aging valve: at most one foreign-shard aged probe per
/// `period` per shard. Same deadline discipline as the per-queue valve in
/// [`ProcQueues::pop_for`] — first call arms without firing; once armed, a call at or past
/// the deadline fires and re-arms from `now`. Driven under the owning shard's lock; the
/// sim replay keeps an identical instance per shard so probe timing replays exactly.
#[derive(Debug, Default)]
pub struct CrossValve<C: ReadyTime> {
    next_at: Option<C>,
}

impl<C: ReadyTime> CrossValve<C> {
    /// An unarmed valve.
    pub fn new() -> Self {
        CrossValve { next_at: None }
    }

    /// Tick the valve at `now`: returns whether a cross-shard probe is due. Arms on first
    /// use, re-arms `period` after every firing.
    pub fn crossed(&mut self, now: C, period: C::Delta) -> bool {
        match self.next_at {
            None => {
                self.next_at = Some(now.advance(period));
                false
            }
            Some(t) => {
                if t <= now {
                    self.next_at = Some(now.advance(period));
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(cores: usize, nodes: usize) -> Arc<CoreMap> {
        Arc::new(CoreMap::from_view(&Topology::new(cores, nodes)))
    }

    #[test]
    fn core_map_snapshots_topology() {
        let m = map(7, 3);
        assert_eq!(m.cores(), 7);
        assert_eq!(m.nodes(), 3);
        assert_eq!(m.cores_in_node(0), &[0, 1, 2]);
        assert_eq!(m.node_of(6), 2);
    }

    #[test]
    fn fifo_order_within_one_queue() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(1, 1));
        for id in 1..=5 {
            q.push(id, Some(0), 0);
        }
        let got: Vec<u32> = (0..5).map(|_| q.pop_for(0, 0, 100).unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn affinity_beats_older_node_entry() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        q.push(1, Some(2), 0);
        q.push(2, Some(0), 0);
        // Core 0 takes its affine entry even though core 2's is older.
        assert_eq!(q.pop_for(0, 0, 1_000), Some(2));
        assert_eq!(q.pop_for(2, 0, 1_000), Some(1));
    }

    #[test]
    fn node_tier_serves_oldest_of_node_and_unbound() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        q.push(1, None, 0); // unbound, oldest
        q.push(2, Some(1), 0); // same node as core 0
        assert_eq!(q.pop_for(0, 0, 1_000), Some(1), "unbound entry is older");
        assert_eq!(q.pop_for(0, 0, 1_000), Some(2));
    }

    #[test]
    fn remote_tier_serves_oldest_remote() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(6, 3));
        // Core 0 is in node 0; push remote entries out of core order.
        q.push(1, Some(4), 0); // node 2, older
        q.push(2, Some(2), 1); // node 1, newer but smaller core id
        assert_eq!(q.pop_for(0, 1, 1_000), Some(1), "oldest remote wins");
        assert_eq!(q.pop_for(0, 1, 1_000), Some(2));
    }

    #[test]
    fn out_of_range_preference_is_unbound() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(2, 1));
        q.push(7, Some(99), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_for(0, 0, 1_000), Some(7));
    }

    #[test]
    fn aging_valve_serves_oldest_once_per_window() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(2, 1));
        q.push(1, Some(1), 0); // will age
        q.push(2, Some(0), 5); // core 0's affine entry
        q.push(3, Some(1), 5);
        // At t=100 with aging=50, entry 1 has aged: the valve serves it ahead of core 0's
        // own queue.
        assert_eq!(q.pop_for(0, 100, 50), Some(1));
        // The valve is rate-limited: the next pop within the window is the plain tiered
        // pick (affinity first), even though entry 3 has also aged.
        assert_eq!(q.pop_for(0, 101, 50), Some(2));
        // After the window, the valve fires again.
        assert_eq!(q.pop_for(0, 200, 50), Some(3));
    }

    #[test]
    fn pop_aged_nothing_old_enough_sets_deadline() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(1, 1));
        q.push(1, Some(0), 10);
        assert_eq!(q.pop_aged(20, 100), None);
        // Deadline is entry age + window (110); before it the valve stays closed even for
        // aged entries (rate limit), after it the oldest is served.
        assert_eq!(q.pop_aged(109, 100), None);
        assert_eq!(q.pop_aged(115, 100), Some(1));
    }

    #[test]
    fn heap_registrations_stay_bounded() {
        // A workload that always exits at the affinity tier never consults the heaps; the
        // compaction must still bound their size.
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        q.push(0, None, 0); // ancient unbound entry pins the global minimum
        for i in 0..10_000u32 {
            q.push(i, Some(1), u64::from(i));
            assert_eq!(q.pop_affine(1), Some(i));
        }
        assert!(
            q.heap_len() <= 4 * (4 + 1) + 48,
            "heaps grew to {}",
            q.heap_len()
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_for(0, 0, 1 << 40), Some(0));
    }

    #[test]
    fn push_to_empty_queue_survives_compaction() {
        // Regression: `push` used to register the new head *before* enqueueing the entry.
        // A compaction triggered inside that registration rebuilds the heaps from the
        // queue fronts — which did not yet contain the entry — permanently dropping its
        // registration: the item stayed queued (`len() == 1`) but the valve, node and
        // remote tiers could never find it (a lost ready task in the scheduler).
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        // Accumulate stale global registrations: each push-to-empty registers a head, the
        // pop leaves that registration stale without cleaning it.
        while q.heads.len() < 2 * (4 + 1) + 16 {
            q.push(1, None, 0);
            let _ = q.pop_from(UNBOUND);
        }
        // The next registration crosses the compaction threshold mid-push.
        q.push(777, Some(3), 0);
        assert_eq!(q.len(), 1);
        // Core 0 (other NUMA node) can only reach the entry through the heaps.
        assert_eq!(q.pop_for(0, 10, 5), Some(777));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_preserves_global_order_per_tier() {
        // Stress the lazy-heap bookkeeping: pops must always return the oldest entry the
        // tier specification allows, across many interleavings.
        let mut q: ProcQueues<u64, u64> = ProcQueues::new(map(4, 2));
        let mut expected: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        for round in 0..200u64 {
            for k in 0..(round % 5 + 1) {
                let pref = match (round + k) % 6 {
                    0 => None,
                    m => Some((m as usize - 1) % 4),
                };
                q.push(seq, pref, round);
                expected.push(seq);
                seq += 1;
            }
            if round % 3 == 0 {
                // Aging window of zero: the valve serves strictly oldest-first, which makes
                // the expected order the global FIFO.
                if let Some(got) = q.pop_for((round % 4) as usize, round, 0) {
                    let want = expected.remove(0);
                    assert_eq!(got, want, "round {round}");
                }
            }
        }
        while let Some(got) = q.pop_for(0, u64::MAX - 1, 0) {
            let want = expected.remove(0);
            assert_eq!(got, want);
        }
        assert!(expected.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn coop_core_rotates_quantum() {
        let topo = Topology::single_node(1);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        core.enqueue(0, 1, None, 0);
        core.enqueue(1, 2, None, 0);
        core.enqueue(0, 3, None, 0);
        core.enqueue(1, 4, None, 0);
        assert_eq!(core.pick(0, 0), Some(1));
        assert_eq!(core.pick(0, 5), Some(3));
        // Quantum expired → process 1's turn.
        assert_eq!(core.pick(0, 15), Some(2));
        assert_eq!(core.current_process(), Some(1));
        assert_eq!(core.pick(0, 20), Some(4));
        assert!(core.rotations() >= 1);
        assert!(!core.has_ready());
    }

    #[test]
    fn coop_core_passes_turn_to_nonempty_process() {
        let topo = Topology::single_node(2);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 1_000);
        core.register_process(0);
        core.register_process(1);
        core.enqueue(1, 10, None, 0);
        assert_eq!(core.pick(0, 0), Some(10));
        assert!(core.rotations() >= 1);
        assert_eq!(core.ready_count(), 0);
    }

    #[test]
    fn coop_core_deregister_drops_entries() {
        let topo = Topology::single_node(1);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        core.enqueue(0, 1, None, 0);
        core.enqueue(1, 2, None, 0);
        assert_eq!(core.ready_count(), 2);
        core.deregister_process(0);
        assert_eq!(core.ready_count(), 1);
        assert_eq!(core.pick(0, 0), Some(2));
    }

    #[test]
    fn coop_core_pick_affine_respects_valve() {
        let topo = Topology::single_node(2);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 50);
        core.enqueue(0, 1, Some(1), 0); // will age
        core.enqueue(0, 2, Some(0), 60);
        // At t=100 entry 1 (waiting 100 ≥ 50) must be served by the valve even though the
        // affine pick for core 0 would find entry 2.
        assert_eq!(core.pick_affine(0, 100), Some(1));
        assert_eq!(core.pick_affine(0, 101), Some(2));
        assert_eq!(core.pick_affine(0, 102), None);
    }

    #[test]
    fn domain_restricts_every_pop_tier() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        q.set_domain(Some(&[0, 1])); // node 0 only
        q.push(1, Some(0), 0); // affine inside the domain
        q.push(2, None, 0); // unbound
                            // A core outside the domain gets nothing from any tier — even with an aged entry.
        assert_eq!(q.pop_for(2, 1_000_000, 1), None);
        assert_eq!(q.pop_affine(2), None);
        // Domain cores are served normally (valve first at aged times).
        assert_eq!(q.pop_for(1, 1_000_000, 1), Some(1));
        assert_eq!(q.pop_for(0, 1_000_000, 1), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn domain_clamps_out_of_domain_preference_to_unbound() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(4, 2));
        q.set_domain(Some(&[2, 3]));
        // Stale affinity to core 0 (outside the domain): must still be reachable by the
        // domain cores through the unbound queue.
        q.push(7, Some(0), 0);
        assert_eq!(q.pop_for(2, 0, 1_000), Some(7));
    }

    #[test]
    fn empty_or_out_of_range_domain_is_unrestricted() {
        let mut q: ProcQueues<u32, u64> = ProcQueues::new(map(2, 1));
        q.set_domain(Some(&[99])); // fully out of range: ignored, not a dead pin
        q.push(1, None, 0);
        assert_eq!(q.pop_for(0, 0, 1_000), Some(1));
        q.set_domain(Some(&[]));
        q.push(2, None, 0);
        assert_eq!(q.pop_for(1, 0, 1_000), Some(2));
    }

    #[test]
    fn coop_core_process_domains_route_picks() {
        let topo = Topology::new(4, 2);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        core.set_process_domain(0, Some(vec![0, 1]));
        core.set_process_domain(1, Some(vec![2, 3]));
        core.enqueue(0, 100, None, 0);
        core.enqueue(1, 200, None, 0);
        // Each core only serves the process pinned to its node, regardless of rotation.
        assert_eq!(core.pick(2, 0), Some(200));
        assert_eq!(core.pick(0, 0), Some(100));
        assert_eq!(core.process_domain(0), Some(&[0usize, 1][..]));
        // pick_affine on a foreign core must not fire process 0's aging valve.
        core.enqueue(0, 101, Some(0), 0);
        assert_eq!(core.pick_affine(3, 1_000_000), None);
        assert_eq!(core.pick_affine(0, 1_000_000), Some(101));
    }

    #[test]
    fn foreign_core_pick_does_not_steal_pinned_quantum() {
        // Regression: process 0 is pinned to node 0 and holds the quantum with queued
        // work; a pick from a node-1 core serves process 1 (courtesy fill) but must NOT
        // pass the turn — the pinned process would otherwise only ever be served through
        // the aging valve while any foreign core is active.
        let topo = Topology::new(4, 2);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        core.set_process_domain(0, Some(vec![0, 1]));
        core.register_process(1);
        core.enqueue(0, 100, None, 0);
        core.enqueue(0, 101, None, 0);
        core.enqueue(1, 200, None, 0);
        assert_eq!(core.pick(2, 1), Some(200), "foreign core serves process 1");
        assert_eq!(
            core.current_process(),
            Some(0),
            "the pinned process keeps its quantum"
        );
        assert_eq!(core.rotations(), 0);
        // Its own cores still serve it inside the quantum.
        assert_eq!(core.pick(0, 2), Some(100));
        assert_eq!(core.pick(1, 3), Some(101));
        // Once it IS empty, a fall-through passes the turn as before.
        core.enqueue(1, 201, None, 4);
        assert_eq!(core.pick(2, 5), Some(201));
        assert_eq!(core.current_process(), Some(1));
    }

    #[test]
    fn has_ready_for_respects_domains() {
        let topo = Topology::new(4, 2);
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        core.set_process_domain(0, Some(vec![2, 3]));
        assert!(!core.has_ready_for(0));
        core.enqueue(0, 1, None, 0);
        assert!(core.has_ready());
        assert!(!core.has_ready_for(0), "core 0 is outside the only pin");
        assert!(core.has_ready_for(2));
        core.enqueue(1, 2, None, 0); // unrestricted process
        assert!(core.has_ready_for(0));
    }

    #[test]
    fn coop_core_domains_survive_topology_resnapshot() {
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&Topology::new(4, 2), 10);
        core.set_process_domain(0, Some(vec![2, 3]));
        core.set_topology(&Topology::new(8, 2)); // queues rebuilt
        core.enqueue(0, 1, None, 0);
        assert_eq!(core.pick(0, 0), None, "domain must survive the rebuild");
        assert_eq!(core.pick(2, 0), Some(1));
        // Clearing the domain un-restricts.
        core.set_process_domain(0, None);
        core.enqueue(0, 2, None, 0);
        assert_eq!(core.pick(7, 0), Some(2));
    }

    #[test]
    fn coop_core_set_topology_rebuilds() {
        let mut core: CoopCore<u32, u64, u64> = CoopCore::new(&Topology::single_node(1), 10);
        core.register_process(0);
        core.set_topology(&Topology::new(4, 2));
        core.enqueue(0, 1, Some(3), 0);
        assert_eq!(core.pick(3, 0), Some(1));
        // Same topology again is a no-op (queues kept).
        core.enqueue(0, 2, Some(3), 0);
        core.set_topology(&Topology::new(4, 2));
        assert_eq!(core.ready_count(), 1);
    }

    // -- per-node shards ----------------------------------------------------------------

    #[test]
    fn sharded_fifo_order_within_one_queue() {
        let mut q: ShardedProcQueues<u32, u64> = ShardedProcQueues::new(map(1, 1));
        for id in 1..=5 {
            q.push(id, Some(0), 0);
        }
        let got: Vec<u32> = (0..5)
            .map(|_| q.pop_for_tiered(0, 0, 100).unwrap().0)
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_tiers_follow_shard_ownership() {
        let mut q: ShardedProcQueues<u32, u64> = ShardedProcQueues::new(map(4, 2));
        assert_eq!(q.num_shards(), 2);
        q.push(1, Some(2), 0); // shard 1, older
        q.push(2, Some(0), 1); // shard 0, core 0's affine entry
        q.push(3, None, 2); // unbound
                            // Affinity (own shard) beats the older remote-shard entry and the unbound entry.
        assert_eq!(q.pop_for_tiered(0, 2, 1_000), Some((2, PickTier::Affinity)));
        // Own shard exhausted: the node tier serves the unbound front...
        assert_eq!(q.pop_for_tiered(0, 2, 1_000), Some((3, PickTier::Node)));
        // ...and only then does the remote tier steal from shard 1.
        assert_eq!(q.pop_for_tiered(0, 2, 1_000), Some((1, PickTier::Remote)));
        assert!(q.is_empty());
    }

    #[test]
    fn sharded_steals_oldest_across_remote_shards() {
        let mut q: ShardedProcQueues<u32, u64> = ShardedProcQueues::new(map(6, 3));
        q.push(1, Some(4), 0); // shard 2, older
        q.push(2, Some(2), 1); // shard 1, newer but smaller core id
        assert_eq!(q.pop_for_tiered(0, 1, 1_000), Some((1, PickTier::Remote)));
        assert_eq!(q.pop_for_tiered(0, 1, 1_000), Some((2, PickTier::Remote)));
    }

    #[test]
    fn sharded_valve_serves_oldest_once_per_window() {
        let mut q: ShardedProcQueues<u32, u64> = ShardedProcQueues::new(map(4, 2));
        q.push(1, Some(2), 0); // remote shard, will age
        q.push(2, Some(0), 5); // core 0's affine entry
        q.push(3, Some(2), 5);
        // The valve crosses shard boundaries: entry 1 (aged, shard 1) is served to core 0
        // ahead of core 0's own affine entry.
        assert_eq!(q.pop_for_tiered(0, 100, 50), Some((1, PickTier::Aged)));
        // Rate limit: within the window the plain tiers run (affinity first).
        assert_eq!(q.pop_for_tiered(0, 101, 50), Some((2, PickTier::Affinity)));
        // After the window the valve fires again.
        assert_eq!(q.pop_for_tiered(0, 200, 50), Some((3, PickTier::Aged)));
    }

    #[test]
    fn sharded_domain_restricts_every_pop_tier() {
        let mut q: ShardedProcQueues<u32, u64> = ShardedProcQueues::new(map(4, 2));
        q.set_domain(Some(&[0, 1])); // node 0 only
        q.push(1, Some(0), 0);
        q.push(2, None, 0);
        assert_eq!(q.pop_for_tiered(2, 1_000_000, 1), None);
        assert_eq!(q.pop_affine(2), None);
        assert_eq!(q.pop_for_tiered(1, 1_000_000, 1).map(|(t, _)| t), Some(1));
        assert_eq!(q.pop_for_tiered(0, 1_000_000, 1).map(|(t, _)| t), Some(2));
        assert!(q.is_empty());
        // An out-of-domain preference is clamped to unbound, like the flat queues.
        q.set_domain(Some(&[2, 3]));
        q.push(7, Some(0), 0);
        assert_eq!(q.unbound_len(), 1);
        assert_eq!(q.pop_for_tiered(2, 0, 1_000).map(|(t, _)| t), Some(7));
    }

    /// The load-bearing equivalence: the sharded backing must reproduce the flat
    /// [`ProcQueues`] pick-for-pick (same item, same tier) across interleavings that
    /// exercise every tier — affinity, node-vs-unbound tie-breaks, remote steals and
    /// aging-valve firings. The proptest sweep in `tests/readyq_equivalence.rs` widens
    /// this; the deterministic version here keeps the invariant in the unit tier.
    #[test]
    fn sharded_matches_flat_pick_for_pick() {
        for &(cores, nodes) in &[(4usize, 2usize), (6, 3), (2, 1), (5, 2)] {
            let mut flat: ProcQueues<u64, u64> = ProcQueues::new(map(cores, nodes));
            let mut sharded: ShardedProcQueues<u64, u64> =
                ShardedProcQueues::new(map(cores, nodes));
            let mut rng: u64 = 0x9e37_79b9 ^ (cores as u64) << 8 ^ nodes as u64;
            let mut next = move || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng >> 33
            };
            let mut item = 0u64;
            for step in 0..600u64 {
                let now = step * 7;
                if next() % 3 != 0 {
                    let pref = match next() % (cores as u64 + 2) {
                        p if (p as usize) < cores => Some(p as usize),
                        p if p == cores as u64 => None,
                        _ => Some(cores + 10), // out of range → unbound
                    };
                    flat.push(item, pref, now);
                    sharded.push(item, pref, now);
                    item += 1;
                } else {
                    let core = (next() % cores as u64) as usize;
                    let aging = [0u64, 13, 50, 1 << 40][(next() % 4) as usize];
                    assert_eq!(
                        ProcQueues::pop_for_tiered(&mut flat, core, now, aging),
                        sharded.pop_for_tiered(core, now, aging),
                        "cores={cores} nodes={nodes} step={step} core={core} aging={aging}"
                    );
                }
                assert_eq!(flat.len(), sharded.len());
                assert_eq!(flat.unbound_len(), sharded.unbound_len());
            }
            // Drain both to empty, still in lockstep.
            loop {
                let a = ProcQueues::pop_for_tiered(&mut flat, 0, u64::MAX - 1, 1);
                let b = sharded.pop_for_tiered(0, u64::MAX - 1, 1);
                assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            assert!(sharded.is_empty());
        }
    }

    #[test]
    fn sharded_coop_core_matches_unsharded() {
        // The same CoopCore generic drives both backings, so rotation/turn-passing state
        // cannot drift structurally — but the queue backing could. Pin the pick sequence.
        let topo = Topology::new(6, 3);
        let mut a: CoopCore<u32, u64, u64> = CoopCore::new(&topo, 10);
        let mut b: ShardedCoopCore<u32, u64, u64> = ShardedCoopCore::new(&topo, 10);
        for p in 0..3u32 {
            a.register_process(p);
            b.register_process(p);
        }
        a.set_process_domain(2, Some(vec![4, 5])); // pin process 2 to node 2
        b.set_process_domain(2, Some(vec![4, 5]));
        let mut item = 0u64;
        for step in 0..400u64 {
            let now = step;
            if step % 3 != 2 {
                let process = (step % 3) as u32;
                let pref = match step % 7 {
                    6 => None,
                    p => Some((p as usize) % 6),
                };
                a.enqueue(process, item, pref, now);
                b.enqueue(process, item, pref, now);
                item += 1;
            } else {
                let core = (step % 6) as usize;
                assert_eq!(
                    a.pick_tiered(core, now),
                    b.pick_tiered(core, now),
                    "step {step}"
                );
                assert_eq!(a.current_process(), b.current_process());
                assert_eq!(a.rotations(), b.rotations());
            }
        }
        while a.has_ready() || b.has_ready() {
            assert_eq!(
                a.pick_tiered(0, u64::MAX - 1),
                b.pick_tiered(0, u64::MAX - 1)
            );
        }
        assert_eq!(a.queue_depths(), b.queue_depths());
    }

    #[test]
    fn sharded_coop_core_rotates_quantum() {
        let topo = Topology::single_node(1);
        let mut core: ShardedCoopCore<u32, u64, u64> = ShardedCoopCore::new(&topo, 10);
        core.enqueue(0, 1, None, 0);
        core.enqueue(1, 2, None, 0);
        core.enqueue(0, 3, None, 0);
        core.enqueue(1, 4, None, 0);
        assert_eq!(core.pick(0, 0), Some(1));
        assert_eq!(core.pick(0, 5), Some(3));
        assert_eq!(core.pick(0, 15), Some(2));
        assert_eq!(core.current_process(), Some(1));
        assert_eq!(core.pick(0, 20), Some(4));
        assert!(core.rotations() >= 1);
        assert!(!core.has_ready());
    }
}
