//! Tasks — the schedulable entity of the substrate.
//!
//! In the USF use case (glibcv, §4.2 of the paper) every application thread is converted
//! into a worker with exactly one associated task, and the task stays bound to that worker
//! for its whole life. That is what keeps thread-local storage working. The task carries
//! the scheduling state: which core it currently holds (if any), where it last ran (its
//! preferred core), and a small per-task "grant" slot through which the scheduler hands it
//! a core.

use crate::process::{ProcCell, ProcessId};
use crate::topology::CoreId;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a task, unique within a scheduler instance.
pub type TaskId = u64;

/// Shared reference to a task.
pub type TaskRef = Arc<Task>;

/// Sentinel for "no preferred core recorded yet".
const NO_CORE: usize = usize::MAX;

/// Lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Created but never submitted.
    Created,
    /// Ready and waiting in the scheduler queues.
    Ready,
    /// Currently granted a core.
    Running,
    /// Blocked at a scheduling point (pause / timed wait).
    Blocked,
    /// Finished (detached).
    Finished,
}

/// Outcome of a timed wait ([`crate::instance::TaskHandle::waitfor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The task was woken by a submit before the timeout elapsed.
    Woken,
    /// The timeout elapsed; the task re-submitted itself and was rescheduled.
    TimedOut,
}

/// The per-task slot through which the scheduler communicates with the task's worker.
#[derive(Debug)]
pub(crate) struct GrantSlot {
    /// Core currently granted to (held by) the task. `Some` means the task occupies a core.
    pub granted: Option<CoreId>,
    /// Whether the task sits in the policy's ready queues.
    pub queued: bool,
    /// Counted wake-ups: submits that arrived while the task still held its core. The next
    /// pause consumes one instead of blocking (nOS-V's event counter, avoids lost wake-ups
    /// in the Listing 1 pattern).
    pub pending_wakeups: u32,
    /// Lifecycle state (kept here so it is updated under the same lock as the grant).
    pub state: TaskState,
    /// When set, the scheduler no longer manages this task: any wait returns immediately and
    /// the task runs as a plain OS thread. Used on scheduler shutdown as a safety valve so
    /// an application bug can never leave threads parked forever.
    pub released: bool,
    /// When the task last turned ready (set by `mark_ready`/yield-requeue, consumed by the
    /// grant): the start of the enqueue→grant (wake-latency) stage histogram.
    pub ready_at: Option<Instant>,
    /// When the current grant was published (set by the grant, consumed by the woken
    /// worker): the start of the grant→first-run (dispatch-latency) stage histogram.
    pub dispatched_at: Option<Instant>,
}

/// Per-task counters (diagnostics).
#[derive(Debug, Default)]
pub struct TaskStats {
    /// Times this task was granted a core.
    pub grants: AtomicU64,
    /// Times this task blocked (pause / timed wait).
    pub blocks: AtomicU64,
    /// Times this task voluntarily yielded.
    pub yields: AtomicU64,
}

/// A schedulable task. See the module documentation.
#[derive(Debug)]
pub struct Task {
    id: TaskId,
    process: ProcessId,
    /// Liveness/domain cell of the owning process; lets shard-local scheduling paths check
    /// process state without the global process table.
    proc_cell: Arc<ProcCell>,
    label: Option<String>,
    /// Last core this task ran on; used as the preferred core by affinity-aware policies.
    pref_core: AtomicUsize,
    pub(crate) grant: Mutex<GrantSlot>,
    pub(crate) grant_cv: Condvar,
    /// Creation timestamp (diagnostics).
    created_at: Instant,
    /// Per-task counters.
    pub stats: TaskStats,
}

impl Task {
    /// Create a task in the [`TaskState::Created`] state.
    pub(crate) fn new(
        id: TaskId,
        process: ProcessId,
        proc_cell: Arc<ProcCell>,
        label: Option<String>,
    ) -> TaskRef {
        Arc::new(Task {
            id,
            process,
            proc_cell,
            label,
            pref_core: AtomicUsize::new(NO_CORE),
            grant: Mutex::new(GrantSlot {
                granted: None,
                queued: false,
                pending_wakeups: 0,
                state: TaskState::Created,
                released: false,
                ready_at: None,
                dispatched_at: None,
            }),
            grant_cv: Condvar::new(),
            created_at: Instant::now(),
            stats: TaskStats::default(),
        })
    }

    /// Task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Process domain the task belongs to.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Whether the owning process is still registered (lock-free; see [`ProcCell`]).
    pub(crate) fn proc_alive(&self) -> bool {
        self.proc_cell.is_alive()
    }

    /// The owning process's placement domain, if restricted.
    pub(crate) fn proc_domain(&self) -> Option<Vec<CoreId>> {
        self.proc_cell.domain()
    }

    /// Whether the task has been released from scheduler control (detach, kill, shutdown).
    /// Serves as the shard-local staleness check: a released task's intake entries and
    /// queued placeholders are dead and must only reconcile the ready gauge.
    pub(crate) fn is_released(&self) -> bool {
        self.grant.lock().released
    }

    /// Optional human-readable label.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Time at which the task was created.
    pub fn created_at(&self) -> Instant {
        self.created_at
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.grant.lock().state
    }

    /// Core the task currently holds, if any.
    pub fn current_core(&self) -> Option<CoreId> {
        self.grant.lock().granted
    }

    /// Preferred core: the core the task last ran on, if any.
    pub fn preferred_core(&self) -> Option<CoreId> {
        let c = self.pref_core.load(Ordering::Relaxed);
        if c == NO_CORE {
            None
        } else {
            Some(c)
        }
    }

    /// Record the core the task was just granted (becomes the new preference).
    pub(crate) fn record_core(&self, core: CoreId) {
        self.pref_core.store(core, Ordering::Relaxed);
    }

    /// Release the task from scheduler control if it is neither running nor already
    /// released — the deregister safety valve: a task not holding a core can never be
    /// woken through a purged process again. Returns `true` when a waiter may be parked
    /// on the grant condvar; the caller owes it a `grant_cv` notification, fired only
    /// after every lock (scheduler and grant) has been dropped — never from under a held
    /// guard, or the woken worker contends with its waker (collect-then-notify; see the
    /// convoy discussion in `scheduler.rs`).
    pub(crate) fn release_if_waiting(&self) -> bool {
        let mut g = self.grant.lock();
        if g.granted.is_some() || g.released {
            return false;
        }
        g.queued = false;
        g.released = true;
        true
    }

    /// Release the task from scheduler control unless it already was (dead-process intake
    /// entries, a `submit_locked` against a purged process). Returns whether a
    /// notification is owed, under the same collect-then-notify contract as
    /// [`Task::release_if_waiting`].
    pub(crate) fn release_if_unreleased(&self) -> bool {
        let mut g = self.grant.lock();
        if g.released {
            return false;
        }
        g.released = true;
        true
    }

    /// Wait (blocking the calling OS thread) until the scheduler grants this task a core, or
    /// until the task is released from scheduler control. Returns the granted core, or
    /// `None` if released. Production paths wait through [`Task::wait_grant_observed`] so
    /// the dispatch-latency stage is recorded; this unrecorded variant serves the tests.
    #[cfg(test)]
    pub(crate) fn wait_grant(&self) -> Option<CoreId> {
        let mut g = self.grant.lock();
        loop {
            if let Some(core) = g.granted {
                return Some(core);
            }
            if g.released {
                return None;
            }
            self.grant_cv.wait(&mut g);
        }
    }

    /// [`Task::wait_grant`] that additionally reports the grant→first-run (dispatch)
    /// latency when the grant stamped one: the elapsed time between the scheduler
    /// publishing the grant and this worker observing it, together with the granted core
    /// so the caller can attribute the sample per NUMA node. The scheduler's blocking
    /// scheduling points all wait through this variant.
    pub(crate) fn wait_grant_observed(&self, record: impl Fn(CoreId, Duration)) -> Option<CoreId> {
        let mut g = self.grant.lock();
        loop {
            if let Some(core) = g.granted {
                if let Some(t0) = g.dispatched_at.take() {
                    record(core, t0.elapsed());
                }
                return Some(core);
            }
            if g.released {
                return None;
            }
            self.grant_cv.wait(&mut g);
        }
    }

    /// Timed variant of [`Task::wait_grant`]: waits until `deadline`. Returns `Some(core)` if
    /// granted (or `None` inside `Some` semantics is not needed — released counts as granted
    /// for the caller), `None` on timeout. Test-only, like [`Task::wait_grant`].
    #[cfg(test)]
    pub(crate) fn wait_grant_until(&self, deadline: Instant) -> Option<Option<CoreId>> {
        let mut g = self.grant.lock();
        loop {
            if let Some(core) = g.granted {
                return Some(Some(core));
            }
            if g.released {
                return Some(None);
            }
            if self.grant_cv.wait_until(&mut g, deadline).timed_out() {
                // Re-check the predicate one final time: the grant may have arrived between
                // the timeout and re-acquiring the lock.
                if let Some(core) = g.granted {
                    return Some(Some(core));
                }
                if g.released {
                    return Some(None);
                }
                return None;
            }
        }
    }

    /// [`Task::wait_grant_until`] with dispatch-latency recording (see
    /// [`Task::wait_grant_observed`]).
    pub(crate) fn wait_grant_until_observed(
        &self,
        deadline: Instant,
        record: impl Fn(CoreId, Duration),
    ) -> Option<Option<CoreId>> {
        let mut g = self.grant.lock();
        loop {
            if let Some(core) = g.granted {
                if let Some(t0) = g.dispatched_at.take() {
                    record(core, t0.elapsed());
                }
                return Some(Some(core));
            }
            if g.released {
                return Some(None);
            }
            if self.grant_cv.wait_until(&mut g, deadline).timed_out() {
                if let Some(core) = g.granted {
                    if let Some(t0) = g.dispatched_at.take() {
                        record(core, t0.elapsed());
                    }
                    return Some(Some(core));
                }
                if g.released {
                    return Some(None);
                }
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn new_task_is_created_state_without_core() {
        let t = Task::new(7, 1, ProcCell::new(), Some("t".into()));
        assert_eq!(t.id(), 7);
        assert_eq!(t.process(), 1);
        assert_eq!(t.label(), Some("t"));
        assert_eq!(t.state(), TaskState::Created);
        assert_eq!(t.current_core(), None);
        assert_eq!(t.preferred_core(), None);
    }

    #[test]
    fn record_core_sets_preference() {
        let t = Task::new(1, 0, ProcCell::new(), None);
        t.record_core(3);
        assert_eq!(t.preferred_core(), Some(3));
    }

    #[test]
    fn wait_grant_until_times_out_when_never_granted() {
        let t = Task::new(1, 0, ProcCell::new(), None);
        let r = t.wait_grant_until(Instant::now() + Duration::from_millis(10));
        assert!(r.is_none());
    }

    #[test]
    fn wait_grant_returns_after_grant_from_other_thread() {
        let t = Task::new(1, 0, ProcCell::new(), None);
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || t2.wait_grant());
        std::thread::sleep(Duration::from_millis(20));
        {
            let mut g = t.grant.lock();
            g.granted = Some(5);
            g.state = TaskState::Running;
            t.grant_cv.notify_one();
        }
        assert_eq!(h.join().unwrap(), Some(5));
    }

    #[test]
    fn released_task_wait_returns_none() {
        let t = Task::new(1, 0, ProcCell::new(), None);
        {
            let mut g = t.grant.lock();
            g.released = true;
        }
        assert_eq!(t.wait_grant(), None);
        assert_eq!(
            t.wait_grant_until(Instant::now() + Duration::from_millis(1)),
            Some(None)
        );
    }
}
