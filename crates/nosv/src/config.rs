//! Scheduler configuration.

use crate::policy::{CoopPolicy, FifoPolicy, Policy, ShardedCoopPolicy};
use crate::topology::Topology;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Factory building a [`Policy`] from the instance configuration.
pub type PolicyFactory = Arc<dyn Fn(&NosvConfig) -> Box<dyn Policy> + Send + Sync>;

/// Which scheduling policy a [`crate::scheduler::Scheduler`] should install.
#[derive(Clone)]
pub enum PolicyKind {
    /// The paper's SCHED_COOP selection rule: per-process per-core FIFO queues, affinity →
    /// NUMA → anywhere placement, per-process quantum evaluated at scheduling points.
    Coop,
    /// SCHED_COOP over the per-NUMA-node sharded ready-queue backing: identical pick
    /// sequences (pinned by the `readyq_equivalence` tests), but queue storage split into
    /// per-node shards with cross-shard stealing only on local exhaustion.
    CoopSharded,
    /// SCHED_COOP with the *scheduler state itself* split along the NUMA shard boundary:
    /// one independently locked `ShardState` (core slots + a full SCHED_COOP ready-queue
    /// core) per node, cross-shard work reached only through steal-on-exhaustion and the
    /// rate-limited cross-shard aging valve. Same-node scheduling points take only their
    /// shard lock (see the lock-hierarchy table in DESIGN.md).
    CoopSplit,
    /// A single global FIFO ignoring affinity and process quanta. Used as an ablation of the
    /// locality-aware design and as an example of a user-defined policy.
    Fifo,
    /// A user-supplied policy factory (USF is a *framework*: ad-hoc policies are the point).
    Custom(PolicyFactory),
}

impl fmt::Debug for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyKind::Coop => write!(f, "Coop"),
            PolicyKind::CoopSharded => write!(f, "CoopSharded"),
            PolicyKind::CoopSplit => write!(f, "CoopSplit"),
            PolicyKind::Fifo => write!(f, "Fifo"),
            PolicyKind::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

impl PolicyKind {
    /// Instantiate the policy object for this kind.
    pub fn build(&self, config: &NosvConfig) -> Box<dyn Policy> {
        match self {
            PolicyKind::Coop => Box::new(CoopPolicy::new(
                config.topology.clone(),
                config.process_quantum,
            )),
            PolicyKind::CoopSharded => Box::new(ShardedCoopPolicy::new(
                config.topology.clone(),
                config.process_quantum,
            )),
            // The split-lock scheduler instantiates one of these per shard; each shard's
            // policy is a plain SCHED_COOP core over the full topology (a shard can pick
            // for a foreign core when stolen from), the split living in `scheduler.rs`.
            PolicyKind::CoopSplit => Box::new(CoopPolicy::new(
                config.topology.clone(),
                config.process_quantum,
            )),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Custom(factory) => factory(config),
        }
    }
}

/// Configuration of a scheduler instance.
///
/// Mirrors the nOS-V configuration file; the defaults follow the paper (§4.1): a 20 ms
/// per-process quantum and the cooperative policy.
#[derive(Debug, Clone)]
pub struct NosvConfig {
    /// Virtual core topology managed by the scheduler.
    pub topology: Topology,
    /// Per-process quantum evaluated at scheduling points (default 20 ms).
    pub process_quantum: Duration,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Default slice used by timed waits when the caller does not provide one
    /// (the paper's poll/epoll integration re-checks every 5 ms).
    pub default_wait_slice: Duration,
}

impl NosvConfig {
    /// Configuration with the detected host parallelism, one NUMA node and default policy.
    pub fn detect() -> Self {
        NosvConfig::with_topology(Topology::detect())
    }

    /// Configuration with `cores` cores in a single NUMA node.
    pub fn with_cores(cores: usize) -> Self {
        NosvConfig::with_topology(Topology::single_node(cores))
    }

    /// Configuration with an explicit topology.
    pub fn with_topology(topology: Topology) -> Self {
        NosvConfig {
            topology,
            process_quantum: Duration::from_millis(20),
            policy: PolicyKind::Coop,
            default_wait_slice: Duration::from_millis(5),
        }
    }

    /// Set the per-process quantum.
    pub fn quantum(mut self, quantum: Duration) -> Self {
        self.process_quantum = quantum;
        self
    }

    /// Set the scheduling policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Set the default timed-wait slice.
    pub fn wait_slice(mut self, slice: Duration) -> Self {
        self.default_wait_slice = slice;
        self
    }
}

impl Default for NosvConfig {
    fn default() -> Self {
        NosvConfig::detect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_paper() {
        let cfg = NosvConfig::with_cores(4);
        assert_eq!(cfg.process_quantum, Duration::from_millis(20));
        assert_eq!(cfg.default_wait_slice, Duration::from_millis(5));
        assert!(matches!(cfg.policy, PolicyKind::Coop));
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = NosvConfig::with_cores(2)
            .quantum(Duration::from_millis(5))
            .policy(PolicyKind::Fifo)
            .wait_slice(Duration::from_millis(1));
        assert_eq!(cfg.process_quantum, Duration::from_millis(5));
        assert!(matches!(cfg.policy, PolicyKind::Fifo));
        assert_eq!(cfg.default_wait_slice, Duration::from_millis(1));
    }

    #[test]
    fn policy_kind_builds_expected_policies() {
        let cfg = NosvConfig::with_cores(2);
        assert_eq!(PolicyKind::Coop.build(&cfg).name(), "sched_coop");
        assert_eq!(
            PolicyKind::CoopSharded.build(&cfg).name(),
            "sched_coop_sharded"
        );
        // Per-shard building block of the split-lock scheduler: a plain SCHED_COOP core.
        assert_eq!(PolicyKind::CoopSplit.build(&cfg).name(), "sched_coop");
        assert_eq!(PolicyKind::Fifo.build(&cfg).name(), "fifo");
        let custom = PolicyKind::Custom(Arc::new(|_cfg: &NosvConfig| {
            Box::new(FifoPolicy::new()) as Box<dyn Policy>
        }));
        assert_eq!(custom.build(&cfg).name(), "fifo");
        assert!(format!("{custom:?}").contains("Custom"));
    }
}
