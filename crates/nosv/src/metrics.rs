//! Scheduler metrics.
//!
//! SCHED_COOP's claimed benefit is fewer involuntary context switches and less scheduling
//! noise; the counters here are what the examples, tests and benches use to verify that the
//! cooperative scheduler behaves as described (e.g. zero preemptions, high affinity hit
//! rates, bounded worker swaps).

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters updated by the scheduler. All counters use relaxed ordering — they are
/// diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct SchedulerMetrics {
    /// Tasks submitted (made ready) via `nosv_submit` or attach.
    pub submits: AtomicU64,
    /// Submits that found the target task still holding a core (counted wake-ups).
    pub pending_wakeups: AtomicU64,
    /// Submits dropped because the task was already queued.
    pub redundant_submits: AtomicU64,
    /// Submits published through the lock-free intake stack (the fast path: one CAS, no
    /// scheduler-lock acquisition).
    pub intake_submits: AtomicU64,
    /// Scheduler-section lock acquisitions — shard locks and the global section combined
    /// (debug counter). Lets tests and the `sched_stress` harness verify that the submit
    /// fast path never touches any scheduler lock.
    pub lock_acquisitions: AtomicU64,
    /// Global-section lock acquisitions only (process/task tables, id counters, shutdown).
    /// Under the split-lock scheduler the steady-state churn window must record zero of
    /// these: same-node scheduling points stay entirely on their shard lock.
    pub global_lock_acquisitions: AtomicU64,
    /// `nosv_pause` calls that actually blocked (released their core).
    pub pauses: AtomicU64,
    /// `nosv_pause` calls satisfied immediately by a counted wake-up.
    pub pauses_elided: AtomicU64,
    /// Voluntary yields that switched to another task.
    pub yields: AtomicU64,
    /// Voluntary yields that kept the core because nothing else was ready.
    pub yields_noop: AtomicU64,
    /// Timed waits started.
    pub waitfors: AtomicU64,
    /// Timed waits that expired (and re-submitted their task).
    pub waitfor_timeouts: AtomicU64,
    /// Threads attached as workers.
    pub attaches: AtomicU64,
    /// Workers detached.
    pub detaches: AtomicU64,
    /// Core grants delivered to tasks (worker swaps + initial placements).
    pub grants: AtomicU64,
    /// Grants on the task's preferred core.
    pub affinity_hits: AtomicU64,
    /// Grants on a different core of the preferred core's NUMA node.
    pub numa_hits: AtomicU64,
    /// Grants on a remote NUMA node (or with no preference recorded).
    pub remote_grants: AtomicU64,
    /// Process-quantum rotations performed by the policy.
    pub process_rotations: AtomicU64,
    /// Non-progressing cores flagged by [`crate::scheduler::Scheduler::watchdog_scan`]
    /// (at most once per grant).
    pub stalls_detected: AtomicU64,
    /// Processes forcibly reclaimed via [`crate::scheduler::Scheduler::kill_process`].
    pub processes_killed: AtomicU64,
    /// Tasks reclaimed (released / evicted) by `kill_process`.
    pub tasks_reclaimed: AtomicU64,
    /// Fault-site firings injected by an installed [`crate::faults::FaultState`]
    /// (always 0 without the `fault-inject` feature).
    pub faults_injected: AtomicU64,
}

/// Plain-old-data snapshot of [`SchedulerMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// See [`SchedulerMetrics::submits`].
    pub submits: u64,
    /// See [`SchedulerMetrics::pending_wakeups`].
    pub pending_wakeups: u64,
    /// See [`SchedulerMetrics::redundant_submits`].
    pub redundant_submits: u64,
    /// See [`SchedulerMetrics::intake_submits`].
    pub intake_submits: u64,
    /// See [`SchedulerMetrics::lock_acquisitions`].
    pub lock_acquisitions: u64,
    /// See [`SchedulerMetrics::global_lock_acquisitions`].
    pub global_lock_acquisitions: u64,
    /// See [`SchedulerMetrics::pauses`].
    pub pauses: u64,
    /// See [`SchedulerMetrics::pauses_elided`].
    pub pauses_elided: u64,
    /// See [`SchedulerMetrics::yields`].
    pub yields: u64,
    /// See [`SchedulerMetrics::yields_noop`].
    pub yields_noop: u64,
    /// See [`SchedulerMetrics::waitfors`].
    pub waitfors: u64,
    /// See [`SchedulerMetrics::waitfor_timeouts`].
    pub waitfor_timeouts: u64,
    /// See [`SchedulerMetrics::attaches`].
    pub attaches: u64,
    /// See [`SchedulerMetrics::detaches`].
    pub detaches: u64,
    /// See [`SchedulerMetrics::grants`].
    pub grants: u64,
    /// See [`SchedulerMetrics::affinity_hits`].
    pub affinity_hits: u64,
    /// See [`SchedulerMetrics::numa_hits`].
    pub numa_hits: u64,
    /// See [`SchedulerMetrics::remote_grants`].
    pub remote_grants: u64,
    /// See [`SchedulerMetrics::process_rotations`].
    pub process_rotations: u64,
    /// See [`SchedulerMetrics::stalls_detected`].
    pub stalls_detected: u64,
    /// See [`SchedulerMetrics::processes_killed`].
    pub processes_killed: u64,
    /// See [`SchedulerMetrics::tasks_reclaimed`].
    pub tasks_reclaimed: u64,
    /// See [`SchedulerMetrics::faults_injected`].
    pub faults_injected: u64,
}

impl SchedulerMetrics {
    /// Bump a counter by one.
    #[inline]
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submits: self.submits.load(Ordering::Relaxed),
            pending_wakeups: self.pending_wakeups.load(Ordering::Relaxed),
            redundant_submits: self.redundant_submits.load(Ordering::Relaxed),
            intake_submits: self.intake_submits.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acquisitions.load(Ordering::Relaxed),
            global_lock_acquisitions: self.global_lock_acquisitions.load(Ordering::Relaxed),
            pauses: self.pauses.load(Ordering::Relaxed),
            pauses_elided: self.pauses_elided.load(Ordering::Relaxed),
            yields: self.yields.load(Ordering::Relaxed),
            yields_noop: self.yields_noop.load(Ordering::Relaxed),
            waitfors: self.waitfors.load(Ordering::Relaxed),
            waitfor_timeouts: self.waitfor_timeouts.load(Ordering::Relaxed),
            attaches: self.attaches.load(Ordering::Relaxed),
            detaches: self.detaches.load(Ordering::Relaxed),
            grants: self.grants.load(Ordering::Relaxed),
            affinity_hits: self.affinity_hits.load(Ordering::Relaxed),
            numa_hits: self.numa_hits.load(Ordering::Relaxed),
            remote_grants: self.remote_grants.load(Ordering::Relaxed),
            process_rotations: self.process_rotations.load(Ordering::Relaxed),
            stalls_detected: self.stalls_detected.load(Ordering::Relaxed),
            processes_killed: self.processes_killed.load(Ordering::Relaxed),
            tasks_reclaimed: self.tasks_reclaimed.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
        }
    }
}

impl MetricsSnapshot {
    /// Fraction of grants that honoured the task's preferred core. Returns `None` when no
    /// grant has happened yet.
    pub fn affinity_hit_rate(&self) -> Option<f64> {
        if self.grants == 0 {
            None
        } else {
            Some(self.affinity_hits as f64 / self.grants as f64)
        }
    }

    /// Total scheduling points observed (pauses + yields + no-op yields + timed waits +
    /// detaches).
    pub fn scheduling_points(&self) -> u64 {
        self.pauses + self.yields + self.yields_noop + self.waitfors + self.detaches
    }

    /// The counter increments between `prev` (an earlier snapshot of the same scheduler)
    /// and `self`, field-wise and saturating — the one way every executor and bench
    /// isolates a phase, instead of ad-hoc per-counter subtraction.
    pub fn delta(&self, prev: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            submits: self.submits.saturating_sub(prev.submits),
            pending_wakeups: self.pending_wakeups.saturating_sub(prev.pending_wakeups),
            redundant_submits: self
                .redundant_submits
                .saturating_sub(prev.redundant_submits),
            intake_submits: self.intake_submits.saturating_sub(prev.intake_submits),
            lock_acquisitions: self
                .lock_acquisitions
                .saturating_sub(prev.lock_acquisitions),
            global_lock_acquisitions: self
                .global_lock_acquisitions
                .saturating_sub(prev.global_lock_acquisitions),
            pauses: self.pauses.saturating_sub(prev.pauses),
            pauses_elided: self.pauses_elided.saturating_sub(prev.pauses_elided),
            yields: self.yields.saturating_sub(prev.yields),
            yields_noop: self.yields_noop.saturating_sub(prev.yields_noop),
            waitfors: self.waitfors.saturating_sub(prev.waitfors),
            waitfor_timeouts: self.waitfor_timeouts.saturating_sub(prev.waitfor_timeouts),
            attaches: self.attaches.saturating_sub(prev.attaches),
            detaches: self.detaches.saturating_sub(prev.detaches),
            grants: self.grants.saturating_sub(prev.grants),
            affinity_hits: self.affinity_hits.saturating_sub(prev.affinity_hits),
            numa_hits: self.numa_hits.saturating_sub(prev.numa_hits),
            remote_grants: self.remote_grants.saturating_sub(prev.remote_grants),
            process_rotations: self
                .process_rotations
                .saturating_sub(prev.process_rotations),
            stalls_detected: self.stalls_detected.saturating_sub(prev.stalls_detected),
            processes_killed: self.processes_killed.saturating_sub(prev.processes_killed),
            tasks_reclaimed: self.tasks_reclaimed.saturating_sub(prev.tasks_reclaimed),
            faults_injected: self.faults_injected.saturating_sub(prev.faults_injected),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let m = SchedulerMetrics::default();
        SchedulerMetrics::inc(&m.submits);
        SchedulerMetrics::inc(&m.submits);
        SchedulerMetrics::inc(&m.grants);
        SchedulerMetrics::inc(&m.affinity_hits);
        let s = m.snapshot();
        assert_eq!(s.submits, 2);
        assert_eq!(s.grants, 1);
        assert_eq!(s.affinity_hits, 1);
        assert_eq!(s.affinity_hit_rate(), Some(1.0));
    }

    #[test]
    fn affinity_rate_none_without_grants() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.affinity_hit_rate(), None);
    }

    #[test]
    fn delta_is_fieldwise_and_saturating() {
        let m = SchedulerMetrics::default();
        SchedulerMetrics::inc(&m.submits);
        let before = m.snapshot();
        SchedulerMetrics::inc(&m.submits);
        SchedulerMetrics::inc(&m.grants);
        let d = m.snapshot().delta(&before);
        assert_eq!(d.submits, 1);
        assert_eq!(d.grants, 1);
        assert_eq!(d.pauses, 0);
        // Saturation: a "later" snapshot with smaller counters clamps at zero.
        assert_eq!(before.delta(&m.snapshot()).submits, 0);
    }

    #[test]
    fn scheduling_points_sums_voluntary_events() {
        let s = MetricsSnapshot {
            pauses: 2,
            yields: 3,
            yields_noop: 1,
            waitfors: 4,
            detaches: 5,
            ..Default::default()
        };
        assert_eq!(s.scheduling_points(), 15);
    }
}
