//! The centralized multi-process scheduler (the "shared memory segment" of nOS-V).
//!
//! One [`Scheduler`] instance owns the virtual core slots and the installed [`Policy`].
//! The scheduler section is **split along the NUMA shard boundary**: each node owns an
//! independently locked `ShardState` (its core slots, grant/stall bookkeeping and a full
//! SCHED_COOP ready-queue core), while the rarely-written registry — process table, task
//! table, id counters, the shutdown flag — lives in a `GlobalState` behind its own lock.
//! Per-task grant slots keep their own lock so a worker can wait for a core without
//! holding any scheduler-section lock. Flat policies ([`PolicyKind::Coop`] etc.) run with
//! a single shard owning every core, which makes the split a strict generalization of the
//! previous single-mutex scheduler; [`PolicyKind::CoopSplit`] instantiates one shard per
//! NUMA node.
//!
//! **The de-contended hot path.** The paper's central claim is that scheduling points are
//! cheap enough for a centralized scheduler to arbitrate oversubscription, so the
//! operations that fire on every wake-up must not serialize on a global lock:
//!
//! * `submit` to a busy system publishes the ready task onto a **lock-free MPSC intake
//!   stack, sharded per NUMA node** with one CAS and returns (submitters targeting
//!   different nodes never touch the same cache line). The intake is drained — under the
//!   shard lock, restored to submission order by an atomic sequence stamp — by whichever
//!   core reaches the next scheduling point (release/dispatch/yield), i.e. by threads
//!   that were taking that shard's lock anyway, and by workers about to park (the
//!   pre-park drain, so a wake-up never waits for the next organic scheduling point).
//!   Only when idle cores exist does `submit` take a shard lock itself to place the task
//!   immediately (an idle system is uncontended by definition).
//! * Same-node scheduling points — the submit-triggered drain, `place_ready_task`,
//!   `pick_live`, `release_core`, `dispatch_idle_cores` for a core of node N — take only
//!   node N's shard lock. Producers and consumers pinned to different nodes never share
//!   a scheduler-section cache line end-to-end: intake shard, dispatch lock and core
//!   slots are all per-node.
//! * Grant-slot condvar notifications are **never delivered under a scheduler-section
//!   lock**: grants collect the woken tasks into a `WakeBatch` and fire it only after
//!   every guard has dropped, so a woken worker never convoys on the lock its waker
//!   holds.
//! * `has_ready`, `ready_count` and `busy_cores` read relaxed-ish atomic gauges
//!   (`ready_tasks`, `idle_cores`), so `yield_now`'s "is switching useful" check never
//!   contends with submitters.
//! * Every scheduler-section lock acquisition bumps the `lock_acquisitions` debug
//!   counter and global-section acquisitions additionally bump
//!   `global_lock_acquisitions`, which is how tests (and `sched_stress --smoke` in CI)
//!   verify that the submit fast path takes no lock at all and that steady-state wake
//!   churn never touches the global section.
//!
//! # Lock hierarchy
//!
//! Three lock classes, in strict acquisition order (see the matching table in DESIGN.md):
//!
//! 1. **Global-section lock** (`GlobalState`): process/task tables, id counters, the
//!    shutdown flag. May be held while taking shard locks (rare multi-shard ops below);
//!    never acquired while holding a shard or grant lock.
//! 2. **Shard locks** (`ShardState`, one per node): at most one is *block*-acquired at a
//!    time; additional shards are reached only via `try_lock` (cross-shard stealing and
//!    the rate-limited aging valve), which cannot deadlock regardless of order.
//! 3. **Grant locks** (per task): may be taken under a shard lock (grant delivery) or the
//!    global teardown paths; a grant lock is never held while acquiring any
//!    scheduler-section lock. The public entry points (`submit`, `pause`, …)
//!    inspect/update the grant slot first, drop it, and only then take scheduler locks.
//!
//! The enumerated multi-shard operations — `register_process`/`deregister_process`,
//!    `kill_process`, `set_process_domain`, `shutdown`, `watchdog_scan`, `rescue_drain`
//!    and the cross-shard dispatch sweep — visit shards strictly one at a time in
//!    ascending node order, and never hold two block-acquired shard locks or fire a
//!    `WakeBatch` while any scheduler-section lock is held.

use crate::config::{NosvConfig, PolicyKind};
use crate::error::{NosvError, Result};
use crate::faults::FaultSite;
use crate::metrics::SchedulerMetrics;
use crate::obs::{GaugesSnapshot, ProcessGauges, StatsRegistry, StatsSample, StatsSnapshot};
use crate::policy::{classify_placement, PlacementKind, Policy, TaskMeta};
use crate::process::{ProcessId, ProcessInfo};
use crate::readyq::{CrossValve, PickTier};
use crate::sched_trace::TraceEvent;
use crate::task::{Task, TaskId, TaskRef, TaskState, WaitOutcome};
use crate::topology::{CoreId, Topology};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Emit a trace event when the `sched-trace` feature is on and a recorder is installed.
///
/// With the feature off, the event expression is still *type-checked* (inside a closure
/// that is never built into the binary) but no code, branch or atomic survives into the
/// hot path — the zero-cost-when-disabled contract of the trace layer.
macro_rules! trace_event {
    ($sched:expr, $at:expr, $ev:expr) => {{
        #[cfg(feature = "sched-trace")]
        {
            if let Some(rec) = $sched.tracer.as_ref() {
                // The global sequence stamp linearizes events recorded under different
                // shard locks (the recorder stable-sorts by it), the same trick the
                // sharded intake uses. Under a single lock (flat policies) the stamp
                // order equals the record order, so this is a no-op there.
                let seq = $sched.sched_seq.fetch_add(1, Ordering::Relaxed);
                rec.record_at_seq($at, seq, $ev);
            }
        }
        #[cfg(not(feature = "sched-trace"))]
        {
            let _ = &$sched;
            let _typecheck_only = || ($at, $ev);
        }
    }};
}

/// Consult the installed fault plan at a site; the expression is `true` when the fault
/// fires on this visit.
///
/// With the `fault-inject` feature off this expands to a constant `false` (the operands
/// are still type-checked inside a never-built closure) — the same zero-cost-when-disabled
/// contract as `trace_event!`.
macro_rules! fault_fires {
    ($sched:expr, $site:expr, $task:expr) => {{
        #[cfg(feature = "fault-inject")]
        {
            match $sched.faults.get() {
                Some(f) => f.consult($site, $task),
                None => false,
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = &$sched;
            let _typecheck_only = || ($site, $task);
            false
        }
    }};
}

/// Like `fault_fires!`, but yields `Some(stall_duration)` when the (delaying) site fires.
macro_rules! fault_stall {
    ($sched:expr, $site:expr, $task:expr) => {{
        #[cfg(feature = "fault-inject")]
        {
            match $sched.faults.get() {
                Some(f) => f.consult_stall($site, $task),
                None => None,
            }
        }
        #[cfg(not(feature = "fault-inject"))]
        {
            let _ = &$sched;
            let _typecheck_only = || ($site, $task);
            None::<std::time::Duration>
        }
    }};
}

/// State of one virtual core slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreSlot {
    /// Nothing granted on this core.
    Idle,
    /// The given task currently holds this core.
    Busy(TaskId),
}

/// One node of the lock-free intake stack.
struct IntakeNode {
    task: TaskRef,
    /// When the submit published this node — the start of the submit→drain stage
    /// histogram (`obs::StageStats::intake_wait`).
    pushed_at: Instant,
    /// Global submission order across every intake shard (stamped from
    /// `Scheduler::intake_seq`): drains merge the per-node shard lists by this, so the
    /// sharded intake restores exactly the submission order the single stack gave.
    seq: u64,
    next: *mut IntakeNode,
}

/// A Treiber stack used as the MPSC submit intake: any thread pushes with one CAS;
/// draining swaps the whole list out (only ever done while holding the scheduler lock,
/// so drains never race each other) and reverses it to restore submission order.
///
/// The scheduler keeps **one stack per NUMA node** and a submit CASes onto the shard of
/// its preferred core's node, so concurrent submitters targeting different nodes no
/// longer collide on one cache line (the cross-socket CAS ping-pong the single stack
/// paid at high core counts).
struct Intake {
    head: AtomicPtr<IntakeNode>,
    /// Approximate stack depth (relaxed adds around the CAS), read lock-free by the
    /// stats plane. Never consulted by scheduling decisions.
    len: AtomicUsize,
}

// SAFETY: the raw pointers only ever reference heap nodes owned by the stack; pushes are
// CAS-published and the single drainer takes ownership of the whole list atomically.
unsafe impl Send for Intake {}
unsafe impl Sync for Intake {}

impl Intake {
    fn new() -> Self {
        Intake {
            head: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
        }
    }

    /// Publish a ready task. Lock-free: one allocation plus a CAS loop.
    fn push(&self, task: TaskRef, pushed_at: Instant, seq: u64) {
        let node = Box::into_raw(Box::new(IntakeNode {
            task,
            pushed_at,
            seq,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::SeqCst);
        loop {
            // SAFETY: `node` is not yet published; we have exclusive access.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(h) => head = h,
            }
        }
    }

    /// Take every queued task, oldest first, each with its publish instant and global
    /// submission sequence number.
    fn drain(&self) -> Vec<(TaskRef, Instant, u64)> {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::SeqCst);
        let mut out = Vec::new();
        while !p.is_null() {
            // SAFETY: the swap transferred ownership of the whole list to us.
            let node = unsafe { Box::from_raw(p) };
            out.push((node.task, node.pushed_at, node.seq));
            p = node.next;
        }
        if !out.is_empty() {
            self.len.fetch_sub(out.len(), Ordering::Relaxed);
        }
        out.reverse();
        out
    }

    /// Approximate current depth (the intake-stack gauge).
    fn depth(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

impl Drop for Intake {
    fn drop(&mut self) {
        let _ = self.drain();
    }
}

/// Grant-slot condvar notifications collected under the scheduler lock, fired only after
/// every guard has dropped.
///
/// Notifying `grant_cv` while the `SchedState` mutex is held wakes the worker straight
/// into the lock its waker still holds: the woken thread runs, immediately blocks on the
/// contended mutex, and the hand-off serializes — a lock convoy, which is where the
/// measured wake-churn tail lived (`BENCH_sched.json` `wake`/`dispatch` p99). Deferring
/// the notify is safe with these std-semantics condvars because the grant-slot predicate
/// (`granted` / `released`) is always written under the task's grant mutex *before* the
/// batch fires: a waiter either observes the new state without sleeping, or parks and is
/// woken by the deferred notify — no interleaving loses the wakeup.
///
/// Declare a batch **before** acquiring the scheduler lock: locals drop in reverse
/// declaration order, so even an early return releases the guard first and then fires the
/// batch (the `Drop` impl is the safety net; paths that go on to park explicitly
/// [`WakeBatch::fire`] first).
#[derive(Default)]
struct WakeBatch {
    tasks: Vec<TaskRef>,
}

impl WakeBatch {
    fn new() -> Self {
        WakeBatch::default()
    }

    /// Owe `task`'s (possibly parked) waiter a notification once every lock is dropped.
    fn push(&mut self, task: TaskRef) {
        self.tasks.push(task);
    }

    /// Deliver every owed notification. Callers must have dropped the scheduler lock and
    /// all grant guards first.
    fn fire(&mut self) {
        for t in self.tasks.drain(..) {
            t.grant_cv.notify_all();
        }
    }
}

impl Drop for WakeBatch {
    fn drop(&mut self) {
        self.fire();
    }
}

/// The rarely-written registry section of the scheduler, behind its own lock (level 1 of
/// the lock hierarchy — see the module documentation): process and task tables, id
/// counters and the shutdown flag. Steady-state wake churn never touches it; every
/// acquisition additionally bumps `global_lock_acquisitions`, which is how the
/// `sched_stress --smoke` sentinel proves that.
pub(crate) struct GlobalState {
    tasks: HashMap<TaskId, TaskRef>,
    processes: HashMap<ProcessId, ProcessInfo>,
    next_task_id: TaskId,
    next_process_id: ProcessId,
    shutdown: bool,
}

/// Per-NUMA-node dispatch state, independently locked (level 2 of the lock hierarchy):
/// the node's core slots and watchdog bookkeeping, a full SCHED_COOP ready-queue core,
/// and the cross-shard aging valve. Flat policies run one shard owning every core, so
/// the single-lock scheduler is the one-shard special case of this structure.
pub(crate) struct ShardState {
    /// This shard's index (== NUMA node id under [`PolicyKind::CoopSplit`]).
    si: usize,
    /// The global ids of the cores this shard owns, ascending (parallel to `slots`).
    cores: Vec<CoreId>,
    /// Core slots, indexed by *local* core index (see `Scheduler::core_shard`).
    slots: Vec<CoreSlot>,
    /// The shard's ready queues; a full policy instance so per-process quanta and the
    /// pick tiers work unchanged within a shard.
    policy: Box<dyn Policy>,
    /// Tasks currently queued in this shard's policy, so the pick path can resolve a
    /// popped [`TaskMeta`] to its [`TaskRef`] (and detect stale entries of released
    /// tasks) without the global task table.
    queued: HashMap<TaskId, TaskRef>,
    /// Rate limiter on cross-shard aged picks: at most one foreign-shard aging probe per
    /// quantum per shard, so the anti-starvation valve never becomes a steady cross-node
    /// traffic source.
    xvalve: CrossValve<Instant>,
    /// When each busy core was last granted (the grant-to-run watchdog's reference
    /// point), by local core index.
    granted_at: Vec<Option<Instant>>,
    /// Whether the current grant on each core has already been flagged by a watchdog scan
    /// (each non-progressing grant is reported once, not on every scan).
    stall_flagged: Vec<bool>,
}

/// One non-progressing core flagged by [`Scheduler::watchdog_scan`]: the granted task has
/// held the core past the caller's deadline without reaching a scheduling point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// The non-progressing core.
    pub core: CoreId,
    /// The task occupying it.
    pub task: TaskId,
    /// The task's process domain.
    pub process: ProcessId,
    /// How long the core has been held since the grant.
    pub held_for: Duration,
}

/// What [`Scheduler::kill_process`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KillReport {
    /// Ready-queue entries of the process dropped from the policy.
    pub queued_reclaimed: usize,
    /// Waiting (queued or blocked) tasks released from scheduler control.
    pub waiters_released: usize,
    /// Running tasks evicted from their cores (they finish as plain OS threads).
    pub running_preempted: usize,
}

/// The centralized scheduler shared by every process domain of an instance.
pub struct Scheduler {
    topo: Topology,
    config: NosvConfig,
    /// The rarely-written registry section (level 1 of the lock hierarchy).
    global: Mutex<GlobalState>,
    /// Per-node dispatch shards (level 2). One entry for flat policies; one per NUMA
    /// node under [`PolicyKind::CoopSplit`].
    shards: Box<[Mutex<ShardState>]>,
    /// Global core id → (shard index, local core index), fixed at construction.
    core_shard: Vec<(usize, usize)>,
    /// Per-shard policy-ready entry counts, maintained under the owning shard's lock and
    /// read lock-free by foreign shards deciding whether a steal/valve probe (or the
    /// cross-shard dispatch sweep) is worth a `try_lock` at all.
    shard_ready: Box<[AtomicUsize]>,
    metrics: SchedulerMetrics,
    /// Always-on observability plane: stage-boundary latency histograms and the snapshot
    /// time base (see [`crate::obs`]). Recording never takes the scheduler lock.
    stats: StatsRegistry,
    /// Lock-free submit intakes, one per NUMA node (see the module documentation): a
    /// submit CASes onto the shard of its preferred core's node (unbound submits use
    /// shard 0), and drains merge every shard by `intake_seq` stamp, restoring global
    /// submission order exactly.
    intakes: Box<[Intake]>,
    /// Global submission order stamped into every intake node; what keeps the sharded
    /// drain order identical to the old single stack's.
    intake_seq: std::sync::atomic::AtomicU64,
    /// Number of idle core slots; maintained under the lock, read lock-free by `submit`
    /// to decide whether immediate placement is worth taking the lock for.
    idle_cores: AtomicUsize,
    /// Ready-task gauge: intake entries plus policy-queued entries. Signed because stale
    /// entries of detached tasks are only reconciled when they are popped, and shutdown
    /// zeroes it; readers clamp at zero.
    ready_tasks: AtomicI64,
    /// Lock-free mirror of `SchedState::shutdown`, set before the shutdown drain so a
    /// submit racing shutdown can detect it after publishing and self-heal (see
    /// [`Scheduler::submit`]).
    shutting_down: AtomicBool,
    /// Installed schedule-trace recorder, if any (see [`crate::sched_trace`]).
    #[cfg(feature = "sched-trace")]
    tracer: Option<std::sync::Arc<crate::sched_trace::TraceRecorder>>,
    /// Global order stamp for trace events recorded under different shard locks (see
    /// `trace_event!`).
    #[cfg(feature = "sched-trace")]
    sched_seq: std::sync::atomic::AtomicU64,
    /// Installed fault plan, if any (see [`crate::faults`]). A `OnceLock` rather than a
    /// plain `Option` so harnesses holding only the shared `Arc<Scheduler>` (the real
    /// executors, the chaos bench) can still install a plan; the hot-path consult is a
    /// single relaxed-ish atomic load.
    #[cfg(feature = "fault-inject")]
    faults: std::sync::OnceLock<std::sync::Arc<crate::faults::FaultState>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cores", &self.topo.num_cores())
            .field("policy", &self.config.policy)
            .finish()
    }
}

impl Scheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: NosvConfig) -> Self {
        let topo = config.topology.clone();
        let cores = topo.num_cores();
        let split = matches!(config.policy, PolicyKind::CoopSplit);
        let nshards = if split {
            topo.num_numa_nodes().max(1)
        } else {
            1
        };
        let mut core_shard = vec![(0usize, 0usize); cores];
        let shards: Box<[Mutex<ShardState>]> = (0..nshards)
            .map(|si| {
                let owned: Vec<CoreId> = if split {
                    topo.cores_in_node(si).collect()
                } else {
                    topo.cores().collect()
                };
                for (li, &c) in owned.iter().enumerate() {
                    core_shard[c] = (si, li);
                }
                let n = owned.len();
                Mutex::new(ShardState {
                    si,
                    cores: owned,
                    slots: vec![CoreSlot::Idle; n],
                    policy: config.policy.build(&config),
                    queued: HashMap::new(),
                    xvalve: CrossValve::new(),
                    granted_at: vec![None; n],
                    stall_flagged: vec![false; n],
                })
            })
            .collect();
        Scheduler {
            topo,
            global: Mutex::new(GlobalState {
                tasks: HashMap::new(),
                processes: HashMap::new(),
                next_task_id: 1,
                next_process_id: 1,
                shutdown: false,
            }),
            shards,
            core_shard,
            shard_ready: (0..nshards).map(|_| AtomicUsize::new(0)).collect(),
            metrics: SchedulerMetrics::default(),
            stats: StatsRegistry::new(cores, nshards),
            intakes: (0..config.topology.num_numa_nodes().max(1))
                .map(|_| Intake::new())
                .collect(),
            intake_seq: std::sync::atomic::AtomicU64::new(0),
            config,
            idle_cores: AtomicUsize::new(cores),
            ready_tasks: AtomicI64::new(0),
            shutting_down: AtomicBool::new(false),
            #[cfg(feature = "sched-trace")]
            tracer: None,
            #[cfg(feature = "sched-trace")]
            sched_seq: std::sync::atomic::AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            faults: std::sync::OnceLock::new(),
        }
    }

    /// Install a fresh [`crate::sched_trace::TraceRecorder`] and return a handle to it:
    /// every subsequent scheduling decision is appended to the recorder. Must be called
    /// before the scheduler is shared (it takes `&mut self`), which also means recording
    /// always covers the scheduler's whole life.
    #[cfg(feature = "sched-trace")]
    pub fn install_tracer(&mut self) -> std::sync::Arc<crate::sched_trace::TraceRecorder> {
        let rec = std::sync::Arc::new(crate::sched_trace::TraceRecorder::new(
            crate::sched_trace::TraceMeta::from_config(&self.config),
        ));
        self.tracer = Some(std::sync::Arc::clone(&rec));
        rec
    }

    /// Instantiate and install a [`crate::faults::FaultPlan`], returning the shared
    /// [`crate::faults::FaultState`] the harness asserts against (fire counts, records).
    /// Install-once: the first plan wins for the scheduler's whole life (the returned
    /// state is the installed one either way), so concurrent installers cannot split the
    /// fault log.
    #[cfg(feature = "fault-inject")]
    pub fn install_faults(
        &self,
        plan: &crate::faults::FaultPlan,
    ) -> std::sync::Arc<crate::faults::FaultState> {
        let st = std::sync::Arc::new(crate::faults::FaultState::new(plan));
        std::sync::Arc::clone(self.faults.get_or_init(|| st))
    }

    /// Acquire the global-section lock (registry tables), bumping both the debug counter
    /// that lets tests prove which paths stay off every scheduler-section lock and the
    /// global-specific counter the `sched_stress --smoke` churn sentinel asserts stays
    /// flat in steady state.
    fn lock_global(&self) -> parking_lot::MutexGuard<'_, GlobalState> {
        SchedulerMetrics::inc(&self.metrics.lock_acquisitions);
        SchedulerMetrics::inc(&self.metrics.global_lock_acquisitions);
        self.global.lock()
    }

    /// Block-acquire shard `si`'s dispatch lock. At most one shard lock is ever
    /// block-acquired at a time (the hierarchy's level-2 rule); additional shards are
    /// reached only through [`Scheduler::try_lock_shard`].
    fn lock_shard(&self, si: usize) -> parking_lot::MutexGuard<'_, ShardState> {
        SchedulerMetrics::inc(&self.metrics.lock_acquisitions);
        self.stats.shards[si]
            .lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        self.shards[si].lock()
    }

    /// Opportunistically acquire a *second* shard's lock (cross-shard stealing and the
    /// aging valve). Never blocks, so no ordering discipline between shard locks is
    /// needed to stay deadlock-free — a busy victim is simply skipped.
    fn try_lock_shard(&self, si: usize) -> Option<parking_lot::MutexGuard<'_, ShardState>> {
        let g = self.shards[si].try_lock()?;
        SchedulerMetrics::inc(&self.metrics.lock_acquisitions);
        self.stats.shards[si]
            .lock_acquisitions
            .fetch_add(1, Ordering::Relaxed);
        Some(g)
    }

    /// The shard owning `core`.
    fn shard_of(&self, core: CoreId) -> usize {
        self.core_shard[core].0
    }

    /// The shard a submit of `task` drains into: its preferred core's shard (tasks with
    /// no usable preference go to shard 0, mirroring [`Scheduler::intake_shard`]).
    fn home_shard(&self, task: &TaskRef) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        task.preferred_core()
            .filter(|&c| c < self.topo.num_cores())
            .map_or(0, |c| self.topo.node_of(c))
    }

    /// Whether any *other* shard has policy-queued work (lock-free probe guard).
    fn others_ready(&self, si: usize) -> bool {
        self.shards.len() > 1
            && self
                .shard_ready
                .iter()
                .enumerate()
                .any(|(i, r)| i != si && r.load(Ordering::Relaxed) > 0)
    }

    /// Total entries across the per-node intake shards (the intake-depth gauge).
    fn intake_depth(&self) -> usize {
        self.intakes.iter().map(|i| i.depth()).sum()
    }

    /// Approximate per-node intake shard depths, for the stats plane.
    fn intake_shard_depths(&self) -> Vec<usize> {
        self.intakes.iter().map(|i| i.depth()).collect()
    }

    /// The intake shard a submit of `task` publishes to: its preferred core's NUMA node
    /// (submits with no usable preference go to shard 0).
    fn intake_shard(&self, task: &TaskRef) -> &Intake {
        let node = task
            .preferred_core()
            .filter(|&c| c < self.topo.num_cores())
            .map_or(0, |c| self.topo.node_of(c));
        &self.intakes[node]
    }

    /// The topology this scheduler manages.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &NosvConfig {
        &self.config
    }

    /// Scheduler metrics.
    pub fn metrics(&self) -> &SchedulerMetrics {
        &self.metrics
    }

    /// The always-on stats registry (stage-boundary histograms and the snapshot time
    /// base). Most callers want [`Scheduler::stats_snapshot`] instead.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// One unified observation of the scheduler: cumulative counters, instantaneous
    /// gauges (including per-process ready-queue depths) and the stage-boundary latency
    /// histograms. Takes each shard lock briefly (one at a time) plus the global lock for
    /// the per-process gauges — an observation tool, not a hot-path call (the lock
    /// acquisitions show up in `lock_acquisitions` like any others).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        let counters = self.metrics.snapshot();
        let stages = self.stats.stages.snapshot();
        let mut running_tids: Vec<TaskId> = Vec::new();
        let mut depths: HashMap<ProcessId, (usize, usize)> = HashMap::new();
        for si in 0..self.shards.len() {
            let st = self.lock_shard(si);
            for slot in &st.slots {
                if let CoreSlot::Busy(tid) = slot {
                    running_tids.push(*tid);
                }
            }
            for (p, bound, unbound) in st.policy.queue_depths() {
                let e = depths.entry(p).or_insert((0, 0));
                e.0 += bound;
                e.1 += unbound;
            }
        }
        let (live_tasks, processes) = {
            let g = self.lock_global();
            let mut running: HashMap<ProcessId, usize> = HashMap::new();
            for tid in &running_tids {
                if let Some(t) = g.tasks.get(tid) {
                    *running.entry(t.process()).or_insert(0) += 1;
                }
            }
            let mut procs: Vec<ProcessGauges> = g
                .processes
                .values()
                .map(|p| {
                    let (bound, unbound) = depths.get(&p.id).copied().unwrap_or((0, 0));
                    ProcessGauges {
                        id: p.id,
                        name: p.name.clone(),
                        queued_bound: bound,
                        queued_unbound: unbound,
                        running: running.get(&p.id).copied().unwrap_or(0),
                    }
                })
                .collect();
            procs.sort_by_key(|p| p.id);
            (g.tasks.len(), procs)
        };
        StatsSnapshot {
            at: self.stats.elapsed(),
            counters,
            gauges: GaugesSnapshot {
                ready_tasks: self.ready_count(),
                intake_depth: self.intake_depth(),
                intake_shards: self.intake_shard_depths(),
                busy_cores: self.busy_cores(),
                idle_cores: self.idle_cores.load(Ordering::SeqCst),
                live_tasks,
                processes,
            },
            stages,
            shards: self.stats.shard_snapshots(),
        }
    }

    /// One lock-free time-series point (the sampler's per-tick read): atomic gauges and
    /// two cumulative counters only, so sampling never perturbs the schedule.
    pub fn sample(&self) -> StatsSample {
        StatsSample {
            at: self.stats.elapsed(),
            ready_tasks: self.ready_count(),
            intake_depth: self.intake_depth(),
            busy_cores: self.busy_cores(),
            submits: self.metrics.submits.load(Ordering::Relaxed),
            grants: self.metrics.grants.load(Ordering::Relaxed),
        }
    }

    /// Start a background sampler appending one [`StatsSample`] every `period`. Off by
    /// default — nothing samples unless a harness asks; stop (and collect) with
    /// [`crate::obs::StatsSampler::stop`].
    pub fn start_sampler(
        self: &std::sync::Arc<Self>,
        period: Duration,
    ) -> crate::obs::StatsSampler {
        let sched = std::sync::Arc::clone(self);
        crate::obs::StatsSampler::start(period, move || sched.sample())
    }

    /// Name of the installed policy.
    pub fn policy_name(&self) -> String {
        if matches!(self.config.policy, PolicyKind::CoopSplit) {
            // Each shard's building block reports "sched_coop"; the assembled scheduler
            // is the split variant.
            return "sched_coop_split".to_string();
        }
        self.lock_shard(0).policy.name().to_string()
    }

    /// Number of process-quantum rotations performed by the policy (summed over shards).
    pub fn policy_rotations(&self) -> u64 {
        (0..self.shards.len())
            .map(|si| self.lock_shard(si).policy.rotations())
            .sum()
    }

    /// Number of tasks currently ready (queued, not running). Lock-free: reads the atomic
    /// gauge, which may transiently include entries of tasks detached while queued.
    pub fn ready_count(&self) -> usize {
        self.ready_tasks.load(Ordering::SeqCst).max(0) as usize
    }

    /// Whether any task is ready. Lock-free (see [`Scheduler::ready_count`]); this is what
    /// makes yield-storm "is switching useful" checks free of contention.
    pub fn has_ready(&self) -> bool {
        self.ready_tasks.load(Ordering::SeqCst) > 0
    }

    /// Number of cores currently running a task. Lock-free.
    pub fn busy_cores(&self) -> usize {
        self.topo
            .num_cores()
            .saturating_sub(self.idle_cores.load(Ordering::SeqCst))
    }

    /// Number of live (registered, unfinished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.lock_global().tasks.len()
    }

    // -------------------------------------------------------------------------------------
    // Processes
    // -------------------------------------------------------------------------------------

    /// Register a process domain and return its identifier. A multi-shard operation:
    /// global registry first, then every shard's policy, one lock at a time in ascending
    /// order (rare by design — registration is not a scheduling point).
    pub fn register_process(&self, name: impl Into<String>) -> ProcessId {
        let id = {
            let mut g = self.lock_global();
            let id = g.next_process_id;
            g.next_process_id += 1;
            g.processes.insert(id, ProcessInfo::new(id, name));
            id
        };
        for si in 0..self.shards.len() {
            self.lock_shard(si).policy.register_process(id);
        }
        trace_event!(
            self,
            Instant::now(),
            TraceEvent::RegisterProcess { process: id }
        );
        id
    }

    /// Deregister a process domain. Running tasks of the process keep their cores; only
    /// the bookkeeping and its place in the quantum rotation are removed. Every task of
    /// the process *not currently holding a core* — queued for one, or blocked in a
    /// pause/timed wait — can never be woken through the scheduler again once the process
    /// is purged, so all of them are released from scheduler control (their waiters
    /// resume as plain OS threads, the same safety valve as [`Scheduler::shutdown`]) — a
    /// deregister must never leave a waiter parked forever, whatever state the race with
    /// submit/pause left it in.
    pub fn deregister_process(&self, process: ProcessId) {
        let mut wakes = WakeBatch::new();
        let stranded: Vec<TaskRef> = {
            let mut g = self.lock_global();
            if let Some(p) = g.processes.remove(&process) {
                // Marking the shared cell dead is what lets shard-local paths (intake
                // drains, submit_locked) reject the process's tasks from now on without
                // the global lock.
                p.cell.mark_dead();
            }
            g.tasks
                .values()
                .filter(|t| t.process() == process)
                .cloned()
                .collect()
        };
        trace_event!(
            self,
            Instant::now(),
            TraceEvent::DeregisterProcess { process }
        );
        // Purge every shard, one lock at a time. Each shard's intake drain runs first: a
        // task of this process still sitting in the intake would otherwise be enqueued at
        // a later drain — the dead process cell makes the drain release it instead. The
        // policy then drops any entries still queued for the process; the lock-free ready
        // gauges must shed them too or has_ready() would stay stuck true and permanently
        // defeat the yield fast path.
        for si in 0..self.shards.len() {
            let mut st = self.lock_shard(si);
            self.drain_intake(&mut st, &mut wakes);
            let before = st.policy.ready_count();
            st.policy.deregister_process(process);
            let dropped = before.saturating_sub(st.policy.ready_count());
            if dropped > 0 {
                self.ready_tasks.fetch_sub(dropped as i64, Ordering::SeqCst);
                self.shard_ready[si].fetch_sub(dropped, Ordering::Relaxed);
            }
            st.queued.retain(|_, t| t.process() != process);
            drop(st);
            wakes.fire();
        }
        // Every scheduler-section lock is dropped; release each stranded waiter and
        // notify only after its grant guard is dropped too (collect-then-notify).
        for t in stranded {
            if t.release_if_waiting() {
                t.grant_cv.notify_all();
            }
        }
        wakes.fire();
    }

    /// Forcibly reclaim a process that died mid-run: like
    /// [`Scheduler::deregister_process`], but in-flight work is torn down too — queued
    /// entries are dropped, waiting tasks are released, and *running* tasks are evicted
    /// from their cores (each freed core is immediately re-dispatched to co-tenants'
    /// ready work). Evicted workers resume as plain OS threads (the release safety
    /// valve), so a dying tenant can never wedge a core or a waiter it owned.
    pub fn kill_process(&self, process: ProcessId) -> KillReport {
        let mut report = KillReport::default();
        let mut wakes = WakeBatch::new();
        // Phase 1 (global): unregister, mark the shared cell dead (shard-local paths
        // reject the process's tasks from here on) and pull every victim out of the task
        // table.
        let victims: Vec<TaskRef> = {
            let mut g = self.lock_global();
            let Some(p) = g.processes.remove(&process) else {
                return report;
            };
            p.cell.mark_dead();
            SchedulerMetrics::inc(&self.metrics.processes_killed);
            let victims: Vec<TaskRef> = g
                .tasks
                .values()
                .filter(|t| t.process() == process)
                .cloned()
                .collect();
            for t in &victims {
                g.tasks.remove(&t.id());
                SchedulerMetrics::inc(&self.metrics.tasks_reclaimed);
            }
            victims
        };
        trace_event!(
            self,
            Instant::now(),
            TraceEvent::DeregisterProcess { process }
        );
        // Phase 2 (per shard, one lock at a time): flush the intake (victims sitting
        // there are released by the drain — their process cell is dead) and purge the
        // policy queues, shedding the ready gauges.
        for si in 0..self.shards.len() {
            let mut st = self.lock_shard(si);
            self.drain_intake(&mut st, &mut wakes);
            let before = st.policy.ready_count();
            st.policy.deregister_process(process);
            let dropped = before.saturating_sub(st.policy.ready_count());
            if dropped > 0 {
                self.ready_tasks.fetch_sub(dropped as i64, Ordering::SeqCst);
                self.shard_ready[si].fetch_sub(dropped, Ordering::Relaxed);
            }
            st.queued.retain(|_, t| t.process() != process);
            report.queued_reclaimed += dropped;
            drop(st);
            wakes.fire();
        }
        // Phase 3 (grant teardown, no scheduler-section lock held): evict running
        // victims, release waiting ones.
        let mut freed: Vec<CoreId> = Vec::new();
        for t in &victims {
            {
                let mut g = t.grant.lock();
                if let Some(core) = g.granted.take() {
                    report.running_preempted += 1;
                    freed.push(core);
                } else if !g.released {
                    report.waiters_released += 1;
                }
                g.queued = false;
                g.state = TaskState::Finished;
                g.released = true;
            }
            // Collect-then-notify: the waiter is woken only after its grant guard above
            // has dropped.
            wakes.push(TaskRef::clone(t));
        }
        // Phase 4: hand each freed core to co-tenants' ready work.
        for core in freed {
            let mut st = self.lock_shard(self.shard_of(core));
            self.release_core(&mut st, core, &mut wakes);
            drop(st);
            wakes.fire();
        }
        self.dispatch_sweep();
        report
    }

    /// Restrict (or, with `None`, un-restrict) a process domain to a set of cores — the
    /// NUMA-aware placement hook behind the §5.6 socket-pinning variants. Cores outside
    /// the topology are dropped; a fully out-of-range set leaves the process unrestricted
    /// (a dead domain would strand its tasks). Both the immediate-grant path and the
    /// installed policy honour the restriction (placement-oblivious policies like the FIFO
    /// ablation only receive it as a hint — see [`crate::policy::Policy::set_process_domain`]).
    pub fn set_process_domain(&self, process: ProcessId, cores: Option<Vec<CoreId>>) {
        let filtered = cores.and_then(|cs| {
            let kept: Vec<CoreId> = cs
                .into_iter()
                .filter(|&c| c < self.topo.num_cores())
                .collect();
            (!kept.is_empty()).then_some(kept)
        });
        {
            let mut g = self.lock_global();
            // Unknown (never-registered or already-deregistered) processes are ignored
            // entirely: forwarding to the policy would re-register the pid into the
            // quantum rotation as a ghost the grant path knows nothing about.
            let Some(p) = g.processes.get_mut(&process) else {
                return;
            };
            p.domain = filtered.clone();
            // Publish to the shared cell so shard-local immediate grants see the new
            // domain without the global lock.
            p.cell.set_domain(filtered.clone());
            trace_event!(
                self,
                Instant::now(),
                TraceEvent::SetDomain {
                    process,
                    cores: filtered.clone(),
                }
            );
        }
        for si in 0..self.shards.len() {
            self.lock_shard(si)
                .policy
                .set_process_domain(process, filtered.clone());
        }
    }

    /// Names and ids of the registered process domains.
    pub fn processes(&self) -> Vec<(ProcessId, String)> {
        let g = self.lock_global();
        let mut v: Vec<_> = g
            .processes
            .values()
            .map(|p| (p.id, p.name.clone()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    // -------------------------------------------------------------------------------------
    // Task lifecycle
    // -------------------------------------------------------------------------------------

    /// Create (but do not submit) a task belonging to `process`. The task carries its
    /// process's shared liveness/domain cell, which is what lets every shard-local path
    /// consult process state without the global lock.
    pub fn create_task(&self, process: ProcessId, label: Option<String>) -> Result<TaskRef> {
        let mut g = self.lock_global();
        if g.shutdown {
            return Err(NosvError::ShutDown);
        }
        let Some(p) = g.processes.get_mut(&process) else {
            return Err(NosvError::UnknownProcess(process));
        };
        p.tasks_created += 1;
        p.tasks_live += 1;
        let cell = std::sync::Arc::clone(&p.cell);
        let id = g.next_task_id;
        g.next_task_id += 1;
        let task = Task::new(id, process, cell, label);
        g.tasks.insert(id, TaskRef::clone(&task));
        Ok(task)
    }

    /// The grant→first-run observation hook passed to the grant-slot waits: records into
    /// the scheduler-wide `dispatch` stage histogram *and* the granted core's shard
    /// histogram, so dispatch tails are attributable per node.
    fn record_dispatch(&self) -> impl Fn(CoreId, Duration) + '_ {
        move |core, waited| {
            self.stats.stages.dispatch.record(waited);
            self.stats.shards[self.shard_of(core)]
                .dispatch
                .record(waited);
        }
    }

    /// Attach: submit the task and block the calling OS thread until the scheduler grants it
    /// a core. This is the `nosv_attach` pattern (§4.3.1): the thread is recruited as a
    /// worker and can no longer run freely.
    pub fn attach(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.attaches);
        self.submit(task);
        self.prepark_drain();
        let _ = task.wait_grant_observed(self.record_dispatch());
    }

    /// Mark the task ready in its grant slot. Returns the instant the task turned ready
    /// (the start of the wake-latency stage, stamped into the slot for the grant to
    /// consume), or `None` if nothing more to do (task released, already queued, or
    /// wake-up counted against a held core).
    fn mark_ready(&self, task: &TaskRef) -> Option<Instant> {
        let mut g = task.grant.lock();
        if g.released {
            return None;
        }
        if g.granted.is_some() {
            // The task still holds a core (it has not reached its pause yet): count the
            // wake-up so the upcoming pause returns immediately (nOS-V event counter).
            g.pending_wakeups += 1;
            SchedulerMetrics::inc(&self.metrics.pending_wakeups);
            return None;
        }
        if g.queued {
            // Already sitting in the ready queues; nothing to do.
            SchedulerMetrics::inc(&self.metrics.redundant_submits);
            return None;
        }
        let now = Instant::now();
        g.queued = true;
        g.state = TaskState::Ready;
        g.ready_at = Some(now);
        Some(now)
    }

    /// Make a task ready. If an idle core exists it is granted immediately (honouring
    /// affinity); otherwise — the oversubscribed fast path — the task is published onto
    /// the lock-free intake with a single CAS and the call returns without touching the
    /// scheduler lock. Safe to call from any thread.
    pub fn submit(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.submits);
        // Fault site: drop the wake-up before any grant-slot bookkeeping, so the loss is
        // "clean" — the scheduler has no trace of the submit, exactly like a lost signal.
        if fault_fires!(self, FaultSite::DropWakeup, Some(task.id())) {
            SchedulerMetrics::inc(&self.metrics.faults_injected);
            trace_event!(
                self,
                Instant::now(),
                TraceEvent::FaultInjected {
                    site: FaultSite::DropWakeup,
                    task: Some(task.id()),
                }
            );
            return;
        }
        // Fault site: deliver the wake-up twice; the second delivery must be absorbed by
        // the level-triggered grant slot (pending-wakeup counter / redundant-submit path).
        let duplicate = fault_fires!(self, FaultSite::DuplicateWakeup, Some(task.id()));
        if duplicate {
            SchedulerMetrics::inc(&self.metrics.faults_injected);
            trace_event!(
                self,
                Instant::now(),
                TraceEvent::FaultInjected {
                    site: FaultSite::DuplicateWakeup,
                    task: Some(task.id()),
                }
            );
        }
        self.submit_inner(task);
        if duplicate {
            self.submit_inner(task);
        }
    }

    /// The submit body proper (after the fault sites, so an injected duplicate delivery
    /// does not re-consult the plan and cascade).
    fn submit_inner(&self, task: &TaskRef) {
        let Some(now) = self.mark_ready(task) else {
            return;
        };
        trace_event!(
            self,
            now,
            TraceEvent::Submit {
                process: task.process(),
                task: task.id(),
            }
        );
        self.ready_tasks.fetch_add(1, Ordering::SeqCst);
        let seq = self.intake_seq.fetch_add(1, Ordering::Relaxed);
        self.intake_shard(task).push(TaskRef::clone(task), now, seq);
        SchedulerMetrics::inc(&self.metrics.intake_submits);
        // SeqCst pairs with `mark_idle`: if a core went idle before our push became
        // visible to its drain, we observe `idle_cores > 0` here and place the task
        // ourselves; otherwise its drain (which runs after its idle-store) sees our node.
        if self.idle_cores.load(Ordering::SeqCst) > 0 {
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(self.home_shard(task));
            self.drain_intake(&mut st, &mut wakes);
            // If stale entries made the drain enqueue instead of granting, fill the idle
            // cores from the policy now.
            self.dispatch_idle_cores(&mut st, &mut wakes);
            drop(st);
            wakes.fire();
            // The idle core may live in a foreign shard (whose lock we never block on
            // from here): the guarded sweep visits the other shards one at a time.
            self.dispatch_sweep();
        } else if self.shutting_down.load(Ordering::SeqCst) {
            // We published after shutdown's drain: self-heal so the gauge does not stay
            // stuck positive and the node does not pin the task until Scheduler drop.
            // (The waiter itself is safe either way — the task was registered before the
            // shutdown flag was set, so the release loop covers it.)
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(self.home_shard(task));
            self.drain_intake(&mut st, &mut wakes);
            drop(st);
            wakes.fire();
        }
    }

    /// The pre-intake submit path, kept for comparison benchmarking (`sched_stress
    /// --baseline`): the grant-slot bookkeeping is identical but the task is placed under
    /// the global scheduler lock, which is what every submit contended on before the
    /// intake stack existed.
    pub fn submit_locked(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.submits);
        let Some(now) = self.mark_ready(task) else {
            return;
        };
        trace_event!(
            self,
            now,
            TraceEvent::Submit {
                process: task.process(),
                task: task.id(),
            }
        );
        self.ready_tasks.fetch_add(1, Ordering::SeqCst);
        let mut wakes = WakeBatch::new();
        let mut st = self.lock_shard(self.home_shard(task));
        self.drain_intake(&mut st, &mut wakes);
        // `is_released()` is the shard-local equivalent of the old "still in the task
        // table" check: detach/kill mark a task released exactly when they remove it.
        if self.shutting_down.load(Ordering::SeqCst) || task.is_released() {
            self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        if !task.proc_alive() {
            // Same rule as the intake drain: a task whose process was deregistered must be
            // released, never placed — granting it would run it outside any registered
            // domain, and enqueueing it would resurrect the purged process in the policy's
            // quantum rotation as a ghost. (Found by the schedule fuzzer: see
            // `fuzz::tests::submit_locked_counterexample_shrinks`.)
            self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
            drop(st);
            if task.release_if_unreleased() {
                task.grant_cv.notify_all();
            }
            return;
        }
        self.place_ready_task(&mut st, task, &mut wakes);
        self.dispatch_idle_cores(&mut st, &mut wakes);
        drop(st);
        wakes.fire();
        self.dispatch_sweep();
    }

    /// Fault site: a worker stalls at a scheduling point (pause / yield), sleeping while
    /// it still holds its core — the non-progress signature the grant-to-run watchdog
    /// ([`Scheduler::watchdog_scan`]) exists to detect. No lock is held while sleeping.
    fn stall_point(&self, task: &TaskRef) {
        if let Some(stall) = fault_stall!(self, FaultSite::WorkerStall, Some(task.id())) {
            SchedulerMetrics::inc(&self.metrics.faults_injected);
            trace_event!(
                self,
                Instant::now(),
                TraceEvent::FaultInjected {
                    site: FaultSite::WorkerStall,
                    task: Some(task.id()),
                }
            );
            std::thread::sleep(stall);
        }
    }

    /// Block the calling task: release its core (handing it to the next ready task) and wait
    /// until a later [`Scheduler::submit`] reschedules it. This is `nosv_pause`.
    pub fn pause(&self, task: &TaskRef) {
        self.stall_point(task);
        let released;
        {
            let mut g = task.grant.lock();
            if g.released {
                return;
            }
            if g.pending_wakeups > 0 {
                g.pending_wakeups -= 1;
                SchedulerMetrics::inc(&self.metrics.pauses_elided);
                return;
            }
            released = g.granted.take();
            g.state = TaskState::Blocked;
        }
        SchedulerMetrics::inc(&self.metrics.pauses);
        SchedulerMetrics::inc(&task.stats.blocks);
        let off_core = Instant::now();
        if let Some(core) = released {
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(self.shard_of(core));
            self.release_core(&mut st, core, &mut wakes);
            drop(st);
            // About to park: deliver the owed notifications *now* — the Drop safety net
            // only runs when this frame unwinds, which is after the wait below.
            wakes.fire();
            self.dispatch_sweep();
        }
        self.prepark_drain();
        let _ = task.wait_grant_observed(self.record_dispatch());
        self.stats.stages.pause_block.record(off_core.elapsed());
    }

    /// Timed block: like [`Scheduler::pause`], but if no submit arrives within `timeout` the
    /// task re-submits itself and waits to be rescheduled. This is `nosv_waitfor` and is the
    /// building block for sleeps and the poll/epoll integration (§4.3.4).
    pub fn waitfor(&self, task: &TaskRef, timeout: Duration) -> WaitOutcome {
        SchedulerMetrics::inc(&self.metrics.waitfors);
        let released;
        {
            let mut g = task.grant.lock();
            if g.released {
                return WaitOutcome::Woken;
            }
            if g.pending_wakeups > 0 {
                g.pending_wakeups -= 1;
                SchedulerMetrics::inc(&self.metrics.pauses_elided);
                return WaitOutcome::Woken;
            }
            released = g.granted.take();
            g.state = TaskState::Blocked;
        }
        SchedulerMetrics::inc(&task.stats.blocks);
        let off_core = Instant::now();
        if let Some(core) = released {
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(self.shard_of(core));
            self.release_core(&mut st, core, &mut wakes);
            drop(st);
            // About to park (timed): fire before the wait, same as `pause`.
            wakes.fire();
            self.dispatch_sweep();
        }
        self.prepark_drain();
        let deadline = off_core + timeout;
        let outcome = match task.wait_grant_until_observed(deadline, self.record_dispatch()) {
            Some(_) => WaitOutcome::Woken,
            None => {
                // Timed out without being woken: resubmit ourselves and wait for a core.
                SchedulerMetrics::inc(&self.metrics.waitfor_timeouts);
                self.submit(task);
                let _ = task.wait_grant_observed(self.record_dispatch());
                WaitOutcome::TimedOut
            }
        };
        self.stats.stages.pause_block.record(off_core.elapsed());
        outcome
    }

    /// Voluntarily give the core to another ready task, requeueing the caller at the tail of
    /// its queue. Returns `true` if a switch happened, `false` if the core was kept because
    /// nothing else was ready. This is the `sched_yield` → `nosv_yield` path of §5.3.
    pub fn yield_now(&self, task: &TaskRef) -> bool {
        self.stall_point(task);
        // The "is switching useful" check reads the atomic gauge first: a yield storm
        // with nothing ready (the busy-wait-barrier pattern) touches neither the task's
        // grant lock nor the scheduler lock.
        if !self.has_ready() {
            SchedulerMetrics::inc(&self.metrics.yields_noop);
            return false;
        }
        let core = {
            let g = task.grant.lock();
            if g.released {
                return false;
            }
            match g.granted {
                Some(c) => c,
                None => return false,
            }
        };
        let si = self.shard_of(core);
        let mut wakes = WakeBatch::new();
        let mut st = self.lock_shard(si);
        self.drain_intake(&mut st, &mut wakes);
        // Pick the successor *before* requeueing ourselves: with per-core FIFO affinity the
        // yielding task would otherwise be at the head of its own core's queue and the yield
        // would hand the core straight back to it, starving everyone else.
        let now = Instant::now();
        let next_task = match self.pick_live(&mut st, core, now) {
            Some(t) => t,
            None => {
                // The gauge raced or every queued entry was stale; nothing to switch to.
                drop(st);
                SchedulerMetrics::inc(&self.metrics.yields_noop);
                return false;
            }
        };
        // Requeue ourselves at the tail and hand the core to the successor.
        {
            let mut g = task.grant.lock();
            // A submit may have raced in and counted a pending wake-up; that is fine — keep it.
            g.granted = None;
            g.queued = true;
            g.state = TaskState::Ready;
            g.ready_at = Some(now);
        }
        // A voluntary yield surrenders the affinity claim: requeueing with the last-ran
        // core as preference would put the yielder in that core's queue, where
        // affinity-first picking hands the core straight back to it (or a fellow
        // yielder) ahead of older ready tasks — a yield storm between busy-wait barrier
        // spinners would then starve every task that has never been granted a core.
        let meta = TaskMeta {
            id: task.id(),
            process: task.process(),
            preferred_core: None,
        };
        trace_event!(
            self,
            now,
            TraceEvent::Yield {
                task: task.id(),
                core,
            }
        );
        trace_event!(
            self,
            now,
            TraceEvent::Enqueue {
                process: meta.process,
                task: meta.id,
                preferred: meta.preferred_core,
            }
        );
        st.policy.enqueue(&self.topo, meta, now);
        st.queued.insert(task.id(), TaskRef::clone(task));
        self.shard_ready[si].fetch_add(1, Ordering::Relaxed);
        self.ready_tasks.fetch_add(1, Ordering::SeqCst);
        self.mark_busy(&mut st, core, next_task.id());
        self.grant(&next_task, core, false, &mut wakes);
        drop(st);
        // About to park waiting for our own next grant: hand the successor its wakeup
        // first (the Drop safety net would only fire after the wait returns).
        wakes.fire();
        SchedulerMetrics::inc(&self.metrics.yields);
        SchedulerMetrics::inc(&task.stats.yields);
        let off_core = Instant::now();
        let _ = task.wait_grant_observed(self.record_dispatch());
        self.stats.stages.yield_block.record(off_core.elapsed());
        true
    }

    /// Detach: the task finishes, its core is handed to the next ready task and it is removed
    /// from the scheduler. This is `nosv_detach`.
    pub fn detach(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.detaches);
        let released;
        {
            let mut g = task.grant.lock();
            released = g.granted.take();
            g.state = TaskState::Finished;
            g.released = true;
        }
        let mut wakes = WakeBatch::new();
        if let Some(core) = released {
            let mut st = self.lock_shard(self.shard_of(core));
            self.release_core(&mut st, core, &mut wakes);
        }
        // Registry removal is the task-table write: the one global-section touch of the
        // task lifecycle (not a scheduling point — the wake-churn hot path never gets
        // here).
        {
            let mut g = self.lock_global();
            let process = task.process();
            g.tasks.remove(&task.id());
            if let Some(p) = g.processes.get_mut(&process) {
                p.tasks_live = p.tasks_live.saturating_sub(1);
            }
        }
        wakes.fire();
        self.dispatch_sweep();
    }

    /// Shut the scheduler down: every task waiting for a core is released from scheduler
    /// control and resumes as a plain OS thread. This is a safety valve used by the USF
    /// layer at instance teardown so that buggy applications can never leave threads parked
    /// forever.
    ///
    /// The intake stack is drained under the same lock acquisition that sets the shutdown
    /// flag, so a submit racing shutdown can never leave a waiter parked: either its push
    /// lands before the drain (released below alongside the registered tasks), or its
    /// grant-slot update ran before the task's release (the task is in `tasks` — it was
    /// created before the flag was set — so it is released below and `wait_grant` returns
    /// immediately).
    pub fn shutdown(&self) {
        let (tasks, queued) = {
            let mut g = self.lock_global();
            g.shutdown = true;
            trace_event!(self, Instant::now(), TraceEvent::Shutdown);
            // Published before the drain: a submit that pushes after this drain will
            // observe the flag and self-heal (see `submit`), and every shard's dispatch
            // path refuses new grants from here on.
            self.shutting_down.store(true, Ordering::SeqCst);
            // Fault site: widen the flag-set → drain window so racing submits actually
            // land inside it (the self-heal path above is what must absorb them).
            if let Some(stall) = fault_stall!(self, FaultSite::ShutdownRace, None::<TaskId>) {
                SchedulerMetrics::inc(&self.metrics.faults_injected);
                trace_event!(
                    self,
                    Instant::now(),
                    TraceEvent::FaultInjected {
                        site: FaultSite::ShutdownRace,
                        task: None,
                    }
                );
                drop(g);
                std::thread::sleep(stall);
                g = self.lock_global();
            }
            let tasks: Vec<TaskRef> = g.tasks.values().cloned().collect();
            // Raw atomic-swap drains: a shard-lock drain racing us takes disjoint
            // entries, and either drainer releases its share (the flag is already set).
            let queued: Vec<_> = self.intakes.iter().flat_map(|i| i.drain()).collect();
            (tasks, queued)
        };
        self.ready_tasks.store(0, Ordering::SeqCst);
        for sr in self.shard_ready.iter() {
            sr.store(0, Ordering::Relaxed);
        }
        for t in tasks.iter().chain(queued.iter().map(|(t, _, _)| t)) {
            {
                let mut g = t.grant.lock();
                g.released = true;
            }
            // The global lock dropped above and the grant guard just did: the waiter
            // wakes into uncontended locks (collect-then-notify).
            t.grant_cv.notify_all();
        }
    }

    /// Whether the scheduler has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Grant-to-run watchdog: report every core whose current grant has been held for at
    /// least `max_hold` without reaching a scheduling point. Each non-progressing grant
    /// is flagged once (repeat scans stay quiet until the core is re-granted), and
    /// flagging bumps [`crate::metrics::SchedulerMetrics::stalls_detected`].
    ///
    /// Detection is deliberately report-only: a task that holds a core past the deadline
    /// is *running* on its bound worker thread (the USF binding of §4.2), so "requeueing"
    /// it would schedule a second incarnation of work that is still executing. The caller
    /// decides the response — log it, kill the owning process
    /// ([`Scheduler::kill_process`]), or widen the deadline.
    pub fn watchdog_scan(&self, max_hold: Duration) -> Vec<StallReport> {
        let now = Instant::now();
        // Multi-shard exception: visit every shard, one lock at a time in ascending
        // order (shard-major iteration equals core order — nodes own contiguous core
        // ranges), flagging under the owning shard's lock.
        let mut flagged: Vec<(CoreId, TaskId, Duration)> = Vec::new();
        for si in 0..self.shards.len() {
            let mut st = self.lock_shard(si);
            for li in 0..st.slots.len() {
                let CoreSlot::Busy(task) = st.slots[li] else {
                    continue;
                };
                let Some(at) = st.granted_at[li] else {
                    continue;
                };
                let held_for = now.saturating_duration_since(at);
                if held_for >= max_hold && !st.stall_flagged[li] {
                    st.stall_flagged[li] = true;
                    SchedulerMetrics::inc(&self.metrics.stalls_detected);
                    flagged.push((st.cores[li], task, held_for));
                }
            }
        }
        if flagged.is_empty() {
            // The common scan finds nothing: stay off the global section entirely, so a
            // background watchdog never perturbs the steady-state churn sentinel.
            return Vec::new();
        }
        let g = self.lock_global();
        flagged
            .into_iter()
            .map(|(core, task, held_for)| StallReport {
                core,
                task,
                process: g.tasks.get(&task).map(|t| t.process()).unwrap_or_default(),
                held_for,
            })
            .collect()
    }

    /// An artificial scheduling point for watchdog/maintenance threads: drain the intake
    /// and dispatch idle cores exactly as an ordinary scheduling point would, then return
    /// how many intake entries were recovered.
    ///
    /// The drain deliberately bypasses an armed [`FaultSite::DelayIntakeDrain`] fault — a
    /// rescue must not itself be delayed. This is the degradation story for delayed
    /// drains: in a fully cooperative system a submit stranded in the intake is only
    /// recovered at the *next* scheduling point, and if every thread is already parked
    /// there is none; a periodic `rescue_drain` bounds that delay without perturbing an
    /// otherwise healthy schedule (an empty intake makes this a cheap no-op).
    pub fn rescue_drain(&self) -> usize {
        if self.shutting_down.load(Ordering::SeqCst) {
            return 0;
        }
        let mut n = 0;
        for si in 0..self.shards.len() {
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(si);
            n += self.drain_intake_forced(&mut st, &mut wakes);
            self.dispatch_idle_cores(&mut st, &mut wakes);
            drop(st);
            wakes.fire();
        }
        n
    }

    /// The featureless idle-worker drain: called on the block paths (`attach`, `pause`,
    /// `waitfor`) immediately before parking, so a submit that raced onto the intake
    /// while its target system looked busy is granted *now* rather than at the next
    /// organic scheduling point (the `intake_wait` max of ~32ms in `BENCH_sched.json`
    /// was exactly this window, visible whenever every worker was parked). The empty
    /// check is lock-free, so the common park — nothing pending — costs two atomic
    /// loads and never touches the scheduler lock.
    fn prepark_drain(&self) {
        if self.intake_depth() == 0 || self.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        for si in 0..self.shards.len() {
            if self.shards.len() > 1 && self.intakes[si].depth() == 0 {
                continue;
            }
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(si);
            self.drain_intake(&mut st, &mut wakes);
            self.dispatch_idle_cores(&mut st, &mut wakes);
            drop(st);
            wakes.fire();
        }
        self.dispatch_sweep();
    }

    // -------------------------------------------------------------------------------------
    // Internals (scheduler lock held)
    // -------------------------------------------------------------------------------------

    /// Grant `core` to `task`. Caller holds the scheduler lock and has already marked the
    /// core busy. `immediate` records whether this grant bypassed the policy queues (an
    /// idle-core grant straight from `place_ready_task`, with no preceding pop). The
    /// waiter's condvar notification is *not* delivered here — it is owed to `wakes`,
    /// which the caller fires after dropping the scheduler lock (collect-then-notify; the
    /// grant-slot predicate is fully published below, so the deferral loses no wakeup).
    fn grant(&self, task: &TaskRef, core: CoreId, immediate: bool, wakes: &mut WakeBatch) {
        let placement = classify_placement(&self.topo, task.preferred_core(), core);
        SchedulerMetrics::inc(&self.metrics.grants);
        SchedulerMetrics::inc(&task.stats.grants);
        match placement {
            PlacementKind::Affinity => SchedulerMetrics::inc(&self.metrics.affinity_hits),
            PlacementKind::Numa => SchedulerMetrics::inc(&self.metrics.numa_hits),
            PlacementKind::Remote => SchedulerMetrics::inc(&self.metrics.remote_grants),
        }
        if let Some(from) = task.preferred_core() {
            if from != core {
                trace_event!(
                    self,
                    Instant::now(),
                    TraceEvent::Migrate {
                        task: task.id(),
                        from,
                        to: core,
                    }
                );
            }
        }
        trace_event!(
            self,
            Instant::now(),
            TraceEvent::Grant {
                task: task.id(),
                core,
                immediate,
            }
        );
        task.record_core(core);
        {
            let mut g = task.grant.lock();
            let now = Instant::now();
            // Close the enqueue→grant (wake-latency) stage and open grant→first-run
            // (dispatch): both are lock-free histogram records — the scheduler lock is
            // already held here, and no *additional* lock is taken.
            if let Some(ready_at) = g.ready_at.take() {
                self.stats
                    .stages
                    .wake
                    .record(now.saturating_duration_since(ready_at));
            }
            g.dispatched_at = Some(now);
            g.granted = Some(core);
            g.queued = false;
            g.state = TaskState::Running;
        }
        wakes.push(TaskRef::clone(task));
    }

    /// Transition a core slot to busy, maintaining the idle-core gauge and the watchdog's
    /// grant timestamp. Caller holds `core`'s owning shard lock.
    fn mark_busy(&self, st: &mut ShardState, core: CoreId, id: TaskId) {
        let li = self.core_shard[core].1;
        debug_assert_eq!(self.core_shard[core].0, st.si);
        if matches!(st.slots[li], CoreSlot::Idle) {
            self.idle_cores.fetch_sub(1, Ordering::SeqCst);
        }
        st.slots[li] = CoreSlot::Busy(id);
        st.granted_at[li] = Some(Instant::now());
        st.stall_flagged[li] = false;
    }

    /// Transition a core slot to idle, maintaining the idle-core gauge. Caller holds
    /// `core`'s owning shard lock.
    fn mark_idle(&self, st: &mut ShardState, core: CoreId) {
        let li = self.core_shard[core].1;
        debug_assert_eq!(self.core_shard[core].0, st.si);
        if !matches!(st.slots[li], CoreSlot::Idle) {
            self.idle_cores.fetch_add(1, Ordering::SeqCst);
        }
        st.slots[li] = CoreSlot::Idle;
        st.granted_at[li] = None;
        st.stall_flagged[li] = false;
    }

    /// Move every intake entry into the scheduler proper: stale entries (task detached, or
    /// shutdown) are dropped, tasks whose process was deregistered while they sat in the
    /// intake are released (placing them would resurrect the purged process in the
    /// rotation, and they could never be picked once purged again), and live ones are
    /// placed ([`Scheduler::place_ready_task`]). Callers hold the shard lock, which is
    /// what serializes drains of that shard's intake.
    fn drain_intake(&self, st: &mut ShardState, wakes: &mut WakeBatch) {
        // Fault site: skip this drain, delaying queued submits to the next scheduling
        // point. Never skipped once shutdown is underway — the released-waiter guarantee
        // relies on the shutdown drain, and a fault plan must not turn a delay into a
        // liveness hole the hardening cannot see.
        if !self.shutting_down.load(Ordering::SeqCst)
            && fault_fires!(self, FaultSite::DelayIntakeDrain, None::<TaskId>)
        {
            SchedulerMetrics::inc(&self.metrics.faults_injected);
            trace_event!(
                self,
                Instant::now(),
                TraceEvent::FaultInjected {
                    site: FaultSite::DelayIntakeDrain,
                    task: None,
                }
            );
            return;
        }
        self.drain_intake_forced(st, wakes);
    }

    /// The drain body proper, never subject to the [`FaultSite::DelayIntakeDrain`] fault:
    /// [`Scheduler::rescue_drain`] calls this directly because a rescue must not itself
    /// be delayed. With one shard (flat policies) this collects every per-node intake and
    /// merges by the global `intake_seq` stamp, so the sharded intake is processed in
    /// exactly the order the old single stack gave; under the split scheduler each shard
    /// drains only its own node's intake (the stamp still orders entries within it).
    /// Returns how many intake entries were processed.
    fn drain_intake_forced(&self, st: &mut ShardState, wakes: &mut WakeBatch) -> usize {
        let mut drained: Vec<(TaskRef, Instant, u64)> = Vec::new();
        if self.shards.len() == 1 {
            for intake in self.intakes.iter() {
                drained.extend(intake.drain());
            }
        } else {
            drained.extend(self.intakes[st.si].drain());
        }
        let n = drained.len();
        if drained.is_empty() {
            return 0;
        }
        // Restore submission order across what was collected (each intake is already
        // oldest-first, so this is a cheap merge for the sort's adaptive path).
        drained.sort_by_key(|&(_, _, seq)| seq);
        let now = Instant::now();
        trace_event!(self, now, TraceEvent::IntakeDrain { n });
        for (task, pushed_at, _seq) in drained {
            // Close the submit→drain stage: how long the wake-up sat in the intake.
            self.stats
                .stages
                .intake_wait
                .record(now.saturating_duration_since(pushed_at));
            // `is_released()` is the shard-local equivalent of the old "still in the
            // task table" check: detach/kill mark a task released exactly when removing
            // it from the table.
            if self.shutting_down.load(Ordering::SeqCst) || task.is_released() {
                self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            if !task.proc_alive() {
                self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
                if task.release_if_unreleased() {
                    // Collect-then-notify: woken after the shard lock drops.
                    wakes.push(task);
                }
                continue;
            }
            self.place_ready_task(st, &task, wakes);
        }
        n
    }

    /// Place a ready task: grant it an idle core if one is available (honouring affinity)
    /// and no older work is queued, otherwise enqueue it in the shard's policy.
    ///
    /// The `has_ready` guard keeps intake draining fair: a task published after older
    /// tasks were queued in the policy must not jump them just because a core went idle in
    /// between — it is enqueued instead, and the pop tiers (which include the aging valve)
    /// decide.
    fn place_ready_task(&self, st: &mut ShardState, task: &TaskRef, wakes: &mut WakeBatch) {
        let now = Instant::now();
        if !st.policy.has_ready() {
            // The placement domain is read from the task's shared process cell — the
            // shard-local path never consults the global process table.
            let domain = task.proc_domain();
            if let Some(core) = self.choose_idle_core(st, task.preferred_core(), domain.as_deref())
            {
                // The task was marked queued by the caller; the grant clears it.
                self.mark_busy(st, core, task.id());
                self.grant(task, core, true, wakes);
                self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
                return;
            }
        }
        let meta = TaskMeta {
            id: task.id(),
            process: task.process(),
            preferred_core: task.preferred_core(),
        };
        trace_event!(
            self,
            now,
            TraceEvent::Enqueue {
                process: meta.process,
                task: meta.id,
                preferred: meta.preferred_core,
            }
        );
        st.policy.enqueue(&self.topo, meta, now);
        st.queued.insert(task.id(), TaskRef::clone(task));
        self.shard_ready[st.si].fetch_add(1, Ordering::Relaxed);
    }

    /// Pick an idle core *owned by this shard* for a task with the given preference:
    /// preferred core if idle, else an idle core in the same NUMA node, else any idle
    /// core of the shard — all restricted to the task's process placement domain when one
    /// is set. (With one shard this is exactly the old whole-machine scan.)
    fn choose_idle_core(
        &self,
        st: &ShardState,
        preferred: Option<CoreId>,
        domain: Option<&[CoreId]>,
    ) -> Option<CoreId> {
        let allowed = |c: CoreId| domain.map_or(true, |d| d.contains(&c));
        let is_idle = |c: CoreId| {
            let (si, li) = self.core_shard[c];
            si == st.si && matches!(st.slots[li], CoreSlot::Idle) && allowed(c)
        };
        if let Some(p) = preferred {
            if p < self.topo.num_cores() {
                if is_idle(p) {
                    return Some(p);
                }
                let node = self.topo.node_of(p);
                if let Some(c) = self.topo.cores_in_node(node).find(|&c| is_idle(c)) {
                    return Some(c);
                }
            }
        }
        st.cores.iter().copied().find(|&c| is_idle(c))
    }

    /// A core became free: drain the shard's intake, then hand the core to the next ready
    /// task according to the policy (if the drain did not already fill it), or leave it
    /// idle.
    fn release_core(&self, st: &mut ShardState, core: CoreId, wakes: &mut WakeBatch) {
        self.mark_idle(st, core);
        self.drain_intake(st, wakes);
        // Hot path: only the freed core can normally be idle while work is queued
        // (place_ready_task grants idle cores whenever the policy is empty), so dispatch
        // it directly instead of scanning all slots under the lock.
        let li = self.core_shard[core].1;
        if matches!(st.slots[li], CoreSlot::Idle) {
            self.dispatch_core(st, core, Instant::now(), wakes);
        }
        // Rare: stale entries of detached tasks can leave *other* cores idle while the
        // policy still reports ready work — fall back to the full scan only then.
        if (st.policy.has_ready() || self.others_ready(st.si))
            && self.idle_cores.load(Ordering::SeqCst) > 0
        {
            self.dispatch_idle_cores(st, wakes);
        }
    }

    /// One pick attempt for `core` across the shard boundary, in strict priority order:
    ///
    /// 1. **Cross-shard aging valve** (rate-limited to one probe per quantum per shard):
    ///    a foreign shard's over-aged work is taken ahead of local work, so per-node
    ///    locking cannot starve a task whose home node went quiet. Foreign shards are
    ///    reached by `try_lock` only — a busy victim is skipped, never waited on.
    /// 2. **Local pick** through the shard policy's normal tiers.
    /// 3. **Cross-shard steal** on local exhaustion (also `try_lock`-only), oldest-victim
    ///    order starting at the next node.
    ///
    /// Exactly one logical pick per call (the valve tick included), so a recorded
    /// `Pop`/`PopEmpty` event advances replayed policy state identically. With one shard
    /// this reduces to `policy.pick_traced` exactly.
    fn split_pick_once(
        &self,
        st: &mut ShardState,
        core: CoreId,
        now: Instant,
    ) -> Option<(TaskMeta, Option<PickTier>, Option<TaskRef>)> {
        let n = self.shards.len();
        if n > 1 && st.xvalve.crossed(now, self.config.process_quantum) {
            for off in 1..n {
                let vi = (st.si + off) % n;
                if self.shard_ready[vi].load(Ordering::Relaxed) == 0 {
                    continue;
                }
                let Some(mut vg) = self.try_lock_shard(vi) else {
                    continue;
                };
                if let Some(meta) = vg.policy.pick_aged(&self.topo, core, now) {
                    let task = vg.queued.remove(&meta.id);
                    self.shard_ready[vi].fetch_sub(1, Ordering::Relaxed);
                    self.stats.shards[st.si]
                        .valve_crossings
                        .fetch_add(1, Ordering::Relaxed);
                    return Some((meta, Some(PickTier::Aged), task));
                }
            }
        }
        if let Some((meta, tier)) = st.policy.pick_traced(&self.topo, core, now) {
            let task = st.queued.remove(&meta.id);
            self.shard_ready[st.si].fetch_sub(1, Ordering::Relaxed);
            return Some((meta, tier, task));
        }
        if n > 1 {
            for off in 1..n {
                let vi = (st.si + off) % n;
                if self.shard_ready[vi].load(Ordering::Relaxed) == 0 {
                    continue;
                }
                let Some(mut vg) = self.try_lock_shard(vi) else {
                    continue;
                };
                if let Some((meta, tier)) = vg.policy.pick_traced(&self.topo, core, now) {
                    let task = vg.queued.remove(&meta.id);
                    self.shard_ready[vi].fetch_sub(1, Ordering::Relaxed);
                    // Steals are counted against the shard that lost the entry.
                    self.stats.shards[vi].steals.fetch_add(1, Ordering::Relaxed);
                    return Some((meta, tier, task));
                }
            }
        }
        None
    }

    /// Pop ready tasks (local, valve, or stolen — see [`Scheduler::split_pick_once`])
    /// until a live one is found, maintaining the ready gauge. Stale queue entries (tasks
    /// detached while still queued) are skipped and reconciled here.
    fn pick_live(&self, st: &mut ShardState, core: CoreId, now: Instant) -> Option<TaskRef> {
        while let Some((meta, tier, task)) = self.split_pick_once(st, core, now) {
            self.ready_tasks.fetch_sub(1, Ordering::SeqCst);
            trace_event!(
                self,
                now,
                TraceEvent::Pop {
                    core,
                    tier,
                    task: meta.id,
                }
            );
            if let Some(task) = task {
                if !task.is_released() {
                    return Some(task);
                }
            }
        }
        // The empty pick still re-armed the aging valve — record it so the replayed
        // policy's valve state stays in lockstep (see `TraceEvent::PopEmpty`).
        trace_event!(self, now, TraceEvent::PopEmpty { core });
        None
    }

    /// Try to dispatch a ready task onto an idle core of this shard.
    fn dispatch_core(
        &self,
        st: &mut ShardState,
        core: CoreId,
        now: Instant,
        wakes: &mut WakeBatch,
    ) {
        debug_assert!(matches!(st.slots[self.core_shard[core].1], CoreSlot::Idle));
        if self.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        if let Some(task) = self.pick_live(st, core, now) {
            self.mark_busy(st, core, task.id());
            self.grant(&task, core, false, wakes);
        }
    }

    /// Dispatch ready work onto every idle core of this shard (cheap early-exit when
    /// nothing is ready here or in a stealable foreign shard).
    fn dispatch_idle_cores(&self, st: &mut ShardState, wakes: &mut WakeBatch) {
        if self.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        for li in 0..st.slots.len() {
            if !(st.policy.has_ready() || self.others_ready(st.si)) {
                break;
            }
            if matches!(st.slots[li], CoreSlot::Idle) {
                let core = st.cores[li];
                self.dispatch_core(st, core, now, wakes);
            }
        }
    }

    /// Cross-shard liveness sweep: after an operation that freed cores or enqueued work
    /// in one shard, visit the *other* shards (one lock at a time, never while holding a
    /// shard lock) so an idle core over there picks up work it could not see. A no-op
    /// with one shard; guarded by the lock-free gauges so the steady state — every core
    /// busy, or nothing ready — pays two atomic loads and takes no lock.
    fn dispatch_sweep(&self) {
        if self.shards.len() == 1 {
            return;
        }
        for si in 0..self.shards.len() {
            if self.shutting_down.load(Ordering::SeqCst)
                || !self.has_ready()
                || self.idle_cores.load(Ordering::SeqCst) == 0
            {
                return;
            }
            let mut wakes = WakeBatch::new();
            let mut st = self.lock_shard(si);
            self.drain_intake(&mut st, &mut wakes);
            self.dispatch_idle_cores(&mut st, &mut wakes);
            drop(st);
            wakes.fire();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn sched(cores: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(NosvConfig::with_cores(cores)))
    }

    #[test]
    fn register_and_list_processes() {
        let s = sched(2);
        let a = s.register_process("a");
        let b = s.register_process("b");
        assert_ne!(a, b);
        let procs = s.processes();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].1, "a");
        s.deregister_process(a);
        assert_eq!(s.processes().len(), 1);
    }

    #[test]
    fn create_task_requires_known_process() {
        let s = sched(1);
        assert!(matches!(
            s.create_task(99, None),
            Err(NosvError::UnknownProcess(99))
        ));
        let p = s.register_process("p");
        assert!(s.create_task(p, None).is_ok());
    }

    #[test]
    fn submit_grants_idle_core_immediately() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert_eq!(t.state(), TaskState::Running);
        assert!(t.current_core().is_some());
        assert_eq!(s.busy_cores(), 1);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn submit_queues_when_cores_are_busy() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        assert_eq!(t1.state(), TaskState::Running);
        assert_eq!(t2.state(), TaskState::Ready);
        assert_eq!(s.ready_count(), 1);
        // Detaching t1 hands the core to t2.
        s.detach(&t1);
        assert_eq!(t2.state(), TaskState::Running);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn submit_locked_after_deregister_releases_instead_of_granting() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.deregister_process(p);
        // The task was created before the deregister and never submitted, so the
        // scheduler still knows it — but its process is gone. The locked submit path
        // must release it, not grant it a core (it would run outside any registered
        // domain) and not enqueue it (the policy would auto-re-register the purged
        // process in the quantum rotation as a ghost).
        s.submit_locked(&t);
        assert_ne!(t.state(), TaskState::Running);
        assert_eq!(s.busy_cores(), 0);
        assert_eq!(s.ready_count(), 0);
        assert!(t.grant.lock().released, "stranded waiter must be released");
        assert!(s.processes().is_empty(), "purged process must stay purged");
    }

    #[test]
    fn never_more_running_tasks_than_cores() {
        let s = sched(2);
        let p = s.register_process("p");
        let tasks: Vec<_> = (0..8).map(|_| s.create_task(p, None).unwrap()).collect();
        for t in &tasks {
            s.submit(t);
        }
        let running = tasks
            .iter()
            .filter(|t| t.state() == TaskState::Running)
            .count();
        assert_eq!(running, 2);
        assert_eq!(s.ready_count(), 6);
        assert_eq!(s.busy_cores(), 2);
    }

    #[test]
    fn pending_wakeup_elides_pause() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t); // granted core 0
        s.submit(&t); // arrives "early" -> counted
                      // The pause must not block (it consumes the counted wake-up).
        s.pause(&t);
        assert_eq!(t.state(), TaskState::Running);
        let m = s.metrics().snapshot();
        assert_eq!(m.pending_wakeups, 1);
        assert_eq!(m.pauses_elided, 1);
    }

    #[test]
    fn pause_releases_core_to_next_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        let blocked = Arc::new(AtomicUsize::new(0));
        let blocked2 = Arc::clone(&blocked);
        let h = std::thread::spawn(move || {
            blocked2.store(1, Ordering::SeqCst);
            s2.pause(&t1c); // blocks until someone resubmits t1
            blocked2.store(2, Ordering::SeqCst);
        });
        // Wait until t2 got the core (t1 paused).
        while t2.state() != TaskState::Running {
            std::thread::yield_now();
        }
        assert_eq!(t1.state(), TaskState::Blocked);
        assert_eq!(blocked.load(Ordering::SeqCst), 1);
        // Resume t1: t2 still holds the core, so t1 queues; release t2's core via detach.
        s.submit(&t1);
        assert_eq!(t1.state(), TaskState::Ready);
        s.detach(&t2);
        h.join().unwrap();
        assert_eq!(blocked.load(Ordering::SeqCst), 2);
        assert_eq!(t1.state(), TaskState::Running);
        s.detach(&t1);
    }

    #[test]
    fn waitfor_times_out_and_reschedules() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let outcome = s.waitfor(&t, Duration::from_millis(5));
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert_eq!(t.state(), TaskState::Running);
        let m = s.metrics().snapshot();
        assert_eq!(m.waitfors, 1);
        assert_eq!(m.waitfor_timeouts, 1);
    }

    #[test]
    fn waitfor_woken_early_by_submit() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let s2 = Arc::clone(&s);
        let t2 = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.waitfor(&t2, Duration::from_secs(10)));
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        let outcome = h.join().unwrap();
        assert_eq!(outcome, WaitOutcome::Woken);
    }

    #[test]
    fn yield_without_ready_tasks_keeps_core() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert!(!s.yield_now(&t));
        assert_eq!(t.state(), TaskState::Running);
        assert_eq!(s.metrics().snapshot().yields_noop, 1);
    }

    #[test]
    fn yield_switches_to_queued_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2); // queued behind t1
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        let h = std::thread::spawn(move || s2.yield_now(&t1c));
        // t2 must get the core; t1 requeued.
        while t2.state() != TaskState::Running {
            std::thread::yield_now();
        }
        // Give the core back so t1 can resume and the yielding thread can finish.
        s.detach(&t2);
        assert!(h.join().unwrap());
        assert_eq!(t1.state(), TaskState::Running);
    }

    #[test]
    fn detach_frees_core_and_forgets_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert_eq!(s.live_tasks(), 1);
        s.detach(&t);
        assert_eq!(s.live_tasks(), 0);
        assert_eq!(s.busy_cores(), 0);
    }

    #[test]
    fn shutdown_releases_waiting_tasks() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        let t2c = TaskRef::clone(&t2);
        // t2 waits for a core (attach blocks); shutdown must release it.
        let h = std::thread::spawn(move || {
            t2c.wait_grant() // returns None on release
        });
        std::thread::sleep(Duration::from_millis(10));
        s.shutdown();
        assert_eq!(h.join().unwrap(), None);
        assert!(s.is_shutdown());
        // Operations after shutdown are inert.
        assert!(matches!(s.create_task(p, None), Err(NosvError::ShutDown)));
        s.pause(&t1);
        assert!(!s.yield_now(&t1));
    }

    #[test]
    fn process_domain_restricts_immediate_grants_and_picks() {
        let s = Arc::new(Scheduler::new(NosvConfig::with_topology(Topology::new(
            4, 2,
        ))));
        let p = s.register_process("pinned");
        // Pin the process to node 1 (cores 2, 3); out-of-range cores are dropped.
        s.set_process_domain(p, Some(vec![2, 3, 99]));
        let t1 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        assert!(
            t1.current_core().unwrap() >= 2,
            "immediate grant must stay inside the domain (got {:?})",
            t1.current_core()
        );
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t2);
        assert!(t2.current_core().unwrap() >= 2);
        // Both domain cores busy: the next task queues even though cores 0/1 are idle.
        let t3 = s.create_task(p, None).unwrap();
        s.submit(&t3);
        assert_eq!(t3.state(), TaskState::Ready);
        assert_eq!(s.busy_cores(), 2);
        // Freeing a domain core dispatches the queued task onto it.
        s.detach(&t1);
        assert!(t3.current_core().unwrap() >= 2);
        // Clearing the domain un-restricts placement.
        s.set_process_domain(p, None);
        let t4 = s.create_task(p, None).unwrap();
        s.submit(&t4);
        assert!(t4.current_core().unwrap() < 2, "unrestricted grant");
    }

    #[test]
    fn set_domain_on_deregistered_process_is_a_noop() {
        // Restricting a process after deregistration must not resurrect it in the
        // policy's quantum rotation (a ghost the grant path knows nothing about).
        let s = sched(2);
        let p = s.register_process("gone");
        s.deregister_process(p);
        s.set_process_domain(p, Some(vec![0]));
        assert!(s.processes().is_empty());
        // A live process still schedules normally afterwards.
        let q = s.register_process("live");
        let t = s.create_task(q, None).unwrap();
        s.submit(&t);
        assert_eq!(t.state(), TaskState::Running);
    }

    #[test]
    fn fully_out_of_range_domain_is_ignored() {
        let s = sched(2);
        let p = s.register_process("p");
        s.set_process_domain(p, Some(vec![57]));
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert_eq!(
            t.state(),
            TaskState::Running,
            "a dead domain must not strand the task"
        );
    }

    #[test]
    fn affinity_preferred_on_resubmit() {
        let s = sched(4);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let first = t.current_core().unwrap();
        // Pause (from this thread it would block, so emulate: pretend a wakeup is pending
        // after releasing) — instead just detach-and-recreate pattern: pause on another thread.
        let s2 = Arc::clone(&s);
        let tc = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.pause(&tc));
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        h.join().unwrap();
        assert_eq!(
            t.current_core().unwrap(),
            first,
            "resubmit should honour the preferred core"
        );
        let m = s.metrics().snapshot();
        assert!(m.affinity_hits >= 1);
    }

    #[test]
    fn submit_fast_path_takes_no_scheduler_lock() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        s.submit(&t1); // occupies the only core
        let tasks: Vec<_> = (0..8).map(|_| s.create_task(p, None).unwrap()).collect();
        let before = s.metrics().snapshot().lock_acquisitions;
        for t in &tasks {
            s.submit(t); // all cores busy: intake CAS only
        }
        let snap = s.metrics().snapshot();
        assert_eq!(
            snap.lock_acquisitions, before,
            "submit to a fully busy system must not acquire the scheduler lock"
        );
        assert_eq!(snap.intake_submits, 9);
        assert_eq!(s.ready_count(), 8);
        assert!(s.has_ready());
        for t in &tasks {
            assert_eq!(t.state(), TaskState::Ready);
        }
        // The intake is drained at the next scheduling point: detaching t1 dispatches the
        // oldest waiter.
        s.detach(&t1);
        assert_eq!(tasks[0].state(), TaskState::Running);
        assert_eq!(s.ready_count(), 7);
    }

    #[test]
    fn yield_noop_check_is_lock_free() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let before = s.metrics().snapshot().lock_acquisitions;
        for _ in 0..16 {
            assert!(!s.yield_now(&t));
        }
        let snap = s.metrics().snapshot();
        assert_eq!(
            snap.lock_acquisitions, before,
            "yield with nothing ready must not acquire the scheduler lock"
        );
        assert_eq!(snap.yields_noop, 16);
    }

    #[test]
    fn shutdown_drains_intake_without_parking_waiters() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        s.submit(&t1); // occupies the only core
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t2); // sits in the intake stack (no idle core)
        s.shutdown();
        // The waiter must be released, not parked forever.
        assert_eq!(t2.wait_grant(), None);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn submit_racing_shutdown_never_parks_a_waiter() {
        for _ in 0..50 {
            let s = sched(1);
            let p = s.register_process("p");
            let t1 = s.create_task(p, None).unwrap();
            s.submit(&t1); // keep the core busy so racing submits hit the intake
            let t2 = s.create_task(p, None).unwrap();
            let s2 = Arc::clone(&s);
            let t2c = TaskRef::clone(&t2);
            let h = std::thread::spawn(move || {
                s2.submit(&t2c);
                t2c.wait_grant() // must terminate: granted or released, never parked
            });
            s.shutdown();
            let _ = h.join().unwrap();
        }
    }

    #[test]
    fn deregister_process_reconciles_ready_gauge() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        let t3 = s.create_task(p, None).unwrap();
        s.submit(&t1); // granted the only core
        s.submit(&t2); // intake
        s.submit(&t3); // intake
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        // Pausing t1 drains the intake: t2 takes the core, t3 lands in the policy queues.
        let h = std::thread::spawn(move || s2.pause(&t1c));
        while t2.state() != TaskState::Running {
            std::thread::yield_now();
        }
        assert_eq!(s.ready_count(), 1);
        // Deregistering drops t3's queued entry; the gauge must follow, or has_ready()
        // stays stuck true and every future yield takes the slow path.
        s.deregister_process(p);
        assert_eq!(s.ready_count(), 0);
        assert!(!s.has_ready());
        s.shutdown();
        h.join().unwrap();
    }

    #[test]
    fn deregister_releases_queued_waiters() {
        // A queued task whose process is deregistered can never be picked again; its
        // waiter must be released (the shutdown safety valve), not parked forever.
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        s.submit(&t1); // occupies the only core
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t2); // queued
        let t2c = TaskRef::clone(&t2);
        let h = std::thread::spawn(move || t2c.wait_grant());
        s.deregister_process(p);
        assert_eq!(
            h.join().unwrap(),
            None,
            "waiter must resume, not stay parked"
        );
        // t1 keeps running (deregister does not touch granted tasks).
        assert_eq!(t1.state(), TaskState::Running);
    }

    #[test]
    fn deregister_purges_intake_tasks_of_process() {
        // Regression: a task still sitting in the lock-free intake when its process is
        // deregistered must be flushed and purged with the process — a later drain must
        // not re-enqueue it and resurrect the process in the quantum rotation.
        let s = sched(1);
        let pa = s.register_process("a");
        let pb = s.register_process("b");
        let t1 = s.create_task(pb, None).unwrap();
        s.submit(&t1); // occupies the only core
        let t2 = s.create_task(pa, None).unwrap();
        s.submit(&t2); // sits in the intake
        s.deregister_process(pa);
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.processes().len(), 1);
        // The next scheduling point must find nothing ready (t2 was purged, not parked
        // in the policy under a resurrected process).
        s.detach(&t1);
        assert_eq!(s.busy_cores(), 0);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn busy_cores_gauge_tracks_slots() {
        let s = sched(2);
        let p = s.register_process("p");
        assert_eq!(s.busy_cores(), 0);
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        assert_eq!(s.busy_cores(), 1);
        s.submit(&t2);
        assert_eq!(s.busy_cores(), 2);
        s.detach(&t2);
        assert_eq!(s.busy_cores(), 1);
        s.detach(&t1);
        assert_eq!(s.busy_cores(), 0);
    }

    #[test]
    fn deregister_releases_blocked_waiters() {
        // A task blocked in pause (not queued — it released its core and waits for a
        // future submit) whose process is deregistered can never be woken through the
        // scheduler again; the generalized release must cover it, not just queued tasks.
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        let h = std::thread::spawn(move || s2.pause(&t1c));
        while t1.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.deregister_process(p);
        h.join().unwrap(); // must return: the blocked waiter was released
        assert!(t1.grant.lock().released);
    }

    #[test]
    fn watchdog_flags_held_core_once_per_grant() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        // Fresh grant: a generous deadline sees no stall.
        assert!(s.watchdog_scan(Duration::from_secs(10)).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        let reports = s.watchdog_scan(Duration::from_millis(5));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].task, t.id());
        assert_eq!(reports[0].process, p);
        assert!(reports[0].held_for >= Duration::from_millis(5));
        assert_eq!(s.metrics().snapshot().stalls_detected, 1);
        // The same grant is not re-flagged.
        assert!(s.watchdog_scan(Duration::from_millis(5)).is_empty());
        // A fresh grant re-arms the flag.
        let s2 = Arc::clone(&s);
        let tc = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.pause(&tc));
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        h.join().unwrap();
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(s.watchdog_scan(Duration::from_millis(5)).len(), 1);
    }

    #[test]
    fn kill_process_reclaims_running_and_waiting_tasks() {
        let s = sched(1);
        let pa = s.register_process("victim");
        let pb = s.register_process("cotenant");
        let ta1 = s.create_task(pa, None).unwrap();
        s.submit(&ta1); // runs on the only core
        let ta2 = s.create_task(pa, None).unwrap();
        s.submit(&ta2); // waits (intake)
        let tb = s.create_task(pb, None).unwrap();
        s.submit(&tb); // waits behind it
        let ta2c = TaskRef::clone(&ta2);
        let h = std::thread::spawn(move || ta2c.wait_grant());
        let report = s.kill_process(pa);
        assert_eq!(report.running_preempted, 1, "ta1 evicted from its core");
        // The waiter must resume released, never granted.
        assert_eq!(h.join().unwrap(), None);
        assert!(ta1.grant.lock().released);
        // The freed core went straight to the co-tenant's ready work.
        assert_eq!(tb.state(), TaskState::Running);
        assert_eq!(s.busy_cores(), 1);
        assert_eq!(s.live_tasks(), 1);
        assert_eq!(s.processes().len(), 1);
        assert_eq!(s.ready_count(), 0);
        let m = s.metrics().snapshot();
        assert_eq!(m.processes_killed, 1);
        assert_eq!(m.tasks_reclaimed, 2);
        // A detach from the evicted task's worker (it finishes as a plain OS thread)
        // stays inert.
        s.detach(&ta1);
        assert_eq!(tb.state(), TaskState::Running);
    }

    #[test]
    fn kill_unknown_process_is_a_noop() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let report = s.kill_process(999);
        assert_eq!(report, KillReport::default());
        assert_eq!(t.state(), TaskState::Running);
        assert_eq!(s.metrics().snapshot().processes_killed, 0);
    }

    #[test]
    fn detached_queued_task_is_skipped() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        let t3 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        s.submit(&t3);
        // t2 is queued; detach it while queued. Freeing t1's core must skip t2's stale queue
        // entry and dispatch t3 directly.
        s.detach(&t2);
        s.detach(&t1);
        assert_eq!(t3.state(), TaskState::Running);
    }

    #[cfg(feature = "fault-inject")]
    mod faulty {
        use super::*;
        use crate::faults::{FaultPlan, FaultSite, FaultSpec};

        fn faulted(
            cores: usize,
            plan: FaultPlan,
        ) -> (Arc<Scheduler>, Arc<crate::faults::FaultState>) {
            let s = Arc::new(Scheduler::new(NosvConfig::with_cores(cores)));
            let fs = s.install_faults(&plan);
            (s, fs)
        }

        #[test]
        fn drop_wakeup_loses_exactly_the_armed_submits() {
            let plan =
                FaultPlan::new(1).arm(FaultSpec::new(FaultSite::DropWakeup).one_in(1).max_fires(1));
            let (s, fs) = faulted(2, plan);
            let p = s.register_process("p");
            let t = s.create_task(p, None).unwrap();
            s.submit(&t); // dropped: no grant-slot bookkeeping at all
            assert_eq!(t.state(), TaskState::Created);
            assert_eq!(s.ready_count(), 0);
            assert_eq!(s.busy_cores(), 0);
            assert_eq!(fs.fires(FaultSite::DropWakeup), 1);
            assert_eq!(s.metrics().snapshot().faults_injected, 1);
            // The level-triggered retry contract: re-submitting recovers the task.
            s.submit(&t);
            assert_eq!(t.state(), TaskState::Running);
        }

        #[test]
        fn duplicate_wakeup_is_absorbed_by_the_grant_slot() {
            let plan = FaultPlan::new(2).arm(
                FaultSpec::new(FaultSite::DuplicateWakeup)
                    .one_in(1)
                    .max_fires(1),
            );
            let (s, fs) = faulted(1, plan);
            let p = s.register_process("p");
            let t = s.create_task(p, None).unwrap();
            s.submit(&t); // granted; the duplicate delivery counts a pending wake-up
            assert_eq!(t.state(), TaskState::Running);
            assert_eq!(fs.fires(FaultSite::DuplicateWakeup), 1);
            let m = s.metrics().snapshot();
            assert_eq!(
                m.pending_wakeups, 1,
                "second delivery absorbed as counted wake-up"
            );
            // The counted wake-up elides the next pause instead of corrupting anything.
            s.pause(&t);
            assert_eq!(t.state(), TaskState::Running);
            assert_eq!(s.metrics().snapshot().pauses_elided, 1);
        }

        #[test]
        fn delayed_intake_drain_recovers_at_the_next_scheduling_point() {
            let plan = FaultPlan::new(3).arm(
                FaultSpec::new(FaultSite::DelayIntakeDrain)
                    .one_in(1)
                    .max_fires(1),
            );
            let (s, fs) = faulted(1, plan);
            let p = s.register_process("p");
            let t1 = s.create_task(p, None).unwrap();
            s.submit(&t1); // the drain this submit triggers is skipped: t1 stays in intake
            assert_eq!(fs.fires(FaultSite::DelayIntakeDrain), 1);
            assert_eq!(t1.state(), TaskState::Ready);
            assert_eq!(s.busy_cores(), 0);
            // The next scheduling point (another submit seeing the idle core) drains both.
            let t2 = s.create_task(p, None).unwrap();
            s.submit(&t2);
            assert_eq!(t1.state(), TaskState::Running, "delayed submit recovered");
            assert_eq!(t2.state(), TaskState::Ready);
            assert_eq!(s.ready_count(), 1);
        }

        #[test]
        fn rescue_drain_recovers_a_delayed_submit_with_no_other_scheduling_point() {
            // Arm an *unbounded* delay: every ordinary drain is skipped, so without the
            // rescue the submit below would be stranded forever (no other thread ever
            // reaches a scheduling point — the hang the watchdog's rescue arm exists for).
            let plan = FaultPlan::new(6).arm(FaultSpec::new(FaultSite::DelayIntakeDrain).one_in(1));
            let (s, fs) = faulted(1, plan);
            let p = s.register_process("p");
            let t = s.create_task(p, None).unwrap();
            s.submit(&t);
            assert_eq!(t.state(), TaskState::Ready, "drain skipped, task stranded");
            assert!(fs.fires(FaultSite::DelayIntakeDrain) >= 1);
            let recovered = s.rescue_drain();
            assert_eq!(recovered, 1);
            assert_eq!(
                t.state(),
                TaskState::Running,
                "rescue bypasses the delay fault"
            );
            // An empty intake makes the rescue a cheap no-op.
            assert_eq!(s.rescue_drain(), 0);
        }

        #[test]
        fn widened_shutdown_race_window_never_parks_a_waiter() {
            let plan = FaultPlan::new(4).arm(
                FaultSpec::new(FaultSite::ShutdownRace)
                    .one_in(1)
                    .max_fires(1)
                    .stall(Duration::from_millis(20)),
            );
            let (s, _fs) = faulted(1, plan);
            let p = s.register_process("p");
            let t1 = s.create_task(p, None).unwrap();
            s.submit(&t1); // keep the core busy so racing submits hit the intake
            let t2 = s.create_task(p, None).unwrap();
            let s2 = Arc::clone(&s);
            let t2c = TaskRef::clone(&t2);
            let h = std::thread::spawn(move || {
                // Land the submit inside the widened window with high probability.
                std::thread::sleep(Duration::from_millis(5));
                s2.submit(&t2c);
                t2c.wait_grant() // must terminate: granted or released, never parked
            });
            s.shutdown();
            let _ = h.join().unwrap();
            assert_eq!(s.ready_count(), 0);
        }

        #[test]
        fn injected_worker_stall_is_flagged_by_the_watchdog() {
            let plan = FaultPlan::new(5).arm(
                FaultSpec::new(FaultSite::WorkerStall)
                    .one_in(1)
                    .max_fires(1)
                    .stall(Duration::from_millis(80)),
            );
            let (s, fs) = faulted(1, plan);
            let p = s.register_process("p");
            let t = s.create_task(p, None).unwrap();
            s.submit(&t);
            let s2 = Arc::clone(&s);
            let tc = TaskRef::clone(&t);
            let h = std::thread::spawn(move || s2.pause(&tc)); // stalls, then blocks
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut flagged = Vec::new();
            while flagged.is_empty() && Instant::now() < deadline {
                flagged = s.watchdog_scan(Duration::from_millis(10));
                std::thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(flagged.len(), 1, "stalled core must be flagged");
            assert_eq!(flagged[0].task, t.id());
            assert_eq!(fs.fires(FaultSite::WorkerStall), 1);
            // Wake the paused task back up so the stalled thread terminates.
            while t.state() != TaskState::Blocked {
                std::thread::yield_now();
            }
            s.submit(&t);
            h.join().unwrap();
        }

        #[test]
        fn unarmed_plan_changes_nothing() {
            let (s, fs) = faulted(2, FaultPlan::new(0));
            let p = s.register_process("p");
            let t = s.create_task(p, None).unwrap();
            s.submit(&t);
            assert_eq!(t.state(), TaskState::Running);
            assert_eq!(fs.total_fires(), 0);
            assert_eq!(s.metrics().snapshot().faults_injected, 0);
        }
    }
}
