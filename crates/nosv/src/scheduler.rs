//! The centralized multi-process scheduler (the "shared memory segment" of nOS-V).
//!
//! One [`Scheduler`] instance owns the virtual core slots and the installed [`Policy`]. All
//! mutation happens under a single mutex (`SchedState`); per-task grant slots have their
//! own lock so a worker can wait for a core without holding the scheduler lock.
//!
//! **Lock ordering**: the scheduler lock may acquire a task's grant lock (to deliver a
//! grant), but a grant lock is never held while acquiring the scheduler lock. The public
//! entry points (`submit`, `pause`, …) inspect/update the grant slot first, drop it, and
//! only then take the scheduler lock.

use crate::config::NosvConfig;
use crate::error::{NosvError, Result};
use crate::metrics::SchedulerMetrics;
use crate::policy::{classify_placement, PlacementKind, Policy, TaskMeta};
use crate::process::{ProcessId, ProcessInfo};
use crate::task::{Task, TaskId, TaskRef, TaskState, WaitOutcome};
use crate::topology::{CoreId, Topology};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// State of one virtual core slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreSlot {
    /// Nothing granted on this core.
    Idle,
    /// The given task currently holds this core.
    Busy(TaskId),
}

/// Scheduler state protected by the central lock.
pub(crate) struct SchedState {
    cores: Vec<CoreSlot>,
    policy: Box<dyn Policy>,
    tasks: HashMap<TaskId, TaskRef>,
    processes: HashMap<ProcessId, ProcessInfo>,
    next_task_id: TaskId,
    next_process_id: ProcessId,
    shutdown: bool,
}

/// The centralized scheduler shared by every process domain of an instance.
pub struct Scheduler {
    topo: Topology,
    config: NosvConfig,
    state: Mutex<SchedState>,
    metrics: SchedulerMetrics,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cores", &self.topo.num_cores())
            .field("policy", &self.config.policy)
            .finish()
    }
}

impl Scheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: NosvConfig) -> Self {
        let policy = config.policy.build(&config);
        let cores = config.topology.num_cores();
        Scheduler {
            topo: config.topology.clone(),
            state: Mutex::new(SchedState {
                cores: vec![CoreSlot::Idle; cores],
                policy,
                tasks: HashMap::new(),
                processes: HashMap::new(),
                next_task_id: 1,
                next_process_id: 1,
                shutdown: false,
            }),
            metrics: SchedulerMetrics::default(),
            config,
        }
    }

    /// The topology this scheduler manages.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &NosvConfig {
        &self.config
    }

    /// Scheduler metrics.
    pub fn metrics(&self) -> &SchedulerMetrics {
        &self.metrics
    }

    /// Name of the installed policy.
    pub fn policy_name(&self) -> String {
        self.state.lock().policy.name().to_string()
    }

    /// Number of process-quantum rotations performed by the policy.
    pub fn policy_rotations(&self) -> u64 {
        self.state.lock().policy.rotations()
    }

    /// Number of tasks currently ready (queued, not running).
    pub fn ready_count(&self) -> usize {
        self.state.lock().policy.ready_count()
    }

    /// Number of cores currently running a task.
    pub fn busy_cores(&self) -> usize {
        self.state
            .lock()
            .cores
            .iter()
            .filter(|c| matches!(c, CoreSlot::Busy(_)))
            .count()
    }

    /// Number of live (registered, unfinished) tasks.
    pub fn live_tasks(&self) -> usize {
        self.state.lock().tasks.len()
    }

    // -------------------------------------------------------------------------------------
    // Processes
    // -------------------------------------------------------------------------------------

    /// Register a process domain and return its identifier.
    pub fn register_process(&self, name: impl Into<String>) -> ProcessId {
        let mut st = self.state.lock();
        let id = st.next_process_id;
        st.next_process_id += 1;
        st.processes.insert(id, ProcessInfo::new(id, name));
        st.policy.register_process(id);
        id
    }

    /// Deregister a process domain. Live tasks of the process keep running; only the
    /// bookkeeping and its place in the quantum rotation are removed.
    pub fn deregister_process(&self, process: ProcessId) {
        let mut st = self.state.lock();
        st.processes.remove(&process);
        st.policy.deregister_process(process);
    }

    /// Names and ids of the registered process domains.
    pub fn processes(&self) -> Vec<(ProcessId, String)> {
        let st = self.state.lock();
        let mut v: Vec<_> = st
            .processes
            .values()
            .map(|p| (p.id, p.name.clone()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    // -------------------------------------------------------------------------------------
    // Task lifecycle
    // -------------------------------------------------------------------------------------

    /// Create (but do not submit) a task belonging to `process`.
    pub fn create_task(&self, process: ProcessId, label: Option<String>) -> Result<TaskRef> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(NosvError::ShutDown);
        }
        if !st.processes.contains_key(&process) {
            return Err(NosvError::UnknownProcess(process));
        }
        let id = st.next_task_id;
        st.next_task_id += 1;
        let task = Task::new(id, process, label);
        st.tasks.insert(id, TaskRef::clone(&task));
        if let Some(p) = st.processes.get_mut(&process) {
            p.tasks_created += 1;
            p.tasks_live += 1;
        }
        Ok(task)
    }

    /// Attach: submit the task and block the calling OS thread until the scheduler grants it
    /// a core. This is the `nosv_attach` pattern (§4.3.1): the thread is recruited as a
    /// worker and can no longer run freely.
    pub fn attach(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.attaches);
        self.submit(task);
        let _ = task.wait_grant();
    }

    /// Make a task ready. If an appropriate idle core exists it is granted immediately;
    /// otherwise the task is queued in the policy. Safe to call from any thread.
    pub fn submit(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.submits);
        {
            let mut g = task.grant.lock();
            if g.released {
                return;
            }
            if g.granted.is_some() {
                // The task still holds a core (it has not reached its pause yet): count the
                // wake-up so the upcoming pause returns immediately (nOS-V event counter).
                g.pending_wakeups += 1;
                SchedulerMetrics::inc(&self.metrics.pending_wakeups);
                return;
            }
            if g.queued {
                // Already sitting in the ready queues; nothing to do.
                SchedulerMetrics::inc(&self.metrics.redundant_submits);
                return;
            }
            g.queued = true;
            g.state = TaskState::Ready;
        }
        let mut st = self.state.lock();
        self.place_ready_task(&mut st, task);
    }

    /// Block the calling task: release its core (handing it to the next ready task) and wait
    /// until a later [`Scheduler::submit`] reschedules it. This is `nosv_pause`.
    pub fn pause(&self, task: &TaskRef) {
        let released;
        {
            let mut g = task.grant.lock();
            if g.released {
                return;
            }
            if g.pending_wakeups > 0 {
                g.pending_wakeups -= 1;
                SchedulerMetrics::inc(&self.metrics.pauses_elided);
                return;
            }
            released = g.granted.take();
            g.state = TaskState::Blocked;
        }
        SchedulerMetrics::inc(&self.metrics.pauses);
        SchedulerMetrics::inc(&task.stats.blocks);
        if let Some(core) = released {
            let mut st = self.state.lock();
            self.release_core(&mut st, core);
        }
        let _ = task.wait_grant();
    }

    /// Timed block: like [`Scheduler::pause`], but if no submit arrives within `timeout` the
    /// task re-submits itself and waits to be rescheduled. This is `nosv_waitfor` and is the
    /// building block for sleeps and the poll/epoll integration (§4.3.4).
    pub fn waitfor(&self, task: &TaskRef, timeout: Duration) -> WaitOutcome {
        SchedulerMetrics::inc(&self.metrics.waitfors);
        let released;
        {
            let mut g = task.grant.lock();
            if g.released {
                return WaitOutcome::Woken;
            }
            if g.pending_wakeups > 0 {
                g.pending_wakeups -= 1;
                SchedulerMetrics::inc(&self.metrics.pauses_elided);
                return WaitOutcome::Woken;
            }
            released = g.granted.take();
            g.state = TaskState::Blocked;
        }
        SchedulerMetrics::inc(&task.stats.blocks);
        if let Some(core) = released {
            let mut st = self.state.lock();
            self.release_core(&mut st, core);
        }
        let deadline = Instant::now() + timeout;
        match task.wait_grant_until(deadline) {
            Some(_) => WaitOutcome::Woken,
            None => {
                // Timed out without being woken: resubmit ourselves and wait for a core.
                SchedulerMetrics::inc(&self.metrics.waitfor_timeouts);
                self.submit(task);
                let _ = task.wait_grant();
                WaitOutcome::TimedOut
            }
        }
    }

    /// Voluntarily give the core to another ready task, requeueing the caller at the tail of
    /// its queue. Returns `true` if a switch happened, `false` if the core was kept because
    /// nothing else was ready. This is the `sched_yield` → `nosv_yield` path of §5.3.
    pub fn yield_now(&self, task: &TaskRef) -> bool {
        let core = {
            let g = task.grant.lock();
            if g.released {
                return false;
            }
            match g.granted {
                Some(c) => c,
                None => return false,
            }
        };
        let mut st = self.state.lock();
        if !st.policy.has_ready() {
            SchedulerMetrics::inc(&self.metrics.yields_noop);
            return false;
        }
        // Pick the successor *before* requeueing ourselves: with per-core FIFO affinity the
        // yielding task would otherwise be at the head of its own core's queue and the yield
        // would hand the core straight back to it, starving everyone else.
        let now = Instant::now();
        let next = loop {
            match st.policy.pick(&self.topo, core, now) {
                Some(meta) => {
                    if let Some(t) = st.tasks.get(&meta.id).cloned() {
                        break Some(t);
                    }
                    // Stale entry (task detached while queued): keep looking.
                }
                None => break None,
            }
        };
        let next_task = match next {
            Some(t) => t,
            None => {
                // Every queued entry was stale; nothing to switch to.
                SchedulerMetrics::inc(&self.metrics.yields_noop);
                return false;
            }
        };
        // Requeue ourselves at the tail and hand the core to the successor.
        {
            let mut g = task.grant.lock();
            // A submit may have raced in and counted a pending wake-up; that is fine — keep it.
            g.granted = None;
            g.queued = true;
            g.state = TaskState::Ready;
        }
        // A voluntary yield surrenders the affinity claim: requeueing with the last-ran
        // core as preference would put the yielder in that core's queue, where
        // affinity-first picking hands the core straight back to it (or a fellow
        // yielder) ahead of older ready tasks — a yield storm between busy-wait barrier
        // spinners would then starve every task that has never been granted a core.
        let meta = TaskMeta {
            id: task.id(),
            process: task.process(),
            preferred_core: None,
        };
        st.policy.enqueue(&self.topo, meta, now);
        st.cores[core] = CoreSlot::Busy(next_task.id());
        self.grant(&next_task, core);
        drop(st);
        SchedulerMetrics::inc(&self.metrics.yields);
        SchedulerMetrics::inc(&task.stats.yields);
        let _ = task.wait_grant();
        true
    }

    /// Detach: the task finishes, its core is handed to the next ready task and it is removed
    /// from the scheduler. This is `nosv_detach`.
    pub fn detach(&self, task: &TaskRef) {
        SchedulerMetrics::inc(&self.metrics.detaches);
        let released;
        {
            let mut g = task.grant.lock();
            released = g.granted.take();
            g.state = TaskState::Finished;
            g.released = true;
        }
        let mut st = self.state.lock();
        if let Some(core) = released {
            self.release_core(&mut st, core);
        }
        let process = task.process();
        st.tasks.remove(&task.id());
        if let Some(p) = st.processes.get_mut(&process) {
            p.tasks_live = p.tasks_live.saturating_sub(1);
        }
    }

    /// Shut the scheduler down: every task waiting for a core is released from scheduler
    /// control and resumes as a plain OS thread. This is a safety valve used by the USF
    /// layer at instance teardown so that buggy applications can never leave threads parked
    /// forever.
    pub fn shutdown(&self) {
        let tasks: Vec<TaskRef> = {
            let mut st = self.state.lock();
            st.shutdown = true;
            st.tasks.values().cloned().collect()
        };
        for t in tasks {
            let mut g = t.grant.lock();
            g.released = true;
            t.grant_cv.notify_all();
        }
    }

    /// Whether the scheduler has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().shutdown
    }

    // -------------------------------------------------------------------------------------
    // Internals (scheduler lock held)
    // -------------------------------------------------------------------------------------

    /// Grant `core` to `task`. Caller holds the scheduler lock and has already marked the
    /// core busy.
    fn grant(&self, task: &TaskRef, core: CoreId) {
        let placement = classify_placement(&self.topo, task.preferred_core(), core);
        SchedulerMetrics::inc(&self.metrics.grants);
        SchedulerMetrics::inc(&task.stats.grants);
        match placement {
            PlacementKind::Affinity => SchedulerMetrics::inc(&self.metrics.affinity_hits),
            PlacementKind::Numa => SchedulerMetrics::inc(&self.metrics.numa_hits),
            PlacementKind::Remote => SchedulerMetrics::inc(&self.metrics.remote_grants),
        }
        task.record_core(core);
        let mut g = task.grant.lock();
        g.granted = Some(core);
        g.queued = false;
        g.state = TaskState::Running;
        task.grant_cv.notify_one();
    }

    /// Place a freshly submitted task: grant it an idle core if one is available (honouring
    /// affinity), otherwise leave it queued in the policy.
    fn place_ready_task(&self, st: &mut SchedState, task: &TaskRef) {
        let now = Instant::now();
        match self.choose_idle_core(st, task.preferred_core()) {
            Some(core) => {
                // The task was marked queued by the caller; the grant clears it.
                st.cores[core] = CoreSlot::Busy(task.id());
                self.grant(task, core);
            }
            None => {
                let meta = TaskMeta {
                    id: task.id(),
                    process: task.process(),
                    preferred_core: task.preferred_core(),
                };
                st.policy.enqueue(&self.topo, meta, now);
            }
        }
    }

    /// Pick an idle core for a task with the given preference: preferred core if idle, else
    /// an idle core in the same NUMA node, else any idle core.
    fn choose_idle_core(&self, st: &SchedState, preferred: Option<CoreId>) -> Option<CoreId> {
        let is_idle = |c: CoreId| matches!(st.cores[c], CoreSlot::Idle);
        if let Some(p) = preferred {
            if is_idle(p) {
                return Some(p);
            }
            let node = self.topo.node_of(p);
            if let Some(c) = self.topo.cores_in_node(node).find(|&c| is_idle(c)) {
                return Some(c);
            }
        }
        self.topo.cores().find(|&c| is_idle(c))
    }

    /// A core became free: hand it to the next ready task according to the policy, or mark
    /// it idle.
    fn release_core(&self, st: &mut SchedState, core: CoreId) {
        st.cores[core] = CoreSlot::Idle;
        self.dispatch_core(st, core, Instant::now());
    }

    /// Try to dispatch a ready task onto an idle core. Stale queue entries (tasks detached
    /// while still queued) are skipped.
    fn dispatch_core(&self, st: &mut SchedState, core: CoreId, now: Instant) {
        debug_assert!(matches!(st.cores[core], CoreSlot::Idle));
        while let Some(meta) = st.policy.pick(&self.topo, core, now) {
            if let Some(task) = st.tasks.get(&meta.id).cloned() {
                st.cores[core] = CoreSlot::Busy(meta.id);
                self.grant(&task, core);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn sched(cores: usize) -> Arc<Scheduler> {
        Arc::new(Scheduler::new(NosvConfig::with_cores(cores)))
    }

    #[test]
    fn register_and_list_processes() {
        let s = sched(2);
        let a = s.register_process("a");
        let b = s.register_process("b");
        assert_ne!(a, b);
        let procs = s.processes();
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].1, "a");
        s.deregister_process(a);
        assert_eq!(s.processes().len(), 1);
    }

    #[test]
    fn create_task_requires_known_process() {
        let s = sched(1);
        assert!(matches!(
            s.create_task(99, None),
            Err(NosvError::UnknownProcess(99))
        ));
        let p = s.register_process("p");
        assert!(s.create_task(p, None).is_ok());
    }

    #[test]
    fn submit_grants_idle_core_immediately() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert_eq!(t.state(), TaskState::Running);
        assert!(t.current_core().is_some());
        assert_eq!(s.busy_cores(), 1);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn submit_queues_when_cores_are_busy() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        assert_eq!(t1.state(), TaskState::Running);
        assert_eq!(t2.state(), TaskState::Ready);
        assert_eq!(s.ready_count(), 1);
        // Detaching t1 hands the core to t2.
        s.detach(&t1);
        assert_eq!(t2.state(), TaskState::Running);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn never_more_running_tasks_than_cores() {
        let s = sched(2);
        let p = s.register_process("p");
        let tasks: Vec<_> = (0..8).map(|_| s.create_task(p, None).unwrap()).collect();
        for t in &tasks {
            s.submit(t);
        }
        let running = tasks
            .iter()
            .filter(|t| t.state() == TaskState::Running)
            .count();
        assert_eq!(running, 2);
        assert_eq!(s.ready_count(), 6);
        assert_eq!(s.busy_cores(), 2);
    }

    #[test]
    fn pending_wakeup_elides_pause() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t); // granted core 0
        s.submit(&t); // arrives "early" -> counted
                      // The pause must not block (it consumes the counted wake-up).
        s.pause(&t);
        assert_eq!(t.state(), TaskState::Running);
        let m = s.metrics().snapshot();
        assert_eq!(m.pending_wakeups, 1);
        assert_eq!(m.pauses_elided, 1);
    }

    #[test]
    fn pause_releases_core_to_next_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        let blocked = Arc::new(AtomicUsize::new(0));
        let blocked2 = Arc::clone(&blocked);
        let h = std::thread::spawn(move || {
            blocked2.store(1, Ordering::SeqCst);
            s2.pause(&t1c); // blocks until someone resubmits t1
            blocked2.store(2, Ordering::SeqCst);
        });
        // Wait until t2 got the core (t1 paused).
        while t2.state() != TaskState::Running {
            std::thread::yield_now();
        }
        assert_eq!(t1.state(), TaskState::Blocked);
        assert_eq!(blocked.load(Ordering::SeqCst), 1);
        // Resume t1: t2 still holds the core, so t1 queues; release t2's core via detach.
        s.submit(&t1);
        assert_eq!(t1.state(), TaskState::Ready);
        s.detach(&t2);
        h.join().unwrap();
        assert_eq!(blocked.load(Ordering::SeqCst), 2);
        assert_eq!(t1.state(), TaskState::Running);
        s.detach(&t1);
    }

    #[test]
    fn waitfor_times_out_and_reschedules() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let outcome = s.waitfor(&t, Duration::from_millis(5));
        assert_eq!(outcome, WaitOutcome::TimedOut);
        assert_eq!(t.state(), TaskState::Running);
        let m = s.metrics().snapshot();
        assert_eq!(m.waitfors, 1);
        assert_eq!(m.waitfor_timeouts, 1);
    }

    #[test]
    fn waitfor_woken_early_by_submit() {
        let s = sched(2);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let s2 = Arc::clone(&s);
        let t2 = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.waitfor(&t2, Duration::from_secs(10)));
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        let outcome = h.join().unwrap();
        assert_eq!(outcome, WaitOutcome::Woken);
    }

    #[test]
    fn yield_without_ready_tasks_keeps_core() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert!(!s.yield_now(&t));
        assert_eq!(t.state(), TaskState::Running);
        assert_eq!(s.metrics().snapshot().yields_noop, 1);
    }

    #[test]
    fn yield_switches_to_queued_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2); // queued behind t1
        let s2 = Arc::clone(&s);
        let t1c = TaskRef::clone(&t1);
        let h = std::thread::spawn(move || s2.yield_now(&t1c));
        // t2 must get the core; t1 requeued.
        while t2.state() != TaskState::Running {
            std::thread::yield_now();
        }
        // Give the core back so t1 can resume and the yielding thread can finish.
        s.detach(&t2);
        assert!(h.join().unwrap());
        assert_eq!(t1.state(), TaskState::Running);
    }

    #[test]
    fn detach_frees_core_and_forgets_task() {
        let s = sched(1);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        assert_eq!(s.live_tasks(), 1);
        s.detach(&t);
        assert_eq!(s.live_tasks(), 0);
        assert_eq!(s.busy_cores(), 0);
    }

    #[test]
    fn shutdown_releases_waiting_tasks() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        let t2c = TaskRef::clone(&t2);
        // t2 waits for a core (attach blocks); shutdown must release it.
        let h = std::thread::spawn(move || {
            t2c.wait_grant() // returns None on release
        });
        std::thread::sleep(Duration::from_millis(10));
        s.shutdown();
        assert_eq!(h.join().unwrap(), None);
        assert!(s.is_shutdown());
        // Operations after shutdown are inert.
        assert!(matches!(s.create_task(p, None), Err(NosvError::ShutDown)));
        s.pause(&t1);
        assert!(!s.yield_now(&t1));
    }

    #[test]
    fn affinity_preferred_on_resubmit() {
        let s = sched(4);
        let p = s.register_process("p");
        let t = s.create_task(p, None).unwrap();
        s.submit(&t);
        let first = t.current_core().unwrap();
        // Pause (from this thread it would block, so emulate: pretend a wakeup is pending
        // after releasing) — instead just detach-and-recreate pattern: pause on another thread.
        let s2 = Arc::clone(&s);
        let tc = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.pause(&tc));
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        h.join().unwrap();
        assert_eq!(
            t.current_core().unwrap(),
            first,
            "resubmit should honour the preferred core"
        );
        let m = s.metrics().snapshot();
        assert!(m.affinity_hits >= 1);
    }

    #[test]
    fn detached_queued_task_is_skipped() {
        let s = sched(1);
        let p = s.register_process("p");
        let t1 = s.create_task(p, None).unwrap();
        let t2 = s.create_task(p, None).unwrap();
        let t3 = s.create_task(p, None).unwrap();
        s.submit(&t1);
        s.submit(&t2);
        s.submit(&t3);
        // t2 is queued; detach it while queued. Freeing t1's core must skip t2's stale queue
        // entry and dispatch t3 directly.
        s.detach(&t2);
        s.detach(&t1);
        assert_eq!(t3.state(), TaskState::Running);
    }
}
