//! Shared JSON rendering of [`usf_scenarios::ScenarioReport`]s.
//!
//! `fig6_oversub` and `fig7_models` both persist scenario reports into their
//! `BENCH_*.json` perf-trajectory records; this module is the single place that decides
//! what a report looks like on disk (per-process makespans, measured unit-latency
//! percentiles, slowdowns, fairness, scheduler-counter deltas).

use crate::json::{JsonObject, JsonValue};
use usf_nosv::{HistogramSnapshot, ShardSnapshot, StageSnapshot, StatsSample};
use usf_scenarios::ScenarioReport;

/// Render one stage histogram as the standard percentile bundle (the same fields
/// [`HistogramSnapshot::to_json`] emits, but as a [`JsonObject`] so it nests into the
/// ordered BENCH documents).
pub fn histogram_json(h: &HistogramSnapshot) -> JsonObject {
    JsonObject::new()
        .field("count", h.count)
        .field("mean_ns", h.mean_ns())
        .field("min_ns", if h.is_empty() { 0 } else { h.min_ns })
        .field("max_ns", h.max_ns)
        .field("p50_ns", h.percentile(0.50))
        .field("p90_ns", h.percentile(0.90))
        .field("p99_ns", h.percentile(0.99))
        .field("p999_ns", h.percentile(0.999))
}

/// Render the per-stage latency breakdown (submit→drain, enqueue→grant,
/// grant→first-run, pause/yield off-core) as one object keyed by stage name.
pub fn stages_json(stages: &StageSnapshot) -> JsonObject {
    let mut doc = JsonObject::new();
    for (name, h) in stages.named() {
        doc = doc.field(name, histogram_json(h));
    }
    doc
}

/// Render the per-scheduler-shard breakdown — dispatch-lock acquisitions, ready entries
/// lost to cross-shard steals, cross-shard aging-valve crossings, and the shard's own
/// grant→first-run dispatch histogram — as an ordered array, one object per NUMA node
/// (a single object on flat schedulers).
pub fn shards_json(shards: &[ShardSnapshot]) -> Vec<JsonValue> {
    shards
        .iter()
        .map(|s| {
            JsonValue::from(
                JsonObject::new()
                    .field("lock_acquisitions", s.lock_acquisitions)
                    .field("steals", s.steals)
                    .field("valve_crossings", s.valve_crossings)
                    .field("dispatch", histogram_json(&s.dispatch)),
            )
        })
        .collect()
}

/// Summarize a stats-sampler series: sample count plus the peak of each gauge (the full
/// series belongs in a `--samples` JSONL dump, not a BENCH record).
pub fn samples_json(samples: &[StatsSample]) -> JsonObject {
    JsonObject::new()
        .field("count", samples.len())
        .field(
            "peak_ready_tasks",
            samples.iter().map(|s| s.ready_tasks).max().unwrap_or(0),
        )
        .field(
            "peak_intake_depth",
            samples.iter().map(|s| s.intake_depth).max().unwrap_or(0),
        )
        .field(
            "peak_busy_cores",
            samples.iter().map(|s| s.busy_cores).max().unwrap_or(0),
        )
}

/// Render one scenario report as an ordered JSON object.
pub fn report_json(r: &ScenarioReport) -> JsonObject {
    let procs: Vec<JsonValue> = r
        .processes
        .iter()
        .map(|p| {
            let s = p.unit_summary();
            JsonValue::from(
                JsonObject::new()
                    .field("name", p.name.as_str())
                    .field("threads", p.threads)
                    .num("arrival_s", p.arrival.as_secs_f64(), 6)
                    .num("makespan_s", p.makespan.as_secs_f64(), 6)
                    .num("p50_unit_s", s.p50, 6)
                    .num("p90_unit_s", s.p90, 6)
                    .num("p99_unit_s", s.p99, 6)
                    .opt(
                        "slowdown_vs_solo",
                        p.slowdown_vs_solo.map(|v| JsonValue::num(v, 3)),
                    )
                    .opt("migrations", p.migrations.map(JsonValue::from))
                    .opt(
                        "cross_socket_migrations",
                        p.cross_socket_migrations.map(JsonValue::from),
                    )
                    .field("survived", p.survived)
                    .field("injected_faults", p.injected_faults)
                    .field(
                        "panicked_units",
                        p.panicked_units
                            .iter()
                            .map(|&u| JsonValue::from(u))
                            .collect::<Vec<_>>(),
                    ),
            )
        })
        .collect();
    let mut doc = JsonObject::new()
        .field("executor", r.executor.as_str())
        .opt("model", r.model.map(|m| m.label()))
        .num("total_makespan_s", r.total_makespan.as_secs_f64(), 6)
        .num("jain_fairness", r.jain_fairness(), 4)
        .opt(
            "mean_slowdown",
            r.mean_slowdown().map(|v| JsonValue::num(v, 3)),
        )
        .field("processes", procs);
    if let Some(sched) = &r.sched {
        let mut counters = JsonObject::new();
        for (name, v) in &sched.counters {
            counters = counters.num(name.clone(), *v, 3);
        }
        doc = doc.field(
            "sched",
            JsonObject::new()
                .field("scheduler", sched.scheduler.as_str())
                .field("counters", counters),
        );
    }
    if let Some(stages) = &r.stages {
        doc = doc.field("stages", stages_json(stages));
    }
    if !r.samples.is_empty() {
        doc = doc.field("samples", samples_json(&r.samples));
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use usf_scenarios::{ModelSel, ProcessOutcome, SchedDelta};

    #[test]
    fn report_json_carries_model_and_percentiles() {
        let r = ScenarioReport {
            scenario: "t".into(),
            executor: "sim-bl-eq".into(),
            total_makespan: Duration::from_millis(10),
            processes: vec![ProcessOutcome {
                name: "p".into(),
                arrival: Duration::ZERO,
                threads: 2,
                makespan: Duration::from_millis(10),
                unit_latencies_s: vec![0.004, 0.006],
                slowdown_vs_solo: Some(1.5),
                migrations: Some(3),
                cross_socket_migrations: Some(1),
                injected_faults: 2,
                panicked_units: vec![1],
                survived: true,
            }],
            sched: Some(SchedDelta {
                scheduler: "partitioned".into(),
                counters: vec![("migrations".into(), 3.0)],
            }),
            stages: Some(StageSnapshot::default()),
            samples: vec![StatsSample {
                at: Duration::from_micros(10),
                ready_tasks: 5,
                intake_depth: 1,
                busy_cores: 2,
                submits: 9,
                grants: 8,
            }],
            model: Some(ModelSel::BlEq),
        };
        let s = report_json(&r).render();
        assert!(s.contains("\"stages\""), "{s}");
        assert!(s.contains("\"wake\""), "{s}");
        assert!(s.contains("\"peak_ready_tasks\": 5"), "{s}");
        assert!(s.contains("\"model\": \"bl-eq\""), "{s}");
        assert!(s.contains("\"p99_unit_s\": 0.006000"), "{s}");
        assert!(s.contains("\"mean_slowdown\": 1.500"), "{s}");
        assert!(s.contains("\"migrations\": 3.000"), "{s}");
        assert!(s.contains("\"survived\": true"), "{s}");
        assert!(s.contains("\"injected_faults\": 2"), "{s}");
    }
}
