//! `usf-trace`: convert a recorded schedule (sched-trace JSONL) into Chrome
//! trace-event / Perfetto JSON.
//!
//! The input is the JSONL dump produced by `sched_chaos --trace-jsonl` (or any consumer
//! of [`usf_nosv::sched_trace::to_jsonl`]); the output opens directly in
//! `ui.perfetto.dev` or `chrome://tracing`. See `EXPERIMENTS.md` § "Perfetto timeline
//! capture" for a walkthrough.
//!
//! `--validate` additionally checks the converter's structural invariants (one span per
//! grant, per-core spans non-overlapping) and exits non-zero on violation — CI runs the
//! chaos scenario through this to keep the trace plane honest.

use usf_bench::cli::{self, FlagSpec};
use usf_bench::perfetto;
use usf_nosv::{sched_trace, StatsSample};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--input",
        value_name: Some("PATH"),
        help: "schedule trace JSONL to convert (required)",
    },
    FlagSpec {
        name: "--output",
        value_name: Some("PATH"),
        help: "write Perfetto JSON here (omit to only validate)",
    },
    FlagSpec {
        name: "--samples",
        value_name: Some("PATH"),
        help: "optional stats-sampler JSONL; becomes counter tracks",
    },
    FlagSpec {
        name: "--validate",
        value_name: None,
        help: "check span/grant invariants; exit 1 on violation",
    },
];

fn main() {
    let args = cli::parse_or_exit(
        "usf_trace",
        "Converts a recorded schedule (sched-trace JSONL) to Perfetto JSON.",
        FLAGS,
    );
    let input = args.get("--input").unwrap_or_else(|| {
        eprintln!("usf_trace: --input <PATH> is required");
        std::process::exit(2);
    });
    let text = std::fs::read_to_string(input).unwrap_or_else(|e| {
        eprintln!("usf_trace: reading {input}: {e}");
        std::process::exit(2);
    });
    let (meta, entries) = sched_trace::from_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("usf_trace: {input}: {e}");
        std::process::exit(1);
    });

    let mut samples = Vec::new();
    if let Some(path) = args.get("--samples") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("usf_trace: reading {path}: {e}");
            std::process::exit(2);
        });
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match StatsSample::from_jsonl_line(line) {
                Ok(s) => samples.push(s),
                Err(e) => {
                    eprintln!("usf_trace: {path} line {}: {e}", lineno + 1);
                    std::process::exit(1);
                }
            }
        }
    }

    let timeline = perfetto::build_timeline(meta, &entries, &samples);
    println!(
        "parsed {} events -> {} spans on {} cores, {} instants, {} counter points",
        entries.len(),
        timeline.spans.len(),
        timeline.meta.cores(),
        timeline.markers.len(),
        timeline.counters.len()
    );

    if args.has("--validate") {
        match timeline.validate() {
            Ok(()) => println!(
                "validate: ok (spans == grants == {}, per-core spans non-overlapping)",
                timeline.grants
            ),
            Err(e) => {
                eprintln!("usf_trace: validation failed: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some(output) = args.get("--output") {
        let rendered = timeline.render_chrome_json();
        std::fs::write(output, &rendered).unwrap_or_else(|e| {
            eprintln!("usf_trace: writing {output}: {e}");
            std::process::exit(2);
        });
        println!("wrote {output}");
    }
}
