//! Figure 7 (repo experiment): the scheduler-model matrix over the canned scenario
//! library.
//!
//! The paper never compares SCHED_COOP against the preemptive baseline alone — every
//! figure also pits it against *static partitioning* (the bl-eq / bl-opt core splits of
//! §5.5). This binary drives every canned [`usf_scenarios::library`] entry through the
//! full [`ModelSel`] matrix on the simulator:
//!
//! * `linux-fair` — preemptive weighted-fair scheduling (the OS baseline);
//! * `sched_coop` — the paper's cooperative policy;
//! * `bl-eq` — cores split equally among the spec's processes;
//! * `bl-opt` — cores split proportionally to each process's total nominal work.
//!
//! Per-process slowdowns are measured against the *solo-on-the-full-node* baseline
//! (`linux-fair`, one process alone), the paper's definition. The expected shape: at ≥2×
//! oversubscription SCHED_COOP's mean slowdown stays at or below bl-eq's, because a
//! static partition cannot donate its idle cores — a process's imbalance gaps and
//! arrival ramps strand capacity that the cooperative scheduler hands to whoever is
//! ready. `--smoke` asserts exactly that and is wired into CI; every mode writes
//! `BENCH_models.json` with the full per-model, per-process reports (measured unit-latency
//! percentiles included).
//!
//! Usage: `cargo run -p usf-bench --release --bin fig7_models [--quick|--full|--smoke]`

use std::time::Duration;
use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::{JsonObject, JsonValue};
use usf_bench::scenario_json::report_json;
use usf_bench::Scale;
use usf_scenarios::{
    library, Executor, ModelSel, ProblemSize, ScenarioReport, ScenarioSpec, SimExecutor,
};
use usf_simsched::{Machine, SchedModel};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--quick",
        value_name: None,
        help: "reduced sweep: 16 simulated cores (default)",
    },
    FlagSpec {
        name: "--full",
        value_name: None,
        help: "paper-scale sweep: 112 simulated cores, full library",
    },
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "tiny run asserting Coop mean slowdown <= bl-eq at >=2x oversubscription (CI mode)",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_models.json)",
    },
];

/// One library entry swept over the model matrix, with solo baselines applied.
struct ScenarioPoint {
    name: String,
    oversub: f64,
    /// Reports in [`ModelSel::ALL`] order.
    reports: Vec<ScenarioReport>,
}

impl ScenarioPoint {
    fn report(&self, sel: ModelSel) -> &ScenarioReport {
        self.reports
            .iter()
            .find(|r| r.model == Some(sel))
            .unwrap_or_else(|| panic!("{}: no report for {}", self.name, sel.label()))
    }

    /// `None` when the solo baseline degenerated (zero-makespan solo) — callers must
    /// treat that as "no verdict", never as a passing 0.0.
    fn mean_slowdown(&self, sel: ModelSel) -> Option<f64> {
        self.report(sel).mean_slowdown()
    }
}

/// The simulated solo baseline is a pure function of the process's workload shape (the
/// sim lowers kind + unit work + threads + units; names and arrival phases are
/// normalized away by `solo_of`), so identical co-runners — the ramp's N clones, the
/// library's repeated shapes — share one simulation.
type SoloCache =
    std::collections::HashMap<(&'static str, u128, &'static str, usize, usize), Option<Duration>>;

/// Sweep one spec: solo baselines under fair scheduling on the whole node (the paper's
/// slowdown denominator, memoized by workload shape), then the full model matrix.
fn sweep_spec(machine: &Machine, spec: &ScenarioSpec, cache: &mut SoloCache) -> ScenarioPoint {
    let solo_exec = SimExecutor::new(machine.clone(), SchedModel::Fair);
    let solos: Vec<Option<Duration>> = spec
        .procs
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let key = (
                p.kind.label(),
                p.size.unit_work().as_nanos(),
                p.flavor.label(),
                p.threads,
                p.units,
            );
            *cache.entry(key).or_insert_with(|| {
                let solo = solo_exec.run_spec(&spec.solo_of(i));
                solo.processes.first().map(|o| o.makespan)
            })
        })
        .collect();
    let mut reports = SimExecutor::sweep_models(machine, spec);
    for r in &mut reports {
        r.apply_solo_baseline(&solos);
    }
    ScenarioPoint {
        name: spec.name.clone(),
        oversub: spec.oversubscription(),
        reports,
    }
}

fn print_point(point: &ScenarioPoint) {
    println!();
    println!(
        "scenario {:<20} ({:.2}x oversubscribed)",
        point.name, point.oversub
    );
    println!(
        "  {:<12} {:>14} {:>14} {:>8} {:>12}",
        "model", "mean-slowdown", "worst-slowdown", "jain", "p99-unit"
    );
    for r in &point.reports {
        let p99 = r
            .processes
            .iter()
            .map(|p| p.unit_summary().p99)
            .fold(0.0, f64::max);
        println!(
            "  {:<12} {:>14} {:>14} {:>8.3} {:>11.4}s",
            r.model.map(|m| m.label()).unwrap_or("?"),
            usf_bench::fmt_speedup(r.mean_slowdown().unwrap_or(0.0)),
            usf_bench::fmt_speedup(r.worst_slowdown().unwrap_or(0.0)),
            r.jain_fairness(),
            p99,
        );
    }
}

fn main() {
    let args = cli::parse_or_exit(
        "fig7_models",
        "Figure 7: the Fair/Coop/bl-eq/bl-opt scheduler matrix over the canned scenario library.",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let full = args.scale() == Scale::Full && !smoke;
    let json_path = args
        .get("--json")
        .unwrap_or("BENCH_models.json")
        .to_string();

    // Sweep geometry mirrors fig6: paper-scale node in --full, the same 2-socket shape at
    // 16 cores otherwise; per-thread unit work stays well above the 4 ms preemption
    // quantum so the preemptive models actually preempt mid-unit.
    let (machine, cores, per_thread_ms): (Machine, usize, u64) = if full {
        (Machine::marenostrum5(), 112, 10)
    } else {
        (Machine::small_numa(16, 2), 16, 10)
    };
    let size = ProblemSize::Custom {
        unit_work_us: per_thread_ms * 1_000 * cores as u64,
    };

    usf_bench::header("fig7_models — scheduler-model matrix over the scenario library");
    usf_bench::machine_line(&machine);
    let specs = library::all(cores, size);
    println!(
        "library x models: {} canned scenarios x {:?}, {per_thread_ms} ms/unit/thread, \
         solo baselines under linux-fair on the whole node",
        specs.len(),
        ModelSel::ALL.map(|m| m.label()),
    );

    let mut solo_cache = SoloCache::new();
    let points: Vec<ScenarioPoint> = specs
        .into_iter()
        .map(|spec| {
            let point = sweep_spec(
                &machine,
                &spec.models(ModelSel::ALL.to_vec()),
                &mut solo_cache,
            );
            print_point(&point);
            point
        })
        .collect();

    // The paper's partitioning claim, checked on the deterministic stack: wherever the
    // node is >= 2x oversubscribed, SCHED_COOP's mean slowdown must not exceed bl-eq's
    // (idle partition cores cannot be donated; shared cooperative cores can). A missing
    // baseline is a violation too — a degenerate solo must never pass the gate vacuously.
    let mut coop_le_bleq = true;
    for p in points.iter().filter(|p| p.oversub >= 2.0) {
        match (
            p.mean_slowdown(ModelSel::Coop),
            p.mean_slowdown(ModelSel::BlEq),
        ) {
            (Some(coop), Some(bleq)) if coop <= bleq * 1.001 => {}
            (coop, bleq) => {
                coop_le_bleq = false;
                eprintln!(
                    "shape violation in '{}' ({:.2}x): coop {coop:?} vs bl-eq {bleq:?}",
                    p.name, p.oversub
                );
            }
        }
    }
    println!();
    println!(
        "Coop mean slowdown <= bl-eq at every >=2x scenario: {}",
        if coop_le_bleq { "yes" } else { "NO" }
    );

    let scenarios_json: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            let mut models = JsonObject::new();
            for r in &p.reports {
                let label = r.model.map(|m| m.label()).unwrap_or("?");
                models = models.field(label, report_json(r));
            }
            let slowdown = |sel: ModelSel| p.mean_slowdown(sel).map(|v| JsonValue::num(v, 3));
            JsonValue::from(
                JsonObject::new()
                    .field("scenario", p.name.as_str())
                    .num("oversubscription", p.oversub, 2)
                    .opt("coop_mean_slowdown", slowdown(ModelSel::Coop))
                    .opt("bl_eq_mean_slowdown", slowdown(ModelSel::BlEq))
                    .opt("bl_opt_mean_slowdown", slowdown(ModelSel::BlOpt))
                    .opt("fair_mean_slowdown", slowdown(ModelSel::Fair))
                    .field("models", models),
            )
        })
        .collect();
    JsonObject::new()
        .field("benchmark", "fig7_models")
        .field(
            "mode",
            if full {
                "full"
            } else if smoke {
                "smoke"
            } else {
                "quick"
            },
        )
        .field("sim_cores", machine.cores())
        .field("spec_cores", cores)
        .field("per_thread_unit_ms", per_thread_ms)
        .field(
            "models",
            ModelSel::ALL
                .iter()
                .map(|m| JsonValue::from(m.label()))
                .collect::<Vec<_>>(),
        )
        .field("coop_le_bleq_at_oversub", coop_le_bleq)
        .field("scenarios", scenarios_json)
        .write_file(&json_path);

    if smoke {
        // Every scenario must have produced a full matrix with applied baselines.
        for p in &points {
            assert_eq!(p.reports.len(), ModelSel::ALL.len(), "{}", p.name);
            for sel in ModelSel::ALL {
                assert!(
                    p.report(sel).mean_slowdown().is_some(),
                    "{}: {} lost its solo baseline",
                    p.name,
                    sel.label()
                );
            }
        }
        assert!(
            points.iter().filter(|p| p.oversub >= 2.0).count() >= 4,
            "the library must cover the >=2x regime"
        );
        assert!(
            coop_le_bleq,
            "regression: SCHED_COOP mean slowdown exceeded bl-eq under >=2x oversubscription"
        );
        println!("smoke: OK (full model matrix over the library; Coop <= bl-eq at >=2x)");
    }
}
