//! Regenerates **Figure 5** (§5.6): the LAMMPS + DeePMD-kit two-ensemble study —
//! per-scenario performance (Katom-step/s) and node memory-bandwidth usage.
//!
//! Usage: `cargo run -p usf-bench --release --bin fig5_lammps [--full]`

use usf_bench::{cli, header, machine_line, Scale};
use usf_simsched::{Machine, SimTime};
use usf_workloads::md::{run_md_scenario, MdConfig, MdScenario};

fn main() {
    let scale = cli::parse_or_exit(
        "fig5_lammps",
        "Regenerates Figure 5 (§5.6): LAMMPS + DeePMD MD ensembles co-execution.",
        cli::SCALE_FLAGS,
    )
    .scale();
    let machine = Machine::marenostrum5();

    header("Figure 5 — LAMMPS + DeePMD ensembles (simulated)");
    machine_line(&machine);

    let configure = |scenario: MdScenario| -> MdConfig {
        let mut cfg = MdConfig::new(scenario);
        cfg.machine = machine.clone();
        match scale {
            Scale::Quick => {
                cfg.steps = 20;
                cfg.atoms = 20_000;
                cfg.init_time = SimTime::from_secs(1);
            }
            Scale::Full => {
                cfg.steps = 100;
                cfg.atoms = 100_000;
            }
        }
        cfg
    };

    println!();
    println!(
        "{:>22} | {:>18} | {:>16} | {:>14} | {:>12}",
        "scenario", "Katom-step/s", "avg BW (GB/s)", "peak BW (GB/s)", "time (s)"
    );
    let mut results = Vec::new();
    for scenario in MdScenario::ALL {
        let r = run_md_scenario(&configure(scenario));
        println!(
            "{:>22} | {:>18.1} | {:>16.1} | {:>14.1} | {:>12.1}",
            scenario.label(),
            r.katom_steps_per_sec,
            r.average_bandwidth_gbps,
            r.peak_bandwidth_gbps,
            r.total_time.as_secs_f64()
        );
        results.push((scenario, r));
    }

    header("Figure 5b — bandwidth trace of the SCHED_COOP (node) scenario");
    if let Some((_, r)) = results
        .iter()
        .find(|(s, _)| *s == MdScenario::SchedCoopNode)
    {
        // Print a down-sampled trace (at most ~40 samples) so the valleys/plateaus are visible.
        let trace = &r.report.bw_trace;
        let step = (trace.len() / 40).max(1);
        for sample in trace.iter().step_by(step) {
            let bars = (sample.gbps / machine.memory_bw_gbps * 50.0).round() as usize;
            println!(
                "  t={:>8.1}s {:>7.1} GB/s |{}",
                sample.time.as_secs_f64(),
                sample.gbps,
                "#".repeat(bars)
            );
        }
    }

    println!();
    println!(
        "Expected shape (paper): the aggregated Katom-step/s of every concurrent scenario beats"
    );
    println!(
        "Exclusive; co-location suffers from load imbalance; co-execution recovers most of it but"
    );
    println!("pays oversubscription noise; SCHED_COOP attains both the highest throughput and the highest");
    println!(
        "average memory bandwidth (paper: 214.8 GB/s for schedcoop_node vs 165.4 GB/s Exclusive)."
    );
}
