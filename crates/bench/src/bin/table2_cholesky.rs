//! Regenerates **Table 2** (§5.4): Cholesky with multiple runtime compositions for three
//! degrees of parallelism, reporting Baseline throughput and the SCHED_COOP speedup.
//!
//! Usage: `cargo run -p usf-bench --release --bin table2_cholesky [--full]`

use usf_bench::{cli, fmt_mflops, fmt_speedup, header, machine_line, Scale};
use usf_simsched::Machine;
use usf_workloads::sim_cholesky::{
    run_sim_cholesky, CholeskyScheduler, Composition, Parallelism, SimCholeskyConfig,
};

fn main() {
    let scale = cli::parse_or_exit(
        "table2_cholesky",
        "Regenerates Table 2 (§5.4): Cholesky runtime compositions under oversubscription.",
        cli::SCALE_FLAGS,
    )
    .scale();
    let (machine, task_size, tasks_per_worker) = match scale {
        Scale::Quick => (Machine::marenostrum5_socket(), 512usize, 2usize),
        Scale::Full => (Machine::marenostrum5_socket(), 1024usize, 4usize),
    };

    header("Table 2 — Cholesky runtime compositions (simulated)");
    machine_line(&machine);
    println!(
        "task size {task_size}; cells show `Baseline MFLOP/s, SCHED_COOP speedup` (paper format)"
    );

    let rows = Composition::table2_rows();
    let row_labels: Vec<String> = rows.iter().map(|c| c.label()).collect();
    let col_labels: Vec<String> = Parallelism::ALL
        .iter()
        .map(|p| p.label().to_string())
        .collect();

    let mut cells: Vec<Vec<String>> = Vec::new();
    for comp in &rows {
        let mut row = Vec::new();
        for par in Parallelism::ALL {
            let mut base_cfg =
                SimCholeskyConfig::new(comp.clone(), par, CholeskyScheduler::Baseline);
            base_cfg.machine = machine.clone();
            base_cfg.task_size = task_size;
            base_cfg.tasks_per_worker = tasks_per_worker;
            let mut coop_cfg = base_cfg.clone();
            coop_cfg.scheduler = CholeskyScheduler::SchedCoop;
            let base = run_sim_cholesky(&base_cfg);
            let coop = run_sim_cholesky(&coop_cfg);
            row.push(format!(
                "{}, {}",
                fmt_mflops(base.mflops),
                fmt_speedup(coop.mflops / base.mflops.max(1e-9))
            ));
        }
        cells.push(row);
    }

    usf_bench::print_table("out/inn/blas", &row_labels, &col_labels, 18, |r, c| {
        cells[r][c].clone()
    });

    println!();
    println!("Expected shape (paper): speedups grow with oversubscription (Mild < Medium < High) and the");
    println!(
        "pth compositions benefit the most because the USF thread cache removes their per-call"
    );
    println!("thread creation/destruction cost (the paper reports up to 14.7x for gnu/pth/blis at High).");
}
