//! Figure 8 (repo experiment): the §5.6 socket-placement variants on the two-socket node.
//!
//! The paper's §5.6 argues that SCHED_COOP's affinity → same-NUMA-node → anywhere rule
//! matters most when co-run processes are *deliberately placed*. This binary reproduces
//! the socket-placement variants as data: one canned spec (the HPC pair — matmul +
//! Cholesky, each demanding the whole node) is swept over placement × {Fair, Coop} on the
//! two-socket machine:
//!
//! * `anywhere`  — no restriction (the scheduler's default rule decides);
//! * `pinned`    — one process per socket (`Node(0)` / `Node(1)`);
//! * `spread`    — the `Placement::Spread` lowering (round-robin over sockets);
//! * `colocated` — both processes on socket 0 (the deliberate same-socket contention
//!   variant; socket 1 idles under the pin).
//!
//! Placement lowers once in the plan ([`usf_scenarios::ScenarioPlan::placement_masks`])
//! and is enforced by the simulator models, so the reported cross-socket migration counts
//! are *measured* counters, not inferences from latency. Expected shape: node-pinned
//! variants record exactly **zero** cross-socket migrations, and pinning the pair per
//! socket keeps SCHED_COOP's p99 unit latency at or below the anywhere variant (no
//! cross-process quantum stalls, no remote placements). `--smoke` asserts both and is
//! wired into CI; every mode writes `BENCH_numa.json`.
//!
//! Usage: `cargo run -p usf-bench --release --bin fig8_numa [--quick|--full|--smoke]`

use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::{JsonObject, JsonValue};
use usf_bench::scenario_json::report_json;
use usf_bench::Scale;
use usf_scenarios::{
    library, Executor, ModelSel, Placement, ProblemSize, ScenarioReport, ScenarioSpec, SimExecutor,
};
use usf_simsched::Machine;

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--quick",
        value_name: None,
        help: "reduced sweep: 16 simulated cores, 2 sockets (default)",
    },
    FlagSpec {
        name: "--full",
        value_name: None,
        help: "paper-scale sweep: 112 simulated cores, 2 sockets",
    },
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "CI mode: assert zero cross-socket migrations when node-pinned and \
               pinned-Coop p99 <= anywhere-Coop p99 for the hpc_pair",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_numa.json)",
    },
];

/// The placement variants of §5.6, as data.
fn variants() -> Vec<(&'static str, Vec<Placement>)> {
    vec![
        ("anywhere", vec![Placement::Anywhere]),
        ("pinned", vec![Placement::Node(0), Placement::Node(1)]),
        ("spread", vec![Placement::Spread]),
        ("colocated", vec![Placement::Node(0)]),
    ]
}

/// One (variant, model) cell of the sweep.
struct Cell {
    variant: &'static str,
    model: ModelSel,
    report: ScenarioReport,
}

impl Cell {
    /// Worst per-process p99 unit latency, seconds.
    fn p99(&self) -> f64 {
        self.report
            .processes
            .iter()
            .map(|p| p.unit_summary().p99)
            .fold(0.0, f64::max)
    }

    fn cross_socket(&self) -> u64 {
        self.report
            .total_cross_socket_migrations()
            .expect("the simulator measures migrations")
    }

    fn migrations(&self) -> u64 {
        self.report
            .processes
            .iter()
            .map(|p| p.migrations.unwrap_or(0))
            .sum()
    }
}

fn sweep(machine: &Machine, base: &ScenarioSpec) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (variant, placements) in variants() {
        let spec = base.clone().with_placements(&placements);
        for model in [ModelSel::Fair, ModelSel::Coop] {
            let report = SimExecutor::for_model(machine.clone(), model, &spec).run_spec(&spec);
            cells.push(Cell {
                variant,
                model,
                report,
            });
        }
    }
    cells
}

fn find<'a>(cells: &'a [Cell], variant: &str, model: ModelSel) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.variant == variant && c.model == model)
        .unwrap_or_else(|| panic!("missing cell {variant}/{}", model.label()))
}

/// Variants whose lowered masks confine every process to one socket — these must record
/// exactly zero cross-socket migrations (the measured-counter regression gate).
const NODE_CONFINED: [&str; 3] = ["pinned", "spread", "colocated"];

fn main() {
    let args = cli::parse_or_exit(
        "fig8_numa",
        "Figure 8: the socket-placement variants of §5.6 (placement x {Fair, Coop}).",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let full = args.scale() == Scale::Full && !smoke;
    let json_path = args.get("--json").unwrap_or("BENCH_numa.json").to_string();

    // The same geometry as fig6/fig7: paper-scale two-socket node in --full, the
    // 16-core 2-socket miniature otherwise; 10 ms of work per unit per thread. Unlike
    // fig6/fig7, the §5.6 pair is *memory-bound*: the machine's NUMA-locality model is
    // switched on (threads computing off their process's first-touch node run 30%
    // slower — remote DRAM), which is exactly what deliberate socket placement controls.
    let (mut machine, cores, per_thread_ms): (Machine, usize, u64) = if full {
        (Machine::marenostrum5(), 112, 10)
    } else {
        (Machine::small_numa(16, 2), 16, 10)
    };
    machine.remote_numa_penalty = 1.3;
    let size = ProblemSize::Custom {
        unit_work_us: per_thread_ms * 1_000 * cores as u64,
    };
    let base = library::hpc_pair(cores, size);

    usf_bench::header("fig8_numa — §5.6 socket-placement variants (placement x model)");
    usf_bench::machine_line(&machine);
    println!(
        "scenario '{}' ({:.1}x oversubscribed), variants {:?}, {per_thread_ms} ms/unit/thread",
        base.name,
        base.oversubscription(),
        variants().iter().map(|(n, _)| *n).collect::<Vec<_>>(),
    );

    let cells = sweep(&machine, &base);

    println!();
    println!(
        "  {:<10} {:<12} {:>11} {:>11} {:>12} {:>14}",
        "variant", "model", "makespan", "p99-unit", "migrations", "cross-socket"
    );
    for c in &cells {
        println!(
            "  {:<10} {:<12} {:>10.3}s {:>10.4}s {:>12} {:>14}",
            c.variant,
            c.model.label(),
            c.report.total_makespan.as_secs_f64(),
            c.p99(),
            c.migrations(),
            c.cross_socket(),
        );
    }

    // Shape checks (reported in every mode, asserted in --smoke).
    let mut pinned_zero_cross = true;
    for variant in NODE_CONFINED {
        for model in [ModelSel::Fair, ModelSel::Coop] {
            let c = find(&cells, variant, model);
            if c.cross_socket() != 0 {
                pinned_zero_cross = false;
                eprintln!(
                    "shape violation: {variant}/{} recorded {} cross-socket migrations",
                    model.label(),
                    c.cross_socket()
                );
            }
        }
    }
    let pinned_coop = find(&cells, "pinned", ModelSel::Coop);
    let anywhere_coop = find(&cells, "anywhere", ModelSel::Coop);
    let pinned_beats_anywhere = pinned_coop.p99() <= anywhere_coop.p99() * 1.001;
    println!();
    println!(
        "node-pinned co-runs record 0 cross-socket migrations: {}",
        if pinned_zero_cross { "yes" } else { "NO" }
    );
    println!(
        "pinned-Coop p99 ({:.4}s) <= anywhere-Coop p99 ({:.4}s): {}",
        pinned_coop.p99(),
        anywhere_coop.p99(),
        if pinned_beats_anywhere { "yes" } else { "NO" }
    );

    let cells_json: Vec<JsonValue> = cells
        .iter()
        .map(|c| {
            JsonValue::from(
                JsonObject::new()
                    .field("variant", c.variant)
                    .field("model", c.model.label())
                    .num("p99_unit_s", c.p99(), 6)
                    .field("migrations", c.migrations())
                    .field("cross_socket_migrations", c.cross_socket())
                    .field("report", report_json(&c.report)),
            )
        })
        .collect();
    JsonObject::new()
        .field("benchmark", "fig8_numa")
        .field(
            "mode",
            if full {
                "full"
            } else if smoke {
                "smoke"
            } else {
                "quick"
            },
        )
        .field("sim_cores", machine.cores())
        .field("sockets", machine.sockets())
        .field("spec_cores", cores)
        .field("per_thread_unit_ms", per_thread_ms)
        .field("scenario", base.name.as_str())
        .field("pinned_zero_cross_socket", pinned_zero_cross)
        .field("pinned_coop_p99_le_anywhere", pinned_beats_anywhere)
        .field("cells", cells_json)
        .write_file(&json_path);

    if smoke {
        assert!(
            pinned_zero_cross,
            "regression: a node-pinned co-run migrated across sockets (measured counter)"
        );
        assert!(
            pinned_beats_anywhere,
            "regression: pinned-Coop p99 ({:.4}s) exceeded anywhere-Coop p99 ({:.4}s) \
             for the hpc_pair",
            pinned_coop.p99(),
            anywhere_coop.p99(),
        );
        // The anywhere variants must actually exercise the migration machinery, or the
        // zero-cross-socket gate above would pass vacuously.
        let anywhere_migrates = [ModelSel::Fair, ModelSel::Coop]
            .iter()
            .any(|&m| find(&cells, "anywhere", m).migrations() > 0);
        assert!(
            anywhere_migrates,
            "the anywhere variant never migrated — the counter gate is vacuous"
        );
        println!("smoke: OK (0 cross-socket when pinned; pinned-Coop p99 <= anywhere-Coop)");
    }
}
