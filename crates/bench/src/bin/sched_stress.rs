//! Scheduler submit-path stress: N producer threads submitting short tasks across M
//! process domains on an oversubscribed virtual-core set, reporting submits/sec and
//! p50/p99 scheduling-point latency, and writing `BENCH_sched.json`.
//!
//! Usage: `cargo run -p usf-bench --release --bin sched_stress [--smoke] [flags]`
//!
//! Two measurements, each run against both submit paths on fresh schedulers:
//!
//! * **saturated submit throughput** (the headline): every virtual core is kept busy, so
//!   each submit of a fresh task is the pure publication cost — one CAS onto the lock-free
//!   MPSC intake (`Scheduler::submit`) versus placement under the global scheduler lock
//!   (`Scheduler::submit_locked`, the pre-intake baseline). The printed
//!   `speedup_vs_locked` is the repo's perf trajectory for the scheduler hot path; with
//!   8+ producers the intake path sustains ≥ 2× the locked baseline.
//! * **wake churn** (context): worker tasks pause in a loop while producers re-wake them
//!   (each producer owns a disjoint partner set and only wakes blocked partners, so every
//!   submit is a real wake-up). Reports end-to-end grants/sec — this is condvar-bound,
//!   not lock-bound, which is exactly the paper's point that scheduling-point overhead is
//!   not the limiter.
//!
//! `--smoke` (used by CI) shrinks both runs, first executes a deterministic regression
//! sentinel that panics if a submit to a fully busy system ever acquires the scheduler
//! lock, and gates on wake churn: the intake path must hold both grants/s ≥ and wake
//! p99 ≤ the locked baseline (within a small noise margin), so the grant-hand-off
//! convoy — notifying the grant condvar with the scheduler lock still held — can never
//! silently return.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::{JsonObject, JsonValue};
use usf_bench::scenario_json::{shards_json, stages_json};
use usf_nosv::scheduler::Scheduler;
use usf_nosv::{NosvConfig, PolicyKind, ShardSnapshot, TaskRef, TaskState, Topology};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "tiny run + fast-path regression sentinel (CI mode)",
    },
    FlagSpec {
        name: "--cores",
        value_name: Some("N"),
        help: "virtual cores (default 8)",
    },
    FlagSpec {
        name: "--processes",
        value_name: Some("M"),
        help: "process domains (default 2)",
    },
    FlagSpec {
        name: "--producers",
        value_name: Some("P"),
        help: "producer threads (default 8)",
    },
    FlagSpec {
        name: "--workers",
        value_name: Some("W"),
        help: "wake-churn worker tasks, oversubscribing the cores (default 4x cores)",
    },
    FlagSpec {
        name: "--batch",
        value_name: Some("B"),
        help: "tasks submitted per producer per saturated round (default 20000)",
    },
    FlagSpec {
        name: "--rounds",
        value_name: Some("R"),
        help: "saturated rounds per mode (default 8)",
    },
    FlagSpec {
        name: "--duration-ms",
        value_name: Some("MS"),
        help: "wake-churn duration per mode (default 500)",
    },
    FlagSpec {
        name: "--spin",
        value_name: Some("ITERS"),
        help: "spin iterations per short task body (default 2000)",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_sched.json)",
    },
    FlagSpec {
        name: "--no-baseline",
        value_name: None,
        help: "skip the locked-baseline comparison runs",
    },
];

#[derive(Clone)]
struct Cfg {
    cores: usize,
    processes: usize,
    producers: usize,
    workers: usize,
    batch: usize,
    rounds: usize,
    duration: Duration,
    spin: u32,
}

impl Cfg {
    fn nosv(&self) -> NosvConfig {
        let mut c = NosvConfig::with_cores(self.cores);
        c.topology = Topology::new(self.cores, 2.min(self.cores));
        c
    }
}

fn spin_work(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Saturated submit throughput: with every core held busy by hog tasks, `producers`
/// threads concurrently submit `batch` fresh tasks each. Returns
/// `(submits/sec, sampled submit latencies ns, lock acquisitions during the timed phase)`.
fn saturated_phase(cfg: &Cfg, locked: bool) -> (f64, Vec<u64>, u64) {
    let mut best_rate = 0.0f64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut lock_acqs = 0u64;
    for _ in 0..cfg.rounds {
        let sched = Arc::new(Scheduler::new(cfg.nosv()));
        let pids: Vec<_> = (0..cfg.processes)
            .map(|i| sched.register_process(format!("domain-{i}")))
            .collect();
        // Hogs occupy every core so each measured submit hits the queue-publication path.
        let hogs: Vec<TaskRef> = (0..cfg.cores)
            .map(|i| {
                let t = sched
                    .create_task(pids[i % pids.len()], None)
                    .expect("scheduler is live");
                sched.submit(&t);
                t
            })
            .collect();
        assert_eq!(
            sched.busy_cores(),
            cfg.cores,
            "hogs must saturate the cores"
        );
        let batches: Vec<Vec<TaskRef>> = (0..cfg.producers)
            .map(|p| {
                (0..cfg.batch)
                    .map(|i| {
                        sched
                            .create_task(pids[(p + i) % pids.len()], None)
                            .expect("scheduler is live")
                    })
                    .collect()
            })
            .collect();
        let before = sched.metrics().snapshot();
        let barrier = Arc::new(Barrier::new(cfg.producers + 1));
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                let sched = Arc::clone(&sched);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(batch.len() / 16 + 1);
                    barrier.wait();
                    let t0 = Instant::now();
                    for (i, task) in batch.iter().enumerate() {
                        if i % 16 == 0 {
                            let s0 = Instant::now();
                            if locked {
                                sched.submit_locked(task);
                            } else {
                                sched.submit(task);
                            }
                            lat.push(s0.elapsed().as_nanos() as u64);
                        } else if locked {
                            sched.submit_locked(task);
                        } else {
                            sched.submit(task);
                        }
                    }
                    (t0.elapsed(), lat)
                })
            })
            .collect();
        barrier.wait();
        let mut slowest = Duration::ZERO;
        for h in handles {
            let (elapsed, lat) = h.join().expect("producer panicked");
            slowest = slowest.max(elapsed);
            latencies.extend(lat);
        }
        lock_acqs += sched.metrics().snapshot().delta(&before).lock_acquisitions;
        let rate = (cfg.producers * cfg.batch) as f64 / slowest.as_secs_f64().max(1e-9);
        best_rate = best_rate.max(rate);
        drop(hogs);
        sched.shutdown();
    }
    latencies.sort_unstable();
    (best_rate, latencies, lock_acqs)
}

struct ChurnStats {
    wakeups: u64,
    grants: u64,
    elapsed_s: f64,
    /// Per-stage latency delta over the timed window; `stages.wake` is the
    /// end-to-end enqueue->grant latency of every wake-up (not a 1-in-16 sample
    /// of submit-call durations, which is what this benchmark reported before
    /// the observability plane existed).
    stages: usf_nosv::StageSnapshot,
    /// Per-scheduler-shard delta over the timed window: dispatch-lock acquisitions,
    /// steals lost, valve crossings, and the shard's own dispatch histogram. One entry
    /// on flat schedulers; one per NUMA node under the split-lock scheduler.
    shards: Vec<ShardSnapshot>,
}

impl ChurnStats {
    fn wake_p50_ns(&self) -> u64 {
        self.stages.wake.percentile(0.50)
    }

    fn wake_p99_ns(&self) -> u64 {
        self.stages.wake.percentile(0.99)
    }
}

/// Wake churn: `workers` tasks pause in a loop (short spin per wake-up) while producers
/// re-wake blocked partners from disjoint slices for `duration`.
///
/// With `split_nodes = Some(n)` the run uses the split-lock scheduler over `n` NUMA
/// nodes, one process domain pinned per node and workers grouped by node so each
/// producer's slice stays node-homogeneous — the shape the per-node dispatch locks are
/// built for (call with `producers == n` for fully pinned producers).
fn churn_phase(cfg: &Cfg, locked: bool, split_nodes: Option<usize>) -> ChurnStats {
    let sched = match split_nodes {
        Some(n) => Arc::new(Scheduler::new(
            NosvConfig::with_topology(Topology::new(cfg.cores, n)).policy(PolicyKind::CoopSplit),
        )),
        None => Arc::new(Scheduler::new(cfg.nosv())),
    };
    let (pids, pid_of): (Vec<_>, Box<dyn Fn(usize) -> usize>) = match split_nodes {
        Some(n) => {
            let topo = sched.topology().clone();
            let pids: Vec<_> = (0..n)
                .map(|node| {
                    let p = sched.register_process(format!("node-{node}"));
                    sched.set_process_domain(p, Some(topo.cores_in_node(node).collect()));
                    p
                })
                .collect();
            let per_node = cfg.workers.div_ceil(n);
            (pids, Box::new(move |i| (i / per_node).min(n - 1)))
        }
        None => {
            let pids: Vec<_> = (0..cfg.processes)
                .map(|i| sched.register_process(format!("domain-{i}")))
                .collect();
            let len = pids.len();
            (pids, Box::new(move |i| i % len))
        }
    };
    let tasks: Vec<TaskRef> = (0..cfg.workers)
        .map(|i| {
            sched
                .create_task(pids[pid_of(i)], Some(format!("worker-{i}")))
                .expect("scheduler is live")
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = tasks
        .iter()
        .map(|t| {
            let sched = Arc::clone(&sched);
            let task = TaskRef::clone(t);
            let stop = Arc::clone(&stop);
            let spin = cfg.spin;
            std::thread::spawn(move || {
                sched.attach(&task);
                while !stop.load(Ordering::Relaxed) {
                    spin_work(spin);
                    sched.pause(&task);
                }
                sched.detach(&task);
            })
        })
        .collect();

    let total = Arc::new(AtomicU64::new(0));
    let before = sched.stats_snapshot();
    let deadline = Instant::now() + cfg.duration;
    let start = Instant::now();
    let chunk = tasks.len().div_ceil(cfg.producers);
    let producers: Vec<_> = (0..cfg.producers)
        .map(|p| {
            let sched = Arc::clone(&sched);
            let mine: Vec<TaskRef> = tasks
                .iter()
                .skip(p * chunk)
                .take(chunk)
                .map(TaskRef::clone)
                .collect();
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut count = 0u64;
                let mut probes = 0u64;
                let mut i = 0usize;
                while !mine.is_empty() {
                    probes += 1;
                    if probes % 128 == 0 && Instant::now() >= deadline {
                        break;
                    }
                    let task = &mine[i % mine.len()];
                    i += 1;
                    // Only wake partners that actually blocked: every submit is then a
                    // real wake-up rather than a counted or redundant one. Yield, don't
                    // spin: the partner needs CPU to reach its pause, and on hosts with
                    // fewer CPUs than churn threads a busy-wait here starves it.
                    if task.state() != TaskState::Blocked {
                        std::thread::yield_now();
                        continue;
                    }
                    if locked {
                        sched.submit_locked(task);
                    } else {
                        sched.submit(task);
                    }
                    count += 1;
                }
                total.fetch_add(count, Ordering::Relaxed);
            })
        })
        .collect();
    for h in producers {
        h.join().expect("producer panicked");
    }
    let elapsed = start.elapsed();
    // Snapshot before shutdown so the delta covers exactly the churn window.
    let after = sched.stats_snapshot();
    stop.store(true, Ordering::Relaxed);
    sched.shutdown();
    for h in workers {
        h.join().expect("worker panicked");
    }
    let delta = after.delta(&before);
    ChurnStats {
        wakeups: total.load(Ordering::Relaxed),
        grants: delta.counters.grants,
        elapsed_s: elapsed.as_secs_f64(),
        stages: delta.stages,
        shards: delta.shards,
    }
}

/// Deterministic regression sentinel: a submit while every core is busy must be intake-only
/// (no scheduler-lock acquisition). Panics — failing CI — on regression.
fn fastpath_sentinel() {
    let sched = Scheduler::new(NosvConfig::with_cores(1));
    let pid = sched.register_process("sentinel");
    let hog = sched.create_task(pid, None).expect("live");
    sched.submit(&hog); // occupies the only core
    let waiters: Vec<_> = (0..64)
        .map(|_| sched.create_task(pid, None).expect("live"))
        .collect();
    let before = sched.metrics().snapshot();
    for t in &waiters {
        sched.submit(t);
    }
    let delta = sched.metrics().snapshot().delta(&before);
    assert_eq!(
        delta.lock_acquisitions, 0,
        "regression: submit to a fully busy scheduler acquired the global lock"
    );
    assert_eq!(sched.ready_count(), waiters.len());
    sched.shutdown();
    println!("fast-path sentinel: OK (64 saturated submits, 0 lock acquisitions)");
}

/// Split-lock regression sentinel: on the split-lock scheduler, a steady-state
/// pause/submit churn window (workers already attached) must record **zero**
/// global-section acquisitions — every same-node scheduling point stays on its shard's
/// dispatch lock. Deterministic on any host (two threads, one worker). Panics — failing
/// CI — on regression.
fn split_churn_sentinel() {
    const CYCLES: usize = 128;
    let sched = Arc::new(Scheduler::new(
        NosvConfig::with_topology(Topology::new(2, 2)).policy(PolicyKind::CoopSplit),
    ));
    let pid = sched.register_process("sentinel");
    let task = sched.create_task(pid, None).expect("live");
    let window: Arc<std::sync::Mutex<Option<u64>>> = Arc::default();
    let worker = {
        let sched = Arc::clone(&sched);
        let task = TaskRef::clone(&task);
        let window = Arc::clone(&window);
        std::thread::spawn(move || {
            sched.attach(&task);
            // Attach (a task-table write) is done; measure the steady-state window.
            let before = sched.metrics().snapshot().global_lock_acquisitions;
            for _ in 0..CYCLES {
                sched.pause(&task);
            }
            let after = sched.metrics().snapshot().global_lock_acquisitions;
            *window.lock().unwrap() = Some(after - before);
            sched.detach(&task);
        })
    };
    let mut woken = 0;
    while woken < CYCLES {
        if task.state() == TaskState::Blocked {
            sched.submit(&task);
            woken += 1;
        } else {
            std::thread::yield_now();
        }
    }
    worker.join().expect("sentinel worker panicked");
    let acqs = window.lock().unwrap().expect("window not recorded");
    assert_eq!(
        acqs, 0,
        "regression: steady-state split-lock churn acquired the global section {acqs} times"
    );
    sched.shutdown();
    println!("split-churn sentinel: OK ({CYCLES} churn cycles, 0 global-section acquisitions)");
}

/// Node-scaling measurement: the same node-pinned wake churn on the split-lock
/// scheduler with 1 node (single dispatch lock) and 2 nodes (one lock per node).
/// Returns `None` — skipping the gate and the JSON section — on hosts without the
/// parallelism to run the two node-churns concurrently, or when
/// `USF_SKIP_NODE_SCALING` is set.
fn node_scaling_phase(cfg: &Cfg) -> Option<(ChurnStats, ChurnStats)> {
    let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    if parallelism < 4 || std::env::var_os("USF_SKIP_NODE_SCALING").is_some() {
        println!(
            "node-scaling: skipped (available parallelism {parallelism} < 4 or \
             USF_SKIP_NODE_SCALING set)"
        );
        return None;
    }
    // Producers pinned one-per-node: the 2-node run contends on nothing but the
    // workload itself; the 1-node run serializes both through one dispatch lock.
    let mut node_cfg = cfg.clone();
    node_cfg.producers = 2;
    let _ = churn_phase(&node_cfg, false, Some(1)); // warm-up
    let one = churn_phase_merged(&node_cfg, false, Some(1));
    let two = churn_phase_merged(&node_cfg, false, Some(2));
    let rate = |c: &ChurnStats| c.grants as f64 / c.elapsed_s.max(1e-9);
    println!(
        "node-scaling: 1-node {:>9.0} grants/s, 2-node {:>9.0} grants/s ({:.2}x)",
        rate(&one),
        rate(&two),
        rate(&two) / rate(&one).max(1e-9),
    );
    for (i, s) in two.shards.iter().enumerate() {
        println!(
            "         node {i}: {} lock acqs, {} steals lost, {} valve crossings, dispatch p99 {} ns",
            s.lock_acquisitions,
            s.steals,
            s.valve_crossings,
            s.dispatch.percentile(0.99),
        );
    }
    Some((one, two))
}

/// `--smoke` node-scaling gate: 2-node wake-churn grants/s must land within 20% of 2×
/// the 1-node rate — the dispatch locks must actually buy node-parallel dispatch, not
/// just shuffle contention. Only meaningful where `node_scaling_phase` did not skip.
fn node_scaling_gate(one: &ChurnStats, two: &ChurnStats) {
    let rate = |c: &ChurnStats| c.grants as f64 / c.elapsed_s.max(1e-9);
    let (r1, r2) = (rate(one), rate(two));
    assert!(
        r2 >= 2.0 * r1 * 0.8,
        "node-scaling gate: 2-node churn ({r2:.0} grants/s) fell short of 80% of 2x the \
         1-node rate ({r1:.0} grants/s)"
    );
    println!("node-scaling gate: OK ({r2:.0} grants/s on 2 nodes vs {r1:.0} on 1)");
}

/// Run the churn phase `rounds` times (at least 5) and merge the runs into one
/// aggregate: counts and elapsed time sum, stage histograms merge bucket-wise. A single
/// churn window on a busy host flips between adjacent log2 histogram buckets, and one
/// lucky window — e.g. a locked baseline where every grant happened to land
/// synchronously — should not decide the gate either way; percentiles over the pooled
/// samples are what the gate and `BENCH_sched.json` report.
fn churn_phase_merged(cfg: &Cfg, locked: bool, split_nodes: Option<usize>) -> ChurnStats {
    let mut merged: Option<ChurnStats> = None;
    for _ in 0..cfg.rounds.max(5) {
        let run = churn_phase(cfg, locked, split_nodes);
        match &mut merged {
            None => merged = Some(run),
            Some(m) => {
                m.wakeups += run.wakeups;
                m.grants += run.grants;
                m.elapsed_s += run.elapsed_s;
                m.stages.merge(&run.stages);
                for (a, b) in m.shards.iter_mut().zip(run.shards.iter()) {
                    a.lock_acquisitions += b.lock_acquisitions;
                    a.steals += b.steals;
                    a.valve_crossings += b.valve_crossings;
                    a.dispatch.merge(&b.dispatch);
                }
            }
        }
    }
    merged.expect("at least one churn round")
}

/// `--smoke` wake-churn gate: the intake path must beat the locked baseline on both
/// end-to-end grants/s and wake p99. The p99 values come out of log₂ histograms, so
/// their natural resolution is one bucket (a factor of two): the gate allows the intake
/// p99 to sit at most one bucket above the baseline's and fails on anything beyond
/// that. The convoy regression this pins (grant-slot condvar notified under the held
/// scheduler lock, so every woken worker immediately contended with its waker) blows
/// the wake tail by orders of magnitude under real multi-core contention — far outside
/// one bucket.
fn wake_churn_gate(churn: &ChurnStats, baseline: &ChurnStats) {
    const RATE_MARGIN: f64 = 0.10;
    let rate = churn.grants as f64 / churn.elapsed_s.max(1e-9);
    let base_rate = baseline.grants as f64 / baseline.elapsed_s.max(1e-9);
    assert!(
        rate >= base_rate * (1.0 - RATE_MARGIN),
        "wake-churn gate: intake grants/s ({rate:.0}) fell below the locked baseline ({base_rate:.0})"
    );
    let p99 = churn.wake_p99_ns();
    let base_p99 = baseline.wake_p99_ns();
    // Bucket index of a log₂-histogram percentile: values are reported as 2^k - 1.
    let bucket = |ns: u64| 64 - ns.saturating_add(1).leading_zeros();
    assert!(
        bucket(p99) <= bucket(base_p99) + 1,
        "wake-churn gate: wake p99 ({p99} ns) exceeds the locked baseline ({base_p99} ns) by more than one histogram bucket"
    );
    println!(
        "wake-churn gate: OK ({rate:.0} grants/s vs baseline {base_rate:.0}, wake p99 {p99} ns vs {base_p99} ns)"
    );
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    cfg: &Cfg,
    intake_rate: f64,
    lat: &[u64],
    intake_locks: u64,
    baseline_rate: Option<f64>,
    churn: &ChurnStats,
    churn_baseline: Option<&ChurnStats>,
    node_scaling: Option<&(ChurnStats, ChurnStats)>,
) {
    let mut doc = JsonObject::new()
        .field("benchmark", "sched_stress")
        .field("cores", cfg.cores)
        .field("processes", cfg.processes)
        .field("producers", cfg.producers)
        .field("workers", cfg.workers)
        .field("batch", cfg.batch)
        .field("rounds", cfg.rounds)
        .num("submits_per_sec", intake_rate, 1)
        .field("p50_submit_ns", percentile(lat, 50.0))
        .field("p99_submit_ns", percentile(lat, 99.0))
        .field("saturated_lock_acquisitions", intake_locks);
    doc = match baseline_rate {
        Some(b) => doc.num("baseline_submits_per_sec", b, 1).num(
            "speedup_vs_locked",
            intake_rate / b.max(1e-9),
            2,
        ),
        None => doc.field("speedup_vs_locked", JsonValue::Null),
    };
    doc = doc
        .num(
            "wake_grants_per_sec",
            churn.grants as f64 / churn.elapsed_s.max(1e-9),
            1,
        )
        .num(
            "wake_submits_per_sec",
            churn.wakeups as f64 / churn.elapsed_s.max(1e-9),
            1,
        )
        .field("wake_p50_ns", churn.wake_p50_ns())
        .field("wake_p99_ns", churn.wake_p99_ns())
        .field("wake_stages", stages_json(&churn.stages))
        .field("wake_shards", shards_json(&churn.shards));
    doc = match churn_baseline {
        Some(b) => doc
            .num(
                "wake_baseline_grants_per_sec",
                b.grants as f64 / b.elapsed_s.max(1e-9),
                1,
            )
            .field("wake_baseline_p99_ns", b.wake_p99_ns())
            .field("wake_baseline_stages", stages_json(&b.stages)),
        None => doc.field("wake_baseline_grants_per_sec", JsonValue::Null),
    };
    // Per-node scaling of the split-lock scheduler: the same node-pinned churn through
    // one dispatch lock vs one lock per node, with the 2-node run's per-node breakdown
    // (this is the per-node stage evidence CI uploads).
    doc = match node_scaling {
        Some((one, two)) => {
            let rate = |c: &ChurnStats| c.grants as f64 / c.elapsed_s.max(1e-9);
            doc.field(
                "node_scaling",
                JsonObject::new()
                    .num("nodes1_grants_per_sec", rate(one), 1)
                    .num("nodes2_grants_per_sec", rate(two), 1)
                    .num("speedup", rate(two) / rate(one).max(1e-9), 2)
                    .field("nodes2_stages", stages_json(&two.stages))
                    .field("nodes2_shards", shards_json(&two.shards)),
            )
        }
        None => doc.field("node_scaling", JsonValue::Null),
    };
    doc.write_file(path);
}

fn main() {
    let args = cli::parse_or_exit(
        "sched_stress",
        "Scheduler submit-path stress: producers submitting short tasks across process domains.",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let cores = args.get_or("--cores", 8usize).unwrap_or_else(die);
    let cfg = Cfg {
        cores,
        processes: args.get_or("--processes", 2usize).unwrap_or_else(die),
        producers: args.get_or("--producers", 8usize).unwrap_or_else(die),
        workers: args.get_or("--workers", 4 * cores).unwrap_or_else(die),
        batch: args
            .get_or("--batch", if smoke { 4_000 } else { 20_000usize })
            .unwrap_or_else(die),
        rounds: args
            .get_or("--rounds", if smoke { 3 } else { 8usize })
            .unwrap_or_else(die),
        duration: Duration::from_millis(
            args.get_or("--duration-ms", if smoke { 150 } else { 500u64 })
                .unwrap_or_else(die),
        ),
        spin: args.get_or("--spin", 2000u32).unwrap_or_else(die),
    };
    let json_path = args.get("--json").unwrap_or("BENCH_sched.json").to_string();

    usf_bench::header("sched_stress — scheduler submit-path throughput and latency");
    println!(
        "{} cores, {} processes, {} producers, {} workers, batch {} x {} rounds, churn {} ms",
        cfg.cores,
        cfg.processes,
        cfg.producers,
        cfg.workers,
        cfg.batch,
        cfg.rounds,
        cfg.duration.as_millis(),
    );

    if smoke {
        fastpath_sentinel();
        split_churn_sentinel();
    }

    let (intake_rate, lat, intake_locks) = saturated_phase(&cfg, false);
    println!(
        " intake: {:>12.0} submits/s  p50 {:>5} ns  p99 {:>6} ns  ({} lock acqs across {} rounds)",
        intake_rate,
        percentile(&lat, 50.0),
        percentile(&lat, 99.0),
        intake_locks,
        cfg.rounds,
    );
    let baseline_rate = if args.has("--no-baseline") {
        None
    } else {
        let (rate, blat, block) = saturated_phase(&cfg, true);
        println!(
            " locked: {:>12.0} submits/s  p50 {:>5} ns  p99 {:>6} ns  ({} lock acqs across {} rounds)",
            rate,
            percentile(&blat, 50.0),
            percentile(&blat, 99.0),
            block,
            cfg.rounds,
        );
        println!(
            "speedup vs locked baseline: {:.2}x (target: >= 2x at 8+ producers)",
            intake_rate / rate.max(1e-9)
        );
        Some(rate)
    };

    let churn = churn_phase_merged(&cfg, false, None);
    println!(
        "  churn: {:>12.0} wakeups/s  {:>9.0} grants/s  wake p50 {:>5} ns  p99 {:>6} ns",
        churn.wakeups as f64 / churn.elapsed_s.max(1e-9),
        churn.grants as f64 / churn.elapsed_s.max(1e-9),
        churn.wake_p50_ns(),
        churn.wake_p99_ns(),
    );
    for (name, h) in churn.stages.named() {
        if !h.is_empty() {
            println!(
                "         stage {:<11} n={:<8} p50 {:>6} ns  p99 {:>8} ns",
                name,
                h.count,
                h.percentile(0.50),
                h.percentile(0.99),
            );
        }
    }
    let churn_baseline = if args.has("--no-baseline") {
        None
    } else {
        let b = churn_phase_merged(&cfg, true, None);
        println!(
            "  churn (locked): {:>4.0} wakeups/s  {:>9.0} grants/s  wake p50 {:>5} ns  p99 {:>6} ns",
            b.wakeups as f64 / b.elapsed_s.max(1e-9),
            b.grants as f64 / b.elapsed_s.max(1e-9),
            b.wake_p50_ns(),
            b.wake_p99_ns(),
        );
        Some(b)
    };

    let node_scaling = node_scaling_phase(&cfg);

    if smoke {
        if let Some(b) = &churn_baseline {
            wake_churn_gate(&churn, b);
        }
        if let Some((one, two)) = &node_scaling {
            node_scaling_gate(one, two);
        }
    }

    write_json(
        &json_path,
        &cfg,
        intake_rate,
        &lat,
        intake_locks,
        baseline_rate,
        &churn,
        churn_baseline.as_ref(),
        node_scaling.as_ref(),
    );
}

fn die<T>(msg: String) -> T {
    eprintln!("sched_stress: {msg}");
    std::process::exit(2);
}
