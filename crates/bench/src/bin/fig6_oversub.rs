//! Figure 6 (repo experiment): per-process slowdown under 1×–8× co-run oversubscription.
//!
//! One canned [`usf_scenarios`] spec — the oversubscription *ramp*: `factor` identical
//! MD-ensemble processes, each demanding every core — is driven unmodified through all
//! three execution stacks:
//!
//! * `OsExecutor` / `UsfExecutor` run the spec for real (small sizes) to demonstrate the
//!   engine end to end: real threads, the kernel scheduler vs. one shared SCHED_COOP
//!   instance;
//! * `SimExecutor` runs the headline sweep at paper-scale core counts under the
//!   preemptive fair model (the Linux baseline) and under SCHED_COOP, reporting the mean
//!   slowdown-vs-solo per oversubscription factor.
//!
//! The paper's qualitative shape: the SCHED_COOP slowdown hugs the ideal `factor ×`
//! time-sharing line while the preemptive baseline drifts above it (involuntary
//! preemptions, migrations and barrier-straggler spin waste). `--smoke` (CI) asserts
//! `USF slowdown ≤ OS slowdown` at every factor ≥ 2 and writes `BENCH_corun.json`.
//!
//! Usage: `cargo run -p usf-bench --release --bin fig6_oversub [--quick|--full|--smoke]`

use std::time::Duration;
use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::{JsonObject, JsonValue};
use usf_bench::scenario_json::report_json;
use usf_bench::Scale;
use usf_scenarios::{
    library, Executor, OsExecutor, ProblemSize, ScenarioReport, SimExecutor, UsfExecutor,
};
use usf_simsched::{Machine, SchedModel};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--quick",
        value_name: None,
        help: "reduced sweep: 16 simulated cores, factors 1/2/4 (default)",
    },
    FlagSpec {
        name: "--full",
        value_name: None,
        help: "paper-scale sweep: 112 simulated cores, factors 1/2/4/8",
    },
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "tiny run asserting USF slowdown <= OS slowdown at >=2x (CI mode)",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_corun.json)",
    },
];

/// One point of the sweep.
struct SweepPoint {
    factor: usize,
    os: ScenarioReport,
    usf: ScenarioReport,
}

impl SweepPoint {
    fn os_slowdown(&self) -> f64 {
        self.os.mean_slowdown().unwrap_or(0.0)
    }

    fn usf_slowdown(&self) -> f64 {
        self.usf.mean_slowdown().unwrap_or(0.0)
    }
}

/// Run the ramp sweep on one simulator model, applying the factor-1 solo baseline.
fn sweep_model(
    machine: &Machine,
    model: SchedModel,
    cores: usize,
    size: ProblemSize,
    factors: &[usize],
) -> Vec<ScenarioReport> {
    let exec = SimExecutor::new(machine.clone(), model);
    let solo = exec.run_spec(&library::oversub_ramp(cores, 1, size));
    let solo_makespan = solo.processes[0].makespan;
    factors
        .iter()
        .map(|&factor| {
            let mut r = exec.run_spec(&library::oversub_ramp(cores, factor, size));
            let solos = vec![Some(solo_makespan); r.processes.len()];
            r.apply_solo_baseline(&solos);
            r
        })
        .collect()
}

fn print_report_line(r: &ScenarioReport) {
    let worst = r
        .worst_slowdown()
        .map(|s| format!("{s:.2}x"))
        .unwrap_or_else(|| "-".to_string());
    println!(
        "  {:<16} makespan {:>8.3}s  fairness {:.3}  worst slowdown {}",
        r.executor,
        r.total_makespan.as_secs_f64(),
        r.jain_fairness(),
        worst,
    );
    for p in &r.processes {
        let s = p.unit_summary();
        println!(
            "    {:<12} arrival {:>7.3}s  makespan {:>8.3}s  p50 {:>8.4}s  p99 {:>8.4}s",
            p.name,
            p.arrival.as_secs_f64(),
            p.makespan.as_secs_f64(),
            s.p50,
            s.p99,
        );
    }
}

fn main() {
    let args = cli::parse_or_exit(
        "fig6_oversub",
        "Figure 6: per-process slowdown under 1x-8x co-run oversubscription (OS vs USF).",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let full = args.scale() == Scale::Full && !smoke;
    let json_path = args.get("--json").unwrap_or("BENCH_corun.json").to_string();

    // Sweep geometry. The simulated machine is paper-scale in --full; the reduced modes
    // keep the same 2-socket shape at 16 cores so CI finishes in seconds. Per-thread unit
    // work is held well above the 4 ms preemption quantum so the fair baseline actually
    // preempts mid-unit (the mechanism behind the curve separation).
    let (machine, cores, factors, per_thread_ms): (Machine, usize, Vec<usize>, u64) = if full {
        (Machine::marenostrum5(), 112, vec![1, 2, 4, 8], 10)
    } else {
        let m = Machine::small_numa(16, 2);
        (m, 16, if smoke { vec![1, 2] } else { vec![1, 2, 4] }, 10)
    };
    let size = ProblemSize::Custom {
        unit_work_us: per_thread_ms * 1_000 * cores as u64,
    };

    usf_bench::header("fig6_oversub — co-run slowdown under oversubscription");
    usf_bench::machine_line(&machine);
    println!(
        "ramp: N identical MD-ensemble processes x {cores} threads each, factors {factors:?}, \
         {per_thread_ms} ms/unit/thread"
    );

    // ---------------------------------------------------------------------------------
    // 1. The same canned spec through the two *real* stacks (engine demonstration).
    // ---------------------------------------------------------------------------------
    let real_cores = 2;
    let real_spec = library::oversub_ramp(real_cores, 2, ProblemSize::Tiny);
    usf_bench::header(&format!(
        "real execution — '{}' on {} real cores (2x oversubscribed)",
        real_spec.name, real_cores
    ));
    let real_os = OsExecutor.run_with_solo_baselines(&real_spec);
    print_report_line(&real_os);
    // Sample runtime gauges at 1 ms so the report (and BENCH JSON) records peak ready-queue
    // depth and core occupancy for the contended run alongside the stage histograms.
    let real_usf = UsfExecutor::new()
        .sample_period(Duration::from_millis(1))
        .run_with_solo_baselines(&real_spec);
    print_report_line(&real_usf);

    // ---------------------------------------------------------------------------------
    // 2. The headline sweep on the simulator (deterministic, paper-scale).
    // ---------------------------------------------------------------------------------
    usf_bench::header("simulated sweep — mean slowdown vs solo per oversubscription factor");
    let os_reports = sweep_model(&machine, SchedModel::Fair, cores, size, &factors);
    let usf_reports = sweep_model(&machine, SchedModel::coop_default(), cores, size, &factors);
    let points: Vec<SweepPoint> = factors
        .iter()
        .zip(os_reports.into_iter().zip(usf_reports))
        .map(|(&factor, (os, usf))| SweepPoint { factor, os, usf })
        .collect();

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "factor", "os-slowdown", "usf-slowdown", "os-norm", "usf-norm", "os-fair", "usf-fair"
    );
    for p in &points {
        let ideal = p.factor as f64;
        println!(
            "{:>7}x {:>12} {:>12} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            p.factor,
            usf_bench::fmt_speedup(p.os_slowdown()),
            usf_bench::fmt_speedup(p.usf_slowdown()),
            p.os_slowdown() / ideal,
            p.usf_slowdown() / ideal,
            p.os.jain_fairness(),
            p.usf.jain_fairness(),
        );
    }

    // The paper's qualitative claim, checked on the deterministic stack.
    let mut usf_wins_at_oversub = true;
    for p in points.iter().filter(|p| p.factor >= 2) {
        if p.usf_slowdown() > p.os_slowdown() * 1.001 {
            usf_wins_at_oversub = false;
            eprintln!(
                "shape violation at {}x: usf {:.3} > os {:.3}",
                p.factor,
                p.usf_slowdown(),
                p.os_slowdown()
            );
        }
    }
    println!(
        "USF slowdown <= OS slowdown at every factor >= 2: {}",
        if usf_wins_at_oversub { "yes" } else { "NO" }
    );

    // ---------------------------------------------------------------------------------
    // 3. BENCH_corun.json — the perf-trajectory record.
    // ---------------------------------------------------------------------------------
    let sweep_json: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            JsonValue::from(
                JsonObject::new()
                    .field("factor", p.factor)
                    .num("os_slowdown", p.os_slowdown(), 3)
                    .num("usf_slowdown", p.usf_slowdown(), 3)
                    .num("os_normalized", p.os_slowdown() / p.factor as f64, 3)
                    .num("usf_normalized", p.usf_slowdown() / p.factor as f64, 3)
                    .num("os_fairness", p.os.jain_fairness(), 4)
                    .num("usf_fairness", p.usf.jain_fairness(), 4)
                    .field("os", report_json(&p.os))
                    .field("usf", report_json(&p.usf)),
            )
        })
        .collect();
    JsonObject::new()
        .field("benchmark", "fig6_oversub")
        .field(
            "mode",
            if full {
                "full"
            } else if smoke {
                "smoke"
            } else {
                "quick"
            },
        )
        .field("sim_cores", machine.cores())
        .field("spec_cores", cores)
        .field("per_thread_unit_ms", per_thread_ms)
        .field(
            "factors",
            factors
                .iter()
                .map(|&f| JsonValue::Int(f as i64))
                .collect::<Vec<_>>(),
        )
        .field("usf_slowdown_le_os_at_oversub", usf_wins_at_oversub)
        .field("real_os", report_json(&real_os))
        .field("real_usf", report_json(&real_usf))
        .field("sweep", sweep_json)
        .write_file(&json_path);

    if smoke {
        // Real stacks must have completed every unit of every process.
        for r in [&real_os, &real_usf] {
            assert_eq!(r.processes.len(), real_spec.procs.len(), "{}", r.executor);
            for (p, spec) in r.processes.iter().zip(&real_spec.procs) {
                assert_eq!(p.unit_latencies_s.len(), spec.units, "{}", r.executor);
                assert!(p.makespan > Duration::ZERO);
            }
        }
        assert!(
            usf_wins_at_oversub,
            "regression: SCHED_COOP slowdown exceeded the OS baseline under oversubscription"
        );
        println!("smoke: OK (3 executors ran the canned spec; USF <= OS at >=2x)");
    }
}
