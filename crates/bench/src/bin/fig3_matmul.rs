//! Regenerates **Figure 3** (§5.3): matmul with two nested runtimes, evaluated as a heatmap
//! of task-size × inner-thread configurations for the four software stacks (Baseline,
//! Manual, SCHED_COOP, Original).
//!
//! Usage: `cargo run -p usf-bench --release --bin fig3_matmul [--full]`
//!
//! The quick sweep uses a reduced matrix and a subset of the grid so it finishes in minutes;
//! `--full` sweeps the complete grid on the simulated 56-core socket. Absolute MFLOP/s
//! depend on the assumed per-core FLOP rate; the element-wise speedups against Baseline are
//! the quantities to compare with the paper.

use usf_bench::{cli, fmt_mflops, fmt_speedup, header, machine_line, Scale};
use usf_simsched::Machine;
use usf_workloads::sim_matmul::{run_sim_matmul, MatmulVariant, SimMatmulConfig};

fn main() {
    let scale = cli::parse_or_exit(
        "fig3_matmul",
        "Regenerates Figure 3 (§5.3): nested-runtime matmul heatmaps for four software stacks.",
        cli::SCALE_FLAGS,
    )
    .scale();
    let (matrix_size, task_sizes, thread_counts, machine) = match scale {
        Scale::Quick => (
            4096usize,
            vec![4096usize, 2048, 1024, 512, 256],
            vec![1usize, 2, 4, 8, 14, 28],
            Machine::marenostrum5_socket(),
        ),
        Scale::Full => (
            8192usize,
            vec![8192usize, 4096, 2048, 1024, 512, 256, 128],
            vec![1usize, 2, 4, 8, 14, 28, 56],
            Machine::marenostrum5_socket(),
        ),
    };

    header("Figure 3 — nested-runtime matmul heatmaps (simulated)");
    machine_line(&machine);
    println!("matrix size {matrix_size}, rows are (max parallel tasks - task size), columns are inner BLAS threads");
    println!("(the paper fixes the matrix to 32768²; the reproduction scales it down and keeps the parallelism grid)");

    let rows: Vec<String> = task_sizes
        .iter()
        .map(|ts| {
            let nb = matrix_size / ts;
            format!("{}-{}", nb * nb, ts)
        })
        .collect();
    let cols: Vec<String> = thread_counts.iter().map(|t| t.to_string()).collect();

    // Baseline performance (Figure 3a) plus element-wise speedups for the other variants.
    let mut results: Vec<Vec<Vec<f64>>> = Vec::new(); // [variant][row][col] -> mflops
    for variant in [
        MatmulVariant::Baseline,
        MatmulVariant::Manual,
        MatmulVariant::SchedCoop,
        MatmulVariant::Original,
    ] {
        let mut grid = Vec::new();
        for ts in &task_sizes {
            let mut row = Vec::new();
            for threads in &thread_counts {
                let mut cfg = SimMatmulConfig::new(matrix_size, *ts, *threads, variant);
                cfg.machine = machine.clone();
                if scale == Scale::Quick {
                    cfg.max_outer_workers = 256;
                }
                let r = run_sim_matmul(&cfg);
                row.push(r.mflops);
            }
            grid.push(row);
        }
        results.push(grid);
    }

    let variants = [
        "a) Baseline performance (MFLOP/s)",
        "b) Manual speedup",
        "c) SCHED_COOP speedup",
        "d) Original speedup",
    ];
    for (vi, title) in variants.iter().enumerate() {
        header(title);
        usf_bench::print_table("tasks \\ threads", &rows, &cols, 10, |ri, ci| {
            if vi == 0 {
                fmt_mflops(results[0][ri][ci])
            } else {
                fmt_speedup(results[vi][ri][ci] / results[0][ri][ci].max(1e-9))
            }
        });
    }

    // Headline comparison of §5.3: the best SCHED_COOP configuration vs. the best Baseline.
    let best = |vi: usize| -> f64 {
        results[vi]
            .iter()
            .flat_map(|r| r.iter().copied())
            .fold(0.0, f64::max)
    };
    header(
        "Best-configuration comparison (paper: SCHED_COOP ≈ +9.8%, Manual ≈ +11.8% over Baseline)",
    );
    println!("best Baseline   : {:>12} MFLOP/s", fmt_mflops(best(0)));
    println!(
        "best Manual     : {:>12} MFLOP/s ({} vs best Baseline)",
        fmt_mflops(best(1)),
        fmt_speedup(best(1) / best(0))
    );
    println!(
        "best SCHED_COOP : {:>12} MFLOP/s ({} vs best Baseline)",
        fmt_mflops(best(2)),
        fmt_speedup(best(2) / best(0))
    );
    println!(
        "best Original   : {:>12} MFLOP/s ({} vs best Baseline)",
        fmt_mflops(best(3)),
        fmt_speedup(best(3) / best(0))
    );
}
