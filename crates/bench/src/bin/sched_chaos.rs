//! Chaos harness: the scenario library under seeded fault schedules on the real
//! executors, proving the degradation contract end to end and writing
//! `BENCH_chaos.json`.
//!
//! Usage: `cargo run -p usf-bench --release --features fault-inject --bin sched_chaos
//! [--smoke] [flags]`
//!
//! Four phases, in order (the first three need `--features fault-inject`; without it
//! they are skipped and only driver-level faults — unit panics, process death — are
//! exercised):
//!
//! 1. **canary** — prove the fault plane and the lost-task oracle are non-vacuous: an
//!    injected dropped wakeup must actually lose the task (no hidden hardening absorbs
//!    it), and the documented level-triggered re-submit must recover it. A silent canary
//!    fails the run.
//! 2. **stalls** — inject worker stalls into dedicated single-core schedulers and
//!    require the grant-to-run watchdog to flag 100% of them, attributing the right
//!    task.
//! 3. **faulted fuzz** — the `usf_nosv::fuzz` op alphabet under absorbable fault plans
//!    (duplicated wakeups, bounded drain delays, a widened shutdown race): every
//!    invariant must hold, and with `--features sched-trace` every faulted run must
//!    replay divergence-free through the simulator.
//! 4. **sweep** — `--schedules` seeded fault schedules (default 256 in `--smoke`) cycled
//!    over the whole scenario library on the real USF executor (every 8th schedule also
//!    on the OS baseline): injected unit panics, mid-run process death, and — on
//!    fault-inject builds — scheduler-level sites including unbounded intake-drain
//!    delays and 120ms worker stalls. Per-process unit accounting is exact, so one lost
//!    task anywhere fails the sweep.
//!
//! The whole run is bounded by a global deadline (`--deadline`, default 300s): if any
//! faulted run hangs, the harness exits 2 instead of wedging CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::JsonObject;
use usf_scenarios::spec::{FaultPlanSpec, FaultSite, FaultSpec, ProblemSize};
use usf_scenarios::{library, Executor, OsExecutor, ScenarioReport, ScenarioSpec, UsfExecutor};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "CI mode: 256 fault schedules over the scenario library",
    },
    FlagSpec {
        name: "--schedules",
        value_name: Some("N"),
        help: "seeded fault schedules to sweep (default 512; --smoke forces 256)",
    },
    FlagSpec {
        name: "--seed0",
        value_name: Some("S"),
        help: "first schedule seed (default 0; sweep covers S..S+N)",
    },
    FlagSpec {
        name: "--deadline",
        value_name: Some("SECS"),
        help: "global no-hang deadline; exceeding it exits 2 (default 300)",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_chaos.json)",
    },
    FlagSpec {
        name: "--trace-jsonl",
        value_name: Some("PATH"),
        help: "record a traced+faulted mini-scenario as sched-trace JSONL \
               (needs --features sched-trace,fault-inject)",
    },
    FlagSpec {
        name: "--samples-jsonl",
        value_name: Some("PATH"),
        help: "stats-sampler series for the traced scenario (default SAMPLES_chaos.jsonl)",
    },
];

/// Flipped once every phase has finished; the deadline thread then stands down.
static DONE: AtomicBool = AtomicBool::new(false);

/// The zero-hangs guarantee: a detached thread that hard-exits the process (code 2) if
/// the phases have not all completed within the deadline. Scheduler-level faults delay
/// and strand wakeups on purpose — a bug in the rescue path would otherwise wedge CI.
fn arm_global_deadline(secs: u64) {
    std::thread::spawn(move || {
        let t0 = Instant::now();
        while !DONE.load(Ordering::Relaxed) {
            if t0.elapsed() >= Duration::from_secs(secs) {
                eprintln!("sched_chaos: GLOBAL DEADLINE ({secs}s) exceeded — a faulted run hung");
                std::process::exit(2);
            }
            std::thread::sleep(Duration::from_millis(100));
        }
    });
}

/// Phase 1: prove non-vacuity. With the level-triggered retry *not* exercised, an
/// injected dropped wakeup must be observably lost — if the stack silently absorbs it,
/// every green sweep below proves nothing. Then exercise the retry and require recovery.
#[cfg(feature = "fault-inject")]
fn run_canary() {
    use usf_nosv::scheduler::Scheduler;
    use usf_nosv::{FaultPlan, FaultSpec, NosvConfig, TaskState};
    let s = Scheduler::new(NosvConfig::with_cores(2));
    let fs = s.install_faults(
        &FaultPlan::new(0xC0FF).arm(FaultSpec::new(FaultSite::DropWakeup).one_in(1).max_fires(1)),
    );
    let p = s.register_process("canary");
    let t = s.create_task(p, None).expect("canary: create_task");
    s.submit(&t); // armed: this wakeup is dropped before any bookkeeping
    if t.state() != TaskState::Created
        || s.busy_cores() != 0
        || fs.fires(FaultSite::DropWakeup) != 1
    {
        eprintln!(
            "sched_chaos: CANARY SILENT: an injected dropped wakeup was not lost \
             (state {:?}, busy {}, fires {}) — the lost-task oracle is vacuous",
            t.state(),
            s.busy_cores(),
            fs.fires(FaultSite::DropWakeup)
        );
        std::process::exit(1);
    }
    // The documented degradation contract: recovery is level-triggered re-submission.
    s.submit(&t);
    if t.state() != TaskState::Running {
        eprintln!("sched_chaos: level-triggered re-submit did not recover the dropped wakeup");
        std::process::exit(1);
    }
    s.shutdown();
    println!("canary: dropped wakeup observably lost, level-triggered re-submit recovered it");
}

/// Phase 2: 100% stall detection. Each injection gets a fresh single-core scheduler; the
/// armed worker stalls 80ms inside `pause` while holding its grant, and the watchdog
/// must flag exactly that task before the stall window closes.
#[cfg(feature = "fault-inject")]
fn run_stall_detection() -> u64 {
    use std::sync::Arc;
    use usf_nosv::scheduler::Scheduler;
    use usf_nosv::{FaultPlan, FaultSpec, NosvConfig, TaskRef, TaskState};
    const INJECTIONS: u64 = 8;
    for i in 0..INJECTIONS {
        let s = Arc::new(Scheduler::new(NosvConfig::with_cores(1)));
        let fs = s.install_faults(
            &FaultPlan::new(i).arm(
                FaultSpec::new(FaultSite::WorkerStall)
                    .one_in(1)
                    .max_fires(1)
                    .stall(Duration::from_millis(80)),
            ),
        );
        let p = s.register_process("stall");
        let t = s.create_task(p, None).expect("stall: create_task");
        s.submit(&t);
        let s2 = Arc::clone(&s);
        let tc = TaskRef::clone(&t);
        let h = std::thread::spawn(move || s2.pause(&tc));
        let t0 = Instant::now();
        let mut flagged = Vec::new();
        while flagged.is_empty() {
            if t0.elapsed() > Duration::from_secs(20) {
                eprintln!("sched_chaos: injected stall {i} was never flagged by the watchdog");
                std::process::exit(1);
            }
            flagged = s.watchdog_scan(Duration::from_millis(10));
            std::thread::sleep(Duration::from_millis(2));
        }
        if flagged[0].task != t.id() || fs.fires(FaultSite::WorkerStall) != 1 {
            eprintln!(
                "sched_chaos: stall {i}: watchdog flagged task {:?}, expected {:?}",
                flagged[0].task,
                t.id()
            );
            std::process::exit(1);
        }
        // Wake the stalled worker (its pause blocked after the stall) so the run ends.
        while t.state() != TaskState::Blocked {
            std::thread::yield_now();
        }
        s.submit(&t);
        h.join().expect("stalled worker joins");
        s.shutdown();
    }
    println!("stalls: {INJECTIONS}/{INJECTIONS} injected worker stalls flagged by the watchdog");
    INJECTIONS
}

/// Phase 3: the fuzz op alphabet under absorbable fault plans. Returns
/// `(runs, total fault fires, divergence-free replays)`.
#[cfg(feature = "fault-inject")]
fn run_faulted_fuzz(seeds: u64) -> (u64, u64, u64) {
    use usf_nosv::fuzz::{absorbable_fault_plan, generate, FuzzConfig};
    let matrix = [
        ("base", FuzzConfig::base()),
        ("valve", FuzzConfig::valve()),
        ("shutdown", FuzzConfig::shutdown_biased()),
    ];
    let mut runs = 0u64;
    let mut fires = 0u64;
    #[cfg_attr(not(feature = "sched-trace"), allow(unused_mut))]
    let mut replays = 0u64;
    for (name, cfg) in matrix {
        for seed in 0..seeds {
            let ops = generate(&cfg, seed);
            let plan = absorbable_fault_plan(seed);
            #[cfg(feature = "sched-trace")]
            {
                let (result, state, meta, entries) =
                    usf_nosv::fuzz::execute_faulted_traced(&cfg, &ops, &plan);
                if let Err(f) = result {
                    eprintln!("sched_chaos: faulted fuzz {name} seed {seed}: {f}");
                    std::process::exit(1);
                }
                let report = usf_simsched::replay::replay(&meta, &entries);
                if !report.is_clean() {
                    eprintln!(
                        "sched_chaos: faulted fuzz {name} seed {seed}: real-vs-sim replay \
                         drift: {:?} ({} mismatched grants)",
                        report.divergence, report.mismatched_grants
                    );
                    std::process::exit(1);
                }
                fires += state.total_fires();
                replays += 1;
            }
            #[cfg(not(feature = "sched-trace"))]
            {
                let (result, state) = usf_nosv::fuzz::execute_faulted(&cfg, &ops, &plan);
                if let Err(f) = result {
                    eprintln!("sched_chaos: faulted fuzz {name} seed {seed}: {f}");
                    std::process::exit(1);
                }
                fires += state.total_fires();
            }
            runs += 1;
        }
    }
    if fires == 0 {
        eprintln!("sched_chaos: no fault fired across {runs} faulted fuzz runs — plane dead?");
        std::process::exit(1);
    }
    println!(
        "faulted fuzz: {runs} runs green, {fires} fault fires{}",
        if replays > 0 {
            format!(", {replays} divergence-free replays")
        } else {
            String::new()
        }
    );
    (runs, fires, replays)
}

/// Optional phase (`--trace-jsonl`): record a dedicated traced + faulted mini-scenario
/// and dump it as sched-trace JSONL plus a stats-sampler series, for conversion to a
/// Perfetto timeline by `usf_trace` (CI validates and uploads the result).
///
/// The scenario is sized for a readable timeline, not throughput: 3 workers on 2 cores
/// yielding/pausing/timed-waiting through 12 rounds each, with deterministic fault
/// fires armed (two 10ms worker stalls, duplicated wakeups, delayed intake drains) so
/// the exported track provably carries fault instants. A waker thread keeps pauses
/// level-triggered-recoverable and a watchdog thread flags the injected stalls, exactly
/// as a production embedder would run the scheduler.
#[cfg(all(feature = "fault-inject", feature = "sched-trace"))]
fn run_trace_export(trace_path: &str, samples_path: &str) {
    use std::sync::Arc;
    use usf_nosv::scheduler::Scheduler;
    use usf_nosv::{sched_trace, FaultPlan, NosvConfig, TaskRef};

    const WORKERS: usize = 3;
    const ROUNDS: usize = 12;
    let mut sched = Scheduler::new(NosvConfig::with_cores(2));
    let rec = sched.install_tracer();
    let s = Arc::new(sched);
    let fs = s.install_faults(
        &FaultPlan::new(0x0B5E)
            .arm(
                FaultSpec::new(FaultSite::WorkerStall)
                    .one_in(1)
                    .max_fires(2)
                    .stall(Duration::from_millis(10)),
            )
            .arm(
                FaultSpec::new(FaultSite::DuplicateWakeup)
                    .one_in(1)
                    .max_fires(3),
            )
            .arm(
                FaultSpec::new(FaultSite::DelayIntakeDrain)
                    .one_in(4)
                    .max_fires(2),
            ),
    );
    let sampler = s.start_sampler(Duration::from_micros(250));
    let p = s.register_process("traced");

    let done = Arc::new(AtomicBool::new(false));
    let watchdog = {
        let s = Arc::clone(&s);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut flagged = 0u64;
            while !done.load(Ordering::Relaxed) {
                flagged += s.watchdog_scan(Duration::from_millis(5)).len() as u64;
                std::thread::sleep(Duration::from_millis(1));
            }
            flagged
        })
    };

    let mut tasks = Vec::new();
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let t = s
            .create_task(p, Some(format!("w{w}")))
            .expect("trace export: create_task");
        tasks.push(TaskRef::clone(&t));
        s.submit(&t);
        let s2 = Arc::clone(&s);
        workers.push(std::thread::spawn(move || {
            s2.attach(&t);
            for round in 0..ROUNDS {
                let t0 = Instant::now();
                while t0.elapsed() < Duration::from_micros(150) {
                    std::hint::spin_loop();
                }
                match round % 4 {
                    3 => s2.pause(&t),
                    1 => {
                        let _ = s2.waitfor(&t, Duration::from_micros(300));
                    }
                    _ => {
                        s2.yield_now(&t);
                    }
                }
            }
            s2.detach(&t);
        }));
    }
    // Level-triggered waker: every pause above is recovered by a later submit (redundant
    // submits are absorbed as pending wakeups).
    let waker = {
        let s = Arc::clone(&s);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                for t in &tasks {
                    s.submit(t);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        })
    };
    for h in workers {
        h.join().expect("trace export: worker joins");
    }
    done.store(true, Ordering::Relaxed);
    let stalls_flagged = watchdog.join().expect("trace export: watchdog joins");
    waker.join().expect("trace export: waker joins");
    s.shutdown();
    let samples = sampler.stop();

    if fs.total_fires() == 0 {
        eprintln!("sched_chaos: trace export ran but no fault fired — plane dead?");
        std::process::exit(1);
    }
    let entries = rec.snapshot();
    std::fs::write(trace_path, sched_trace::to_jsonl(rec.meta(), &entries))
        .unwrap_or_else(|e| panic!("writing {trace_path}: {e}"));
    let mut lines = String::new();
    for sample in &samples {
        lines.push_str(&sample.to_jsonl_line());
        lines.push('\n');
    }
    std::fs::write(samples_path, lines).unwrap_or_else(|e| panic!("writing {samples_path}: {e}"));
    println!(
        "trace export: {} events, {} fault fires ({} stalls flagged), {} samples -> \
         {trace_path} + {samples_path}",
        entries.len(),
        fs.total_fires(),
        stalls_flagged,
        samples.len()
    );
}

/// The seeded fault schedule of sweep iteration `seed` over `spec`: unit panics on
/// every process, a mid-run kill on 3 schedules in 4 (always effective: the victim dies
/// strictly within its unit count), and scheduler-level sites for fault-inject builds —
/// absorbable wakeup duplication, *unbounded* intake-drain delays (the executor's
/// watchdog rescue keeps the run live), and on every third schedule a 120ms worker
/// stall the watchdog must flag. `DropWakeup` is deliberately never armed here: it is
/// the canary fault, lost by design.
fn chaos_schedule(seed: u64, spec: &ScenarioSpec) -> FaultPlanSpec {
    let nprocs = spec.procs.len();
    let victim = (seed as usize / 4) % nprocs;
    let units = spec.procs[victim].units.max(1);
    let mut fs = FaultPlanSpec::new(0x5EED_C4A0 ^ seed)
        .panics([2, 3, 5][(seed % 3) as usize], 1 + (seed % 3) as u32);
    if seed % 4 != 3 {
        fs = fs.kill(victim, 1 + (seed as usize / 4) % units);
    }
    fs = fs
        .sched_site(FaultSpec::new(FaultSite::DuplicateWakeup).one_in(3))
        .sched_site(FaultSpec::new(FaultSite::DelayIntakeDrain).one_in(4));
    if seed % 3 == 0 {
        fs = fs.sched_site(
            FaultSpec::new(FaultSite::WorkerStall)
                .one_in(1)
                .max_fires(1)
                .stall(Duration::from_millis(120)),
        );
    }
    fs
}

/// Aggregates of one verified sweep run.
#[derive(Default)]
struct RunStats {
    latencies: u64,
    panics: u64,
    kills: u64,
    driver_fires: u64,
    sched_fires: u64,
    stall_fires: u64,
    stalls_detected: u64,
}

/// The sweep oracle. Unit accounting under faults is *exact*: a killed victim records
/// precisely `kill_after` latencies, every other process all of its units (panicked
/// units included — a caught panic loses the unit's work, never its accounting), and
/// per-process injected-fault counts equal observed panics plus the death. On USF runs
/// the scheduler's own counters must agree (`processes_killed`), and every injected
/// worker stall must have been flagged (`stalls_detected >= fault_fires_worker_stall`).
fn verify_report(
    r: &ScenarioReport,
    spec: &ScenarioSpec,
    fs: &FaultPlanSpec,
    seed: u64,
) -> Result<RunStats, String> {
    let mut stats = RunStats::default();
    let ctx = |name: &str| format!("seed {seed} {} {}/{name}", spec.name, r.executor);
    for (i, p) in r.processes.iter().enumerate() {
        let units = spec.procs[i].units;
        let killed = fs.kill_proc == Some(i) && fs.kill_after_units <= units;
        let expected = if killed {
            fs.kill_after_units.max(1)
        } else {
            units
        };
        if p.unit_latencies_s.len() != expected {
            return Err(format!(
                "{}: {} unit latencies, expected {expected} — a task was lost or duplicated",
                ctx(&p.name),
                p.unit_latencies_s.len()
            ));
        }
        if p.survived == killed {
            return Err(format!(
                "{}: survived={} but killed={killed}",
                ctx(&p.name),
                p.survived
            ));
        }
        let expected_faults = p.panicked_units.len() as u64 + u64::from(killed);
        if p.injected_faults != expected_faults {
            return Err(format!(
                "{}: {} injected faults recorded, expected {expected_faults}",
                ctx(&p.name),
                p.injected_faults
            ));
        }
        if p.panicked_units.len() as u32 > fs.max_panics {
            return Err(format!(
                "{}: {} panics exceed the cap {}",
                ctx(&p.name),
                p.panicked_units.len(),
                fs.max_panics
            ));
        }
        if p.panicked_units.iter().any(|&u| u >= expected) {
            return Err(format!(
                "{}: panicked unit index out of range: {:?}",
                ctx(&p.name),
                p.panicked_units
            ));
        }
        stats.latencies += p.unit_latencies_s.len() as u64;
        stats.panics += p.panicked_units.len() as u64;
        stats.kills += u64::from(killed);
        stats.driver_fires += p.injected_faults;
    }
    if let Some(sched) = &r.sched {
        let expected_kills = f64::from(u8::from(fs.kill_proc.is_some()));
        if sched.get("processes_killed") != Some(expected_kills) {
            return Err(format!(
                "seed {seed} {}: scheduler saw {:?} kills, expected {expected_kills}",
                spec.name,
                sched.get("processes_killed")
            ));
        }
        let stall_fires = sched.get("fault_fires_worker_stall").unwrap_or(0.0);
        let detected = sched.get("stalls_detected").unwrap_or(0.0);
        // Stall detection is only demanded on kill-free schedules: a mid-run kill can
        // reclaim the staller's core (mark it idle) before the watchdog's deadline
        // passes, which resolves the stall by reclamation instead of flagging it.
        if fs.kill_proc.is_none() && detected < stall_fires {
            return Err(format!(
                "seed {seed} {}: {stall_fires} injected stalls but only {detected} flagged",
                spec.name
            ));
        }
        stats.sched_fires += sched.get("faults_injected").unwrap_or(0.0) as u64;
        stats.stall_fires += stall_fires as u64;
        stats.stalls_detected += detected as u64;
    }
    Ok(stats)
}

impl RunStats {
    fn absorb(&mut self, other: RunStats) {
        self.latencies += other.latencies;
        self.panics += other.panics;
        self.kills += other.kills;
        self.driver_fires += other.driver_fires;
        self.sched_fires += other.sched_fires;
        self.stall_fires += other.stall_fires;
        self.stalls_detected += other.stalls_detected;
    }
}

fn main() {
    let args = cli::parse_or_exit(
        "sched_chaos",
        "Chaos harness: the scenario library under seeded fault schedules on the real \
         executors (canary, 100% stall detection, faulted fuzzing, exact-accounting \
         sweep), bounded by a global no-hang deadline.",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let schedules: u64 = if smoke {
        256
    } else {
        args.get_or("--schedules", 512).unwrap_or_else(|e| {
            eprintln!("sched_chaos: {e}");
            std::process::exit(2);
        })
    };
    let seed0: u64 = args.get_or("--seed0", 0).unwrap_or_else(|e| {
        eprintln!("sched_chaos: {e}");
        std::process::exit(2);
    });
    let deadline: u64 = args.get_or("--deadline", 300).unwrap_or_else(|e| {
        eprintln!("sched_chaos: {e}");
        std::process::exit(2);
    });
    let json_path = args.get("--json").unwrap_or("BENCH_chaos.json").to_string();

    let injecting = cfg!(feature = "fault-inject");
    println!(
        "sched_chaos: {} mode, {schedules} fault schedules from seed {seed0}, \
         scheduler-level injection {}, deadline {deadline}s",
        if smoke { "smoke" } else { "full" },
        if injecting {
            "on (fault-inject)"
        } else {
            "off (driver faults only)"
        },
    );
    // Injected unit-body panics are caught and accounted by the drivers; keep their
    // expected backtrace spam out of the logs while leaving real panics visible.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("injected unit-body panic"));
        if !injected {
            default_hook(info);
        }
    }));
    arm_global_deadline(deadline);
    let start = Instant::now();

    #[cfg(feature = "fault-inject")]
    run_canary();
    #[cfg(feature = "fault-inject")]
    let stall_injections = run_stall_detection();
    #[cfg(not(feature = "fault-inject"))]
    let stall_injections = 0u64;
    #[cfg(feature = "fault-inject")]
    let (fuzz_runs, fuzz_fires, fuzz_replays) = run_faulted_fuzz(if smoke { 64 } else { 128 });
    #[cfg(not(feature = "fault-inject"))]
    let (fuzz_runs, fuzz_fires, fuzz_replays) = (0u64, 0u64, 0u64);

    if let Some(trace_path) = args.get("--trace-jsonl") {
        #[cfg(all(feature = "fault-inject", feature = "sched-trace"))]
        run_trace_export(
            trace_path,
            args.get("--samples-jsonl").unwrap_or("SAMPLES_chaos.jsonl"),
        );
        #[cfg(not(all(feature = "fault-inject", feature = "sched-trace")))]
        {
            let _ = trace_path;
            eprintln!("sched_chaos: --trace-jsonl needs --features sched-trace,fault-inject");
            std::process::exit(2);
        }
    }

    // Phase 4: the library sweep. Every schedule runs on the real USF stack; every 8th
    // also on the OS baseline (same driver-level faults, no scheduler to observe them).
    let entries = library::all(4, ProblemSize::Tiny);
    let mut totals = RunStats::default();
    let mut usf_runs = 0u64;
    let mut os_runs = 0u64;
    for seed in seed0..seed0 + schedules {
        let base = &entries[(seed % entries.len() as u64) as usize];
        let fs = chaos_schedule(seed, base);
        let spec = base.clone().with_faults(fs.clone());
        let reports = {
            let mut v = vec![UsfExecutor::new().run_spec(&spec)];
            usf_runs += 1;
            if seed % 8 == 5 {
                v.push(OsExecutor.run_spec(&spec));
                os_runs += 1;
            }
            v
        };
        for r in &reports {
            match verify_report(r, &spec, &fs, seed) {
                Ok(s) => totals.absorb(s),
                Err(why) => {
                    eprintln!("sched_chaos: SWEEP FAILED: {why}");
                    std::process::exit(1);
                }
            }
        }
        if (seed - seed0 + 1) % 64 == 0 {
            println!(
                "sweep: {}/{schedules} schedules green ({} latencies, {} panics, {} kills)",
                seed - seed0 + 1,
                totals.latencies,
                totals.panics,
                totals.kills
            );
        }
    }
    if injecting && totals.sched_fires == 0 {
        eprintln!("sched_chaos: no scheduler-level fault fired across the sweep — plane dead?");
        std::process::exit(1);
    }
    if totals.kills == 0 || totals.panics == 0 {
        eprintln!(
            "sched_chaos: degenerate sweep ({} kills, {} panics) — schedules too tame",
            totals.kills, totals.panics
        );
        std::process::exit(1);
    }

    DONE.store(true, Ordering::Relaxed);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "sched_chaos: {schedules} schedules ({usf_runs} USF + {os_runs} OS runs) green in \
         {elapsed:.2}s — {} exact latencies, {} panics, {} kills, {} driver fires, {} \
         scheduler fires, stalls {} injected / {} flagged",
        totals.latencies,
        totals.panics,
        totals.kills,
        totals.driver_fires,
        totals.sched_fires,
        totals.stall_fires,
        totals.stalls_detected
    );
    JsonObject::new()
        .field("benchmark", "sched_chaos")
        .field("mode", if smoke { "smoke" } else { "full" })
        .field("fault_inject", injecting)
        .field("schedules", schedules)
        .field("usf_runs", usf_runs)
        .field("os_runs", os_runs)
        .field("latencies_checked", totals.latencies)
        .field("unit_panics", totals.panics)
        .field("process_kills", totals.kills)
        .field("driver_fault_fires", totals.driver_fires)
        .field("sched_fault_fires", totals.sched_fires)
        .field("sweep_stall_fires", totals.stall_fires)
        .field("sweep_stalls_detected", totals.stalls_detected)
        .field("stall_injections_flagged", stall_injections)
        .field("fuzz_runs", fuzz_runs)
        .field("fuzz_fault_fires", fuzz_fires)
        .field("fuzz_replays_clean", fuzz_replays)
        .field("hangs", 0u64)
        .num("elapsed_s", elapsed, 2)
        .write_file(&json_path);
}
