//! Regenerates **Figure 4** (§5.5): the agentic microservices benchmark — latency and
//! throughput as the request rate grows (top) and the per-request timeline of the 0.33
//! requests/s run (bottom).
//!
//! Usage: `cargo run -p usf-bench --release --bin fig4_microservices [--full]`
//!
//! The quick sweep scales all inference times down by 10x (and the rates up accordingly) so
//! the simulation finishes quickly; `--full` uses the paper's durations and rates.

use usf_bench::{cli, header, machine_line, Scale};
use usf_simsched::{Machine, SimTime};
use usf_workloads::microservices::{run_microservices, MicroservicesConfig, PartitionScheme};

fn main() {
    let scale = cli::parse_or_exit(
        "fig4_microservices",
        "Regenerates Figure 4 (§5.5): agentic AI microservices latency/throughput.",
        cli::SCALE_FLAGS,
    )
    .scale();
    // Request rates of the paper's x-axis.
    let paper_rates = [0.11, 0.12, 0.14, 0.17, 0.2, 0.25, 0.33, 0.5, 1.0];
    let (time_scale, requests, rates): (f64, usize, Vec<f64>) = match scale {
        Scale::Quick => (0.1, 12, paper_rates.iter().map(|r| r * 10.0).collect()),
        Scale::Full => (1.0, 28, paper_rates.to_vec()),
    };
    let machine = Machine::marenostrum5();

    header("Figure 4 (top) — microservices latency and throughput vs request rate (simulated)");
    machine_line(&machine);
    println!(
        "{} requests per run, inference time scale {:.2} (paper rates {:?})",
        requests, time_scale, paper_rates
    );
    println!();
    println!(
        "{:>12} {:>12} | {:>14} {:>14} | {:>14} {:>14}",
        "scheme", "rate(req/s)", "mean lat (s)", "p95 lat (s)", "thrpt(req/s)", "deadlock"
    );

    let mut timeline_for_033: Vec<(PartitionScheme, Vec<(SimTime, SimTime)>)> = Vec::new();
    for scheme in PartitionScheme::ALL {
        for (idx, rate) in rates.iter().enumerate() {
            let mut cfg = MicroservicesConfig::new(*rate, scheme);
            cfg.requests = requests;
            cfg.time_scale = time_scale;
            cfg.machine = machine.clone();
            let r = run_microservices(&cfg);
            println!(
                "{:>12} {:>12.2} | {:>14.2} {:>14.2} | {:>14.3} {:>14}",
                scheme.label(),
                rate,
                r.mean_latency.as_secs_f64(),
                r.p95_latency.as_secs_f64(),
                r.throughput,
                r.report.deadlocked
            );
            // The paper's bottom plot uses the 0.33 req/s run (index 6 of the rate axis).
            if idx == 6 {
                timeline_for_033.push((scheme, r.request_timeline.clone()));
            }
        }
        println!();
    }

    header("Figure 4 (bottom) — per-request timeline at the paper's 0.33 req/s point");
    for (scheme, timeline) in timeline_for_033 {
        println!("-- {} --", scheme.label());
        for (i, (start, end)) in timeline.iter().enumerate() {
            println!(
                "  request {:>2}: submitted {:>8.2}s, completed {:>8.2}s, latency {:>8.2}s",
                i,
                start.as_secs_f64(),
                end.as_secs_f64(),
                end.saturating_sub(*start).as_secs_f64()
            );
        }
    }
    println!();
    println!(
        "Expected shape (paper): bl-eq saturates first (load imbalance across partitions), bl-opt"
    );
    println!("follows, bl-none collapses at high rates as all requests progress evenly and finish together,");
    println!(
        "bl-none-seq is flat but slow at low rates, and SCHED_COOP keeps both low latency and high"
    );
    println!("throughput across the whole range (up to 2.4x vs bl-none).");
}
