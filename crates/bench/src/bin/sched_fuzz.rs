//! Schedule-fuzzer smoke harness: seeded random op sequences against the real scheduler
//! (`usf_nosv::fuzz`), checking every invariant (no lost task, no double grant, domains
//! respected, gauges reconciled) and writing `BENCH_fuzz.json`.
//!
//! Usage: `cargo run -p usf-bench --release --bin sched_fuzz [--smoke] [flags]`
//!
//! Three layers, in order:
//!
//! 1. **canary** — before trusting a green sweep, prove the oracle has teeth: inject the
//!    lost-submit mutation into a heal-free sequence and require the harness to report a
//!    `LostTask`, then shrink the counterexample and require it to reach one op. A silent
//!    canary fails the run immediately.
//! 2. **sweep** — `--seeds` seeded sequences per config over the whole config matrix
//!    (base / aging-valve / shutdown-biased / domain-heavy / sharded / sharded-valve /
//!    split-lock / split-valve); every run must hold all invariants. `--smoke` (CI mode)
//!    runs 256 seeds × 8 configs = 2048 interleavings.
//! 3. **replay** (only when built with `--features sched-trace`) — each sweep run is
//!    recorded and re-executed through the simulator's SCHED_COOP instantiation
//!    (`usf_simsched::replay`); any real-vs-sim drift fails the run.
//!
//! On failure the counterexample is greedily shrunk and written to
//! `target/SCHED_FUZZ_counterexample.txt` (every CI job uploads it as an artifact, and
//! the path is printed so local runs find it too), and the process exits non-zero.

use std::time::Instant;
use usf_bench::cli::{self, FlagSpec};
use usf_bench::json::JsonObject;
use usf_nosv::fuzz::{execute, generate, shrink, FuzzConfig, FuzzOp, Mutation, Violation};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--smoke",
        value_name: None,
        help: "CI mode: 256 seeds x 8 configs = 2048 interleavings",
    },
    FlagSpec {
        name: "--seeds",
        value_name: Some("N"),
        help: "seeds per config (default 512; --smoke forces 256)",
    },
    FlagSpec {
        name: "--seed0",
        value_name: Some("S"),
        help: "first seed (default 0; sweep covers S..S+N)",
    },
    FlagSpec {
        name: "--json",
        value_name: Some("PATH"),
        help: "output file (default BENCH_fuzz.json)",
    },
    FlagSpec {
        name: "--counterexample",
        value_name: Some("PATH"),
        help:
            "shrunk-counterexample file on failure (default target/SCHED_FUZZ_counterexample.txt)",
    },
];

/// The config matrix the sweep covers; names appear in output and counterexamples.
fn matrix() -> Vec<(&'static str, FuzzConfig)> {
    vec![
        ("base", FuzzConfig::base()),
        ("valve", FuzzConfig::valve()),
        ("shutdown", FuzzConfig::shutdown_biased()),
        ("domains", FuzzConfig::domain_heavy()),
        ("sharded", FuzzConfig::sharded()),
        ("sharded-valve", FuzzConfig::sharded_valve()),
        ("split-lock", FuzzConfig::split_lock()),
        ("split-valve", FuzzConfig::split_valve()),
    ]
}

/// Keep only ops that cannot legitimately cancel a pending wake-up (no detach, no
/// deregister, no shutdown), so the injected dropped submit must surface as a lost task.
fn without_healing_ops(ops: Vec<FuzzOp>) -> Vec<FuzzOp> {
    ops.into_iter()
        .filter(|op| {
            matches!(
                op,
                FuzzOp::Submit { .. }
                    | FuzzOp::SubmitLocked { .. }
                    | FuzzOp::PinNode { .. }
                    | FuzzOp::Unpin { .. }
            )
        })
        .collect()
}

/// Prove the lost-task oracle fires and the shrinker minimises: inject `DropSubmit` into
/// heal-free sequences until one actually drops a submit, then require detection and a
/// one-op minimal reproduction.
fn run_canary() {
    let cfg = FuzzConfig::base();
    let mutation = Some(Mutation::DropSubmit { nth: 0 });
    for seed in 0..64u64 {
        let ops = without_healing_ops(generate(&cfg, seed));
        let has_submit = ops
            .iter()
            .any(|o| matches!(o, FuzzOp::Submit { .. } | FuzzOp::SubmitLocked { .. }));
        if !has_submit {
            continue;
        }
        let failure = match execute(&cfg, &ops, mutation) {
            Err(f) => f,
            Ok(_) => {
                eprintln!(
                    "sched_fuzz: CANARY SILENT at seed {seed}: a dropped submit went undetected"
                );
                std::process::exit(1);
            }
        };
        assert!(
            matches!(failure.violation, Violation::LostTask { .. }),
            "canary seed {seed}: expected LostTask, got {failure}"
        );
        let minimal = shrink(&cfg, &ops, mutation);
        assert_eq!(
            minimal.len(),
            1,
            "canary seed {seed}: shrinker left {} ops: {minimal:?}",
            minimal.len()
        );
        println!(
            "canary: seed {seed}: dropped submit detected ({failure}), shrunk {} -> {} op",
            ops.len(),
            minimal.len()
        );
        return;
    }
    eprintln!("sched_fuzz: no canary-eligible sequence in seeds 0..64");
    std::process::exit(1);
}

/// One sweep run. Without the `sched-trace` feature this is invariant checking only; with
/// it, the run is also recorded and replayed through the simulator. Returns the number of
/// aged pops the replay served (0 when not tracing).
fn run_one(name: &str, cfg: &FuzzConfig, seed: u64, ops: &[FuzzOp]) -> Result<u64, String> {
    #[cfg(feature = "sched-trace")]
    {
        let (result, meta, entries) = usf_nosv::fuzz::execute_traced(cfg, ops);
        if let Err(f) = result {
            return Err(format!("config {name} seed {seed}: {f}"));
        }
        let report = usf_simsched::replay::replay(&meta, &entries);
        if !report.is_clean() {
            return Err(format!(
                "config {name} seed {seed}: real-vs-sim replay drift: {:?} ({} mismatched grants)",
                report.divergence, report.mismatched_grants
            ));
        }
        Ok(report.aged_steps.len() as u64)
    }
    #[cfg(not(feature = "sched-trace"))]
    {
        execute(cfg, ops, None)
            .map(|_| 0)
            .map_err(|f| format!("config {name} seed {seed}: {f}"))
    }
}

/// Shrink a failing sequence and persist it for the CI artifact upload.
fn write_counterexample(path: &str, cfg_name: &str, cfg: &FuzzConfig, seed: u64, why: &str) {
    let ops = generate(cfg, seed);
    let minimal = shrink(cfg, &ops, None);
    let mut out = String::new();
    out.push_str(&format!(
        "sched_fuzz counterexample\nconfig: {cfg_name}\nseed: {seed}\n"
    ));
    out.push_str(&format!("failure: {why}\n"));
    out.push_str(&format!("original ops ({}):\n", ops.len()));
    for (i, op) in ops.iter().enumerate() {
        out.push_str(&format!("  {i:3}: {op}\n"));
    }
    out.push_str(&format!("shrunk ops ({}):\n", minimal.len()));
    for (i, op) in minimal.iter().enumerate() {
        out.push_str(&format!("  {i:3}: {op}\n"));
    }
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("sched_fuzz: could not write {path}: {e}");
    } else {
        eprintln!("sched_fuzz: shrunk counterexample written to {path}");
    }
}

fn main() {
    let args = cli::parse_or_exit(
        "sched_fuzz",
        "Seeded schedule fuzzer: invariant sweep over the real scheduler (and, with \
         --features sched-trace, real-vs-sim replay), with an injected-bug canary.",
        FLAGS,
    );
    let smoke = args.has("--smoke");
    let seeds: u64 = if smoke {
        256
    } else {
        args.get_or("--seeds", 512).unwrap_or_else(|e| {
            eprintln!("sched_fuzz: {e}");
            std::process::exit(2);
        })
    };
    let seed0: u64 = args.get_or("--seed0", 0).unwrap_or_else(|e| {
        eprintln!("sched_fuzz: {e}");
        std::process::exit(2);
    });
    let json_path = args.get("--json").unwrap_or("BENCH_fuzz.json").to_string();
    let cex_path = args
        .get("--counterexample")
        .unwrap_or("target/SCHED_FUZZ_counterexample.txt")
        .to_string();

    let traced = cfg!(feature = "sched-trace");
    println!(
        "sched_fuzz: {} mode, {seeds} seeds/config from seed {seed0}, replay {}",
        if smoke { "smoke" } else { "full" },
        if traced { "on (sched-trace)" } else { "off" },
    );

    run_canary();

    let start = Instant::now();
    let mut interleavings = 0u64;
    let mut aged_replayed = 0u64;
    for (name, cfg) in matrix() {
        for seed in seed0..seed0 + seeds {
            let ops = generate(&cfg, seed);
            match run_one(name, &cfg, seed, &ops) {
                Ok(aged) => aged_replayed += aged,
                Err(why) => {
                    eprintln!("sched_fuzz: FAILED: {why}");
                    write_counterexample(&cex_path, name, &cfg, seed, &why);
                    std::process::exit(1);
                }
            }
            interleavings += 1;
        }
        println!("config {name}: {seeds} seeds green");
    }
    let elapsed = start.elapsed().as_secs_f64();
    if traced && aged_replayed == 0 {
        // The valve config (1 core, 1 ns quantum) starves by construction; its replays
        // must serve aged entries or the aging valve has stopped firing.
        eprintln!("sched_fuzz: no aged pop replayed across the sweep — aging valve dead?");
        std::process::exit(1);
    }

    println!(
        "sched_fuzz: {interleavings} interleavings green in {elapsed:.2}s ({:.0}/s)",
        interleavings as f64 / elapsed.max(1e-9)
    );
    JsonObject::new()
        .field("benchmark", "sched_fuzz")
        .field("mode", if smoke { "smoke" } else { "full" })
        .field("seeds_per_config", seeds)
        .field("configs", matrix().len())
        .field("interleavings", interleavings)
        .field("violations", 0u64)
        .field("canary_caught", true)
        .field("replay", traced)
        .field("replayed_aged_pops", aged_replayed)
        .num("elapsed_s", elapsed, 2)
        .write_file(&json_path);
}
