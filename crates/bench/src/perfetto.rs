//! Conversion of recorded schedules to Chrome trace-event ("Perfetto") JSON.
//!
//! A schedule recorded by the `sched-trace` plane (serialized as JSONL by
//! [`usf_nosv::sched_trace::to_jsonl`]) is an event log; Perfetto wants *tracks*. This
//! module rebuilds the timeline the log describes — per-core task-occupancy spans, point
//! events for faults/migrations/valve fires, and counter series — and renders it in the
//! [Chrome trace-event format] that `ui.perfetto.dev` (and `chrome://tracing`) opens
//! directly. The `usf-trace` binary is a thin CLI around this module.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Span semantics
//!
//! A span is a task's occupancy of a core: it opens at the task's
//! [`TraceEvent::Grant`] and closes at the first of
//!
//! * the next `Grant` on the same core (the scheduler only re-grants a core after its
//!   occupant left at a scheduling point, so the next grant bounds the previous
//!   occupancy from above),
//! * a [`TraceEvent::Yield`] by the occupant, or
//! * the end of the trace.
//!
//! This derives the timeline purely from events the scheduler already records — no extra
//! trace variants (which would perturb the replay/fuzz consumers of the same log). It
//! also gives the converter a checkable invariant, enforced by [`Timeline::validate`]:
//! **exactly one span per grant, and spans on one core never overlap.**

use crate::json::{JsonObject, JsonValue};
use std::collections::HashMap;
use usf_nosv::sched_trace::{TraceEntry, TraceEvent, TraceMeta};
use usf_nosv::{PickTier, StatsSample, TaskId};

/// One task-occupancy span on a core track.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The occupied core.
    pub core: usize,
    /// The occupying task.
    pub task: TaskId,
    /// Trace-relative open time (the grant), nanoseconds.
    pub start_ns: u64,
    /// Trace-relative close time, nanoseconds.
    pub end_ns: u64,
}

/// A point event placed on a core track (or the scheduler-wide track when the core is
/// unknown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marker {
    /// Display name, e.g. `fault:WorkerStall` or `valve_fire`.
    pub name: String,
    /// Core track to place the instant on; `None` means the scheduler-wide track.
    pub core: Option<usize>,
    /// Trace-relative time, nanoseconds.
    pub at_ns: u64,
}

/// One point of a counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterPoint {
    /// Counter track name.
    pub track: &'static str,
    /// Trace-relative time, nanoseconds.
    pub at_ns: u64,
    /// Counter value at that time.
    pub value: i64,
}

/// The rebuilt timeline of one recorded schedule.
#[derive(Debug)]
pub struct Timeline {
    /// Topology and policy the trace was recorded from.
    pub meta: TraceMeta,
    /// Task-occupancy spans, in open order.
    pub spans: Vec<Span>,
    /// Point events (faults, migrations, aging-valve fires).
    pub markers: Vec<Marker>,
    /// Counter series (queued-ready depth derived from enqueue/pop; sampler gauges when
    /// a sample series was supplied).
    pub counters: Vec<CounterPoint>,
    /// Number of [`TraceEvent::Grant`] events seen (the span-count invariant's target).
    pub grants: usize,
}

/// Rebuild the [`Timeline`] described by a recorded event log.
///
/// `samples` is an optional lock-free sampler series ([`StatsSample`]) recorded alongside
/// the trace; its gauges become extra counter tracks.
pub fn build_timeline(
    meta: TraceMeta,
    entries: &[TraceEntry],
    samples: &[StatsSample],
) -> Timeline {
    let cores = meta.cores();
    // Per-core open occupancy: (task, start_ns).
    let mut open: Vec<Option<(TaskId, u64)>> = vec![None; cores];
    // Which core each granted task currently occupies (for placing fault instants).
    let mut task_core: HashMap<TaskId, usize> = HashMap::new();
    let mut spans = Vec::new();
    let mut markers = Vec::new();
    let mut counters = Vec::new();
    let mut grants = 0usize;
    let mut end_ns = 0u64;
    // Queued-ready depth derived from the authoritative enqueue/pop pair under the
    // scheduler lock (immediate grants bypass the queues and do not touch it).
    let mut ready_depth: i64 = 0;

    for e in entries {
        let at = e.at_nanos;
        end_ns = end_ns.max(at);
        match &e.event {
            TraceEvent::Grant { task, core, .. } => {
                grants += 1;
                if *core < cores {
                    if let Some((prev, start_ns)) = open[*core].take() {
                        task_core.remove(&prev);
                        spans.push(Span {
                            core: *core,
                            task: prev,
                            start_ns,
                            end_ns: at,
                        });
                    }
                    open[*core] = Some((*task, at));
                    task_core.insert(*task, *core);
                }
            }
            TraceEvent::Yield { task, core } => {
                if *core < cores {
                    if let Some((prev, start_ns)) = open[*core].take() {
                        task_core.remove(&prev);
                        spans.push(Span {
                            core: *core,
                            task: prev,
                            start_ns,
                            end_ns: at,
                        });
                    }
                }
                task_core.remove(task);
            }
            TraceEvent::Migrate { task, to, from } => {
                markers.push(Marker {
                    name: format!("migrate task {task} ({from}->{to})"),
                    core: Some(*to),
                    at_ns: at,
                });
            }
            TraceEvent::FaultInjected { site, task } => {
                let core = task.and_then(|t| task_core.get(&t).copied());
                markers.push(Marker {
                    name: format!("fault:{site:?}"),
                    core,
                    at_ns: at,
                });
            }
            TraceEvent::Enqueue { .. } => {
                ready_depth += 1;
                counters.push(CounterPoint {
                    track: "ready_depth",
                    at_ns: at,
                    value: ready_depth,
                });
            }
            TraceEvent::Pop { core, tier, .. } => {
                ready_depth = (ready_depth - 1).max(0);
                counters.push(CounterPoint {
                    track: "ready_depth",
                    at_ns: at,
                    value: ready_depth,
                });
                if *tier == Some(PickTier::Aged) {
                    markers.push(Marker {
                        name: "valve_fire".to_string(),
                        core: Some(*core),
                        at_ns: at,
                    });
                }
            }
            _ => {}
        }
    }

    // Close every still-open occupancy at the end of the trace.
    for (core, slot) in open.into_iter().enumerate() {
        if let Some((task, start_ns)) = slot {
            spans.push(Span {
                core,
                task,
                start_ns,
                end_ns: end_ns.max(start_ns),
            });
        }
    }

    for s in samples {
        let at_ns = s.at.as_nanos() as u64;
        counters.push(CounterPoint {
            track: "sampled_ready_tasks",
            at_ns,
            value: s.ready_tasks as i64,
        });
        counters.push(CounterPoint {
            track: "sampled_intake_depth",
            at_ns,
            value: s.intake_depth as i64,
        });
        counters.push(CounterPoint {
            track: "sampled_busy_cores",
            at_ns,
            value: s.busy_cores as i64,
        });
    }

    Timeline {
        meta,
        spans,
        markers,
        counters,
        grants,
    }
}

impl Timeline {
    /// Check the converter's structural invariants:
    ///
    /// * exactly one span per recorded grant;
    /// * every span lies on a core of the recorded topology with `start <= end`;
    /// * spans on the same core do not overlap.
    ///
    /// # Errors
    /// Returns a message describing the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.spans.len() != self.grants {
            return Err(format!(
                "span count {} != grant count {}",
                self.spans.len(),
                self.grants
            ));
        }
        let cores = self.meta.cores();
        let mut per_core: Vec<Vec<&Span>> = vec![Vec::new(); cores];
        for s in &self.spans {
            if s.core >= cores {
                return Err(format!(
                    "span on core {} outside topology ({cores})",
                    s.core
                ));
            }
            if s.start_ns > s.end_ns {
                return Err(format!(
                    "span on core {} ends ({}) before it starts ({})",
                    s.core, s.end_ns, s.start_ns
                ));
            }
            per_core[s.core].push(s);
        }
        for (core, mut spans) in per_core.into_iter().enumerate() {
            spans.sort_by_key(|s| s.start_ns);
            for w in spans.windows(2) {
                if w[1].start_ns < w[0].end_ns {
                    return Err(format!(
                        "overlapping spans on core {core}: task {} [{}, {}) and task {} [{}, {})",
                        w[0].task,
                        w[0].start_ns,
                        w[0].end_ns,
                        w[1].task,
                        w[1].start_ns,
                        w[1].end_ns
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render as a Chrome trace-event JSON document (openable in `ui.perfetto.dev`).
    ///
    /// One named thread track per core (grouped under a single "usf scheduler" process),
    /// plus a `scheduler` track for instants whose core is unknown. Timestamps are
    /// microseconds (the format's unit) with nanosecond precision kept in the decimals.
    pub fn render_chrome_json(&self) -> String {
        let cores = self.meta.cores();
        let sched_tid = cores; // track for core-less instants, below the core tracks
        let mut events: Vec<JsonValue> = Vec::new();

        events.push(meta_event("process_name", None, "usf scheduler"));
        for core in 0..cores {
            let name = format!("core {core} (node {})", self.meta.core_nodes[core]);
            events.push(meta_event("thread_name", Some(core), &name));
        }
        events.push(meta_event("thread_name", Some(sched_tid), "scheduler"));

        for s in &self.spans {
            events.push(
                JsonObject::new()
                    .field("name", format!("task {}", s.task))
                    .field("ph", "X")
                    .field("pid", 1u64)
                    .field("tid", s.core)
                    .num("ts", s.start_ns as f64 / 1000.0, 3)
                    .num("dur", (s.end_ns - s.start_ns) as f64 / 1000.0, 3)
                    .into(),
            );
        }
        for m in &self.markers {
            events.push(
                JsonObject::new()
                    .field("name", m.name.as_str())
                    .field("ph", "i")
                    .field("s", "t")
                    .field("pid", 1u64)
                    .field("tid", m.core.unwrap_or(sched_tid))
                    .num("ts", m.at_ns as f64 / 1000.0, 3)
                    .into(),
            );
        }
        for c in &self.counters {
            events.push(
                JsonObject::new()
                    .field("name", c.track)
                    .field("ph", "C")
                    .field("pid", 1u64)
                    .field("tid", 0u64)
                    .num("ts", c.at_ns as f64 / 1000.0, 3)
                    .field("args", JsonObject::new().field("value", c.value))
                    .into(),
            );
        }

        JsonObject::new()
            .field("traceEvents", events)
            .field("displayTimeUnit", "ms")
            .field(
                "otherData",
                JsonObject::new()
                    .field("policy", self.meta.policy.as_str())
                    .field("cores", cores)
                    .field("quantum_nanos", self.meta.quantum_nanos),
            )
            .render()
    }
}

/// A Chrome trace metadata event (`ph:"M"`) naming a process or thread track.
fn meta_event(kind: &str, tid: Option<usize>, name: &str) -> JsonValue {
    let mut obj = JsonObject::new()
        .field("name", kind)
        .field("ph", "M")
        .field("pid", 1u64);
    if let Some(tid) = tid {
        obj = obj.field("tid", tid);
    }
    obj.field("args", JsonObject::new().field("name", name))
        .into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use usf_nosv::FaultSite;

    fn meta2() -> TraceMeta {
        TraceMeta {
            core_nodes: vec![0, 1],
            quantum_nanos: 1_000_000,
            policy: "sched_coop".to_string(),
        }
    }

    fn entry(step: u64, at_nanos: u64, event: TraceEvent) -> TraceEntry {
        TraceEntry {
            step,
            at_nanos,
            event,
        }
    }

    #[test]
    fn spans_close_at_regrant_yield_and_trace_end() {
        let entries = vec![
            entry(
                0,
                100,
                TraceEvent::Grant {
                    task: 1,
                    core: 0,
                    immediate: true,
                },
            ),
            entry(1, 200, TraceEvent::Yield { task: 1, core: 0 }),
            entry(
                2,
                300,
                TraceEvent::Grant {
                    task: 2,
                    core: 0,
                    immediate: false,
                },
            ),
            entry(
                3,
                400,
                TraceEvent::Grant {
                    task: 3,
                    core: 0,
                    immediate: false,
                },
            ),
            entry(
                4,
                450,
                TraceEvent::Grant {
                    task: 4,
                    core: 1,
                    immediate: true,
                },
            ),
            entry(5, 500, TraceEvent::Shutdown),
        ];
        let tl = build_timeline(meta2(), &entries, &[]);
        tl.validate().expect("invariants hold");
        assert_eq!(tl.grants, 4);
        assert_eq!(tl.spans.len(), 4);
        // Yield closed task 1 at 200; re-grant closed task 2 at 400; trace end closed
        // task 3 and task 4 at 500.
        let find = |task| tl.spans.iter().find(|s| s.task == task).unwrap();
        assert_eq!((find(1).start_ns, find(1).end_ns), (100, 200));
        assert_eq!((find(2).start_ns, find(2).end_ns), (300, 400));
        assert_eq!((find(3).start_ns, find(3).end_ns), (400, 500));
        assert_eq!((find(4).start_ns, find(4).end_ns), (450, 500));
    }

    #[test]
    fn fault_instants_land_on_the_occupants_core() {
        let entries = vec![
            entry(
                0,
                100,
                TraceEvent::Grant {
                    task: 7,
                    core: 1,
                    immediate: true,
                },
            ),
            entry(
                1,
                150,
                TraceEvent::FaultInjected {
                    site: FaultSite::WorkerStall,
                    task: Some(7),
                },
            ),
            entry(
                2,
                160,
                TraceEvent::FaultInjected {
                    site: FaultSite::ShutdownRace,
                    task: None,
                },
            ),
        ];
        let tl = build_timeline(meta2(), &entries, &[]);
        assert_eq!(tl.markers.len(), 2);
        assert_eq!(tl.markers[0].core, Some(1), "resolved via occupancy");
        assert!(tl.markers[0].name.contains("WorkerStall"));
        assert_eq!(tl.markers[1].core, None, "task-less fault: scheduler track");
    }

    #[test]
    fn ready_depth_counter_follows_enqueue_and_pop() {
        let enq = |step, at, task| {
            entry(
                step,
                at,
                TraceEvent::Enqueue {
                    process: 1,
                    task,
                    preferred: None,
                },
            )
        };
        let entries = vec![
            enq(0, 10, 1),
            enq(1, 20, 2),
            entry(
                2,
                30,
                TraceEvent::Pop {
                    core: 0,
                    tier: Some(PickTier::Aged),
                    task: 1,
                },
            ),
        ];
        let tl = build_timeline(meta2(), &entries, &[]);
        let depths: Vec<i64> = tl.counters.iter().map(|c| c.value).collect();
        assert_eq!(depths, vec![1, 2, 1]);
        assert_eq!(tl.markers.len(), 1, "aged pop is a valve-fire instant");
        assert_eq!(tl.markers[0].name, "valve_fire");
    }

    #[test]
    fn sampler_series_become_counter_tracks() {
        let samples = vec![StatsSample {
            at: Duration::from_nanos(5000),
            ready_tasks: 3,
            intake_depth: 1,
            busy_cores: 2,
            submits: 10,
            grants: 9,
        }];
        let tl = build_timeline(meta2(), &[], &samples);
        let tracks: Vec<&str> = tl.counters.iter().map(|c| c.track).collect();
        assert_eq!(
            tracks,
            vec![
                "sampled_ready_tasks",
                "sampled_intake_depth",
                "sampled_busy_cores"
            ]
        );
    }

    #[test]
    fn validate_rejects_span_grant_mismatch_and_overlap() {
        let entries = vec![entry(
            0,
            100,
            TraceEvent::Grant {
                task: 1,
                core: 0,
                immediate: true,
            },
        )];
        let mut tl = build_timeline(meta2(), &entries, &[]);
        tl.validate().unwrap();
        tl.grants = 2;
        assert!(tl.validate().unwrap_err().contains("span count"));
        tl.grants = 3;
        tl.spans.push(Span {
            core: 0,
            task: 9,
            start_ns: 0,
            end_ns: 150,
        });
        tl.spans.push(Span {
            core: 0,
            task: 10,
            start_ns: 140,
            end_ns: 160,
        });
        assert!(tl.validate().unwrap_err().contains("overlap"));
    }

    #[test]
    fn chrome_json_is_balanced_and_carries_tracks() {
        let entries = vec![
            entry(
                0,
                1000,
                TraceEvent::Grant {
                    task: 1,
                    core: 0,
                    immediate: true,
                },
            ),
            entry(1, 2500, TraceEvent::Yield { task: 1, core: 0 }),
        ];
        let tl = build_timeline(meta2(), &entries, &[]);
        let s = tl.render_chrome_json();
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("core 0 (node 0)"));
        assert!(s.contains("core 1 (node 1)"));
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"ts\": 1.000"));
        assert!(s.contains("\"dur\": 1.500"));
    }
}
