//! Minimal JSON emission shared by the benchmark binaries.
//!
//! The repo vendors no serde, so the `BENCH_*.json` perf-trajectory records are emitted
//! through this small ordered-object builder instead of each binary hand-rolling string
//! pushes (which is how `sched_stress` used to do it). Field order is insertion order, so
//! the records stay diffable run over run.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float rendered with a fixed number of decimals (keeps records diffable).
    Num {
        /// The value; non-finite values render as `null`.
        value: f64,
        /// Decimal places.
        decimals: usize,
    },
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// A nested object.
    Object(JsonObject),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<JsonObject> for JsonValue {
    fn from(v: JsonObject) -> Self {
        JsonValue::Object(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

impl JsonValue {
    /// A float with the given number of decimals.
    pub fn num(value: f64, decimals: usize) -> Self {
        JsonValue::Num { value, decimals }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Num { value, decimals } => {
                if value.is_finite() {
                    let _ = write!(out, "{value:.decimals$}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(obj) => obj.render_into(out, indent),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// An insertion-ordered JSON object builder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    entries: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Append a field (builder style).
    pub fn field(mut self, name: impl Into<String>, value: impl Into<JsonValue>) -> Self {
        self.entries.push((name.into(), value.into()));
        self
    }

    /// Append a fixed-decimals float field.
    pub fn num(self, name: impl Into<String>, value: f64, decimals: usize) -> Self {
        self.field(name, JsonValue::num(value, decimals))
    }

    /// Append a field that is `null` when the option is empty.
    pub fn opt(self, name: impl Into<String>, value: Option<impl Into<JsonValue>>) -> Self {
        match value {
            Some(v) => self.field(name, v),
            None => self.field(name, JsonValue::Null),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no fields.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        if self.entries.is_empty() {
            out.push_str("{}");
            return;
        }
        out.push_str("{\n");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            push_indent(out, indent + 1);
            JsonValue::Str(name.clone()).render_into(out, indent + 1);
            out.push_str(": ");
            value.render_into(out, indent + 1);
            if i + 1 < self.entries.len() {
                out.push(',');
            }
            out.push('\n');
        }
        push_indent(out, indent);
        out.push('}');
    }

    /// Render as a pretty-printed JSON document (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Write the document to `path` and print the conventional `wrote <path>` line.
    ///
    /// # Panics
    /// Panics when the file cannot be written — benchmark records are the product of the
    /// run, so losing one silently is worse than aborting.
    pub fn write_file(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_scalars() {
        let doc = JsonObject::new()
            .field("benchmark", "demo")
            .field("cores", 8usize)
            .num("rate", 1234.5678, 1)
            .opt("missing", None::<u64>)
            .opt("present", Some(3u64))
            .field("ok", true);
        let s = doc.render();
        let expect = "{\n  \"benchmark\": \"demo\",\n  \"cores\": 8,\n  \"rate\": 1234.6,\n  \
                      \"missing\": null,\n  \"present\": 3,\n  \"ok\": true\n}\n";
        assert_eq!(s, expect);
    }

    #[test]
    fn renders_nested_objects_and_arrays() {
        let doc = JsonObject::new().field(
            "procs",
            vec![
                JsonValue::from(JsonObject::new().field("name", "a").num("slowdown", 1.0, 2)),
                JsonValue::from(JsonObject::new().field("name", "b").num("slowdown", 2.5, 2)),
            ],
        );
        let s = doc.render();
        assert!(s.contains("\"procs\": [\n    {\n      \"name\": \"a\""));
        assert!(s.contains("\"slowdown\": 2.50"));
        assert!(s.ends_with("]\n}\n"));
        assert_eq!(JsonObject::new().render(), "{}\n");
        let empty_arr = JsonObject::new().field("xs", Vec::<JsonValue>::new());
        assert_eq!(empty_arr.render(), "{\n  \"xs\": []\n}\n");
    }

    #[test]
    fn escapes_strings_and_nonfinite() {
        let doc = JsonObject::new()
            .field("s", "a\"b\\c\nd")
            .num("nan", f64::NAN, 2);
        let s = doc.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"nan\": null"));
    }

    #[test]
    fn parses_as_json_by_eye_smoke() {
        // Minimal structural sanity: balanced braces/brackets in a nested doc.
        let doc = JsonObject::new()
            .field("a", JsonObject::new().field("b", vec![JsonValue::Int(1)]))
            .field("c", 2u64);
        let s = doc.render();
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }
}
