//! Shared helpers for the experiment harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see `DESIGN.md` for the
//! per-experiment index) and prints it as a text table/heatmap so the shape can be compared
//! directly with the published results. All binaries accept:
//!
//! * `--quick` (default): reduced problem sizes so the whole harness runs in minutes on a
//!   laptop;
//! * `--full`: the paper-scale parameters (56/112 simulated cores, full sweeps).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;
pub mod perfetto;
pub mod scenario_json;

/// Harness scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for quick runs (default).
    Quick,
    /// Paper-scale sweep.
    Full,
}

impl Scale {
    /// Parse the scale from process arguments (`--full` switches to the full sweep).
    ///
    /// Lenient: unknown flags are ignored. The figure/table binaries use
    /// [`cli::parse_or_exit`] instead, which rejects typos with usage text; this helper
    /// remains for embedding in argument-agnostic contexts (e.g. test harnesses, whose
    /// own flags must not be treated as errors).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// Minimal shared command-line parsing for the harness binaries.
///
/// Every binary declares the flags it accepts as a slice of [`cli::FlagSpec`] and calls
/// [`cli::parse_or_exit`]; unknown flags, missing values and stray positionals error out
/// with usage text instead of being silently ignored (which used to make
/// `fig3_matmul --ful` quietly run the quick sweep).
pub mod cli {
    use super::Scale;
    use std::fmt::Write as _;
    use std::str::FromStr;

    /// One accepted `--flag` (optionally taking a value).
    #[derive(Debug, Clone, Copy)]
    pub struct FlagSpec {
        /// Flag name including the leading dashes, e.g. `"--full"`.
        pub name: &'static str,
        /// `Some(placeholder)` if the flag takes a value (`--flag V` or `--flag=V`).
        pub value_name: Option<&'static str>,
        /// One-line description for the usage text.
        pub help: &'static str,
    }

    /// The two scale flags every figure/table binary accepts.
    pub const SCALE_FLAGS: &[FlagSpec] = &[
        FlagSpec {
            name: "--quick",
            value_name: None,
            help: "reduced sweep, minutes on a laptop (default)",
        },
        FlagSpec {
            name: "--full",
            value_name: None,
            help: "paper-scale parameters (56/112 simulated cores, full grids)",
        },
    ];

    /// Parsed flag occurrences.
    #[derive(Debug, Default)]
    pub struct ParsedArgs {
        values: Vec<(&'static str, Option<String>)>,
    }

    impl ParsedArgs {
        /// Whether `name` was passed.
        pub fn has(&self, name: &str) -> bool {
            self.values.iter().any(|(n, _)| *n == name)
        }

        /// Last value passed for `name`, if any.
        pub fn get(&self, name: &str) -> Option<&str> {
            self.values
                .iter()
                .rev()
                .find(|(n, _)| *n == name)
                .and_then(|(_, v)| v.as_deref())
        }

        /// Parse the value of `name`, falling back to `default` when absent.
        ///
        /// # Errors
        /// Returns an error string when the value does not parse as `T`.
        pub fn get_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String> {
            match self.get(name) {
                None => Ok(default),
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("invalid value `{v}` for `{name}`")),
            }
        }

        /// The sweep scale (`--full` selects [`Scale::Full`]).
        pub fn scale(&self) -> Scale {
            if self.has("--full") {
                Scale::Full
            } else {
                Scale::Quick
            }
        }
    }

    /// Render the usage text for a binary.
    pub fn usage(binary: &str, about: &str, specs: &[FlagSpec]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{about}");
        let _ = writeln!(out, "\nUsage: {binary} [OPTIONS]\n\nOptions:");
        for s in specs {
            let left = match s.value_name {
                Some(v) => format!("{} <{v}>", s.name),
                None => s.name.to_string(),
            };
            let _ = writeln!(out, "  {left:<24} {}", s.help);
        }
        let _ = writeln!(out, "  {:<24} print this help", "--help");
        out
    }

    /// Parse an argument list against the accepted flags.
    ///
    /// # Errors
    /// Returns a message for unknown flags, positional arguments, and flags missing their
    /// value. `--help` is reported as the special message `"help"` so callers can print
    /// usage and exit zero.
    pub fn try_parse<I>(specs: &[FlagSpec], args: I) -> Result<ParsedArgs, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Err("help".to_string());
            }
            let (name, inline) = match arg.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let spec = match specs.iter().find(|s| s.name == name) {
                Some(s) => s,
                None => return Err(format!("unknown argument `{arg}`")),
            };
            let value = match (spec.value_name, inline) {
                (None, None) => None,
                (None, Some(_)) => {
                    return Err(format!("flag `{name}` does not take a value"));
                }
                (Some(_), Some(v)) => Some(v),
                (Some(placeholder), None) => match it.next() {
                    Some(v) => Some(v),
                    None => {
                        return Err(format!("flag `{name}` expects a value <{placeholder}>"));
                    }
                },
            };
            parsed.values.push((spec.name, value));
        }
        Ok(parsed)
    }

    /// Parse `std::env::args()` (exiting with usage text on `--help` or any error).
    pub fn parse_or_exit(binary: &str, about: &str, specs: &[FlagSpec]) -> ParsedArgs {
        match try_parse(specs, std::env::args().skip(1)) {
            Ok(p) => p,
            Err(e) if e == "help" => {
                print!("{}", usage(binary, about, specs));
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{binary}: {e}\n");
                eprint!("{}", usage(binary, about, specs));
                std::process::exit(2);
            }
        }
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Print a machine-description line (Table 1 context for every experiment).
pub fn machine_line(machine: &usf_simsched::Machine) {
    println!(
        "simulated machine: {} cores / {} sockets, {:.0} GB/s memory bandwidth, quantum {}",
        machine.cores(),
        machine.sockets(),
        machine.memory_bw_gbps,
        machine.preemption_quantum
    );
}

/// Render a labelled table: one row per entry of `rows`, one column per entry of `cols`,
/// cell values provided by `value`. Values are printed with `width` characters.
pub fn print_table(
    row_header: &str,
    rows: &[String],
    cols: &[String],
    width: usize,
    mut value: impl FnMut(usize, usize) -> String,
) {
    print!("{row_header:>20} ");
    for c in cols {
        print!("{c:>width$} ");
    }
    println!();
    for (ri, r) in rows.iter().enumerate() {
        print!("{r:>20} ");
        for ci in 0..cols.len() {
            print!("{:>width$} ", value(ri, ci));
        }
        println!();
    }
}

/// Format a throughput in MFLOP/s with a compact width.
pub fn fmt_mflops(v: f64) -> String {
    if v <= 0.0 {
        "-".to_string()
    } else if v >= 10_000.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.1}", v)
    }
}

/// Format a speedup (`×` suffix), or `-` when the baseline is missing.
pub fn fmt_speedup(v: f64) -> String {
    if v <= 0.0 || !v.is_finite() {
        "-".to_string()
    } else {
        format!("{v:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mflops(0.0), "-");
        assert_eq!(fmt_mflops(123.456), "123.5");
        assert_eq!(fmt_mflops(20000.0), "20000");
        assert_eq!(fmt_speedup(2.0), "2.00x");
        assert_eq!(fmt_speedup(f64::NAN), "-");
    }

    #[test]
    fn scale_defaults_to_quick() {
        assert_eq!(Scale::from_args(), Scale::Quick);
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_accepts_known_flags_and_values() {
        const SPECS: &[cli::FlagSpec] = &[
            cli::FlagSpec {
                name: "--full",
                value_name: None,
                help: "",
            },
            cli::FlagSpec {
                name: "--producers",
                value_name: Some("N"),
                help: "",
            },
        ];
        let p = cli::try_parse(SPECS, strs(&["--full", "--producers", "8"])).unwrap();
        assert!(p.has("--full"));
        assert_eq!(p.get_or("--producers", 1usize).unwrap(), 8);
        assert_eq!(p.scale(), Scale::Full);
        let p = cli::try_parse(SPECS, strs(&["--producers=12"])).unwrap();
        assert_eq!(p.get_or("--producers", 1usize).unwrap(), 12);
        assert_eq!(p.scale(), Scale::Quick);
        assert_eq!(p.get_or("--missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn cli_rejects_unknown_flags_and_bad_values() {
        let err = cli::try_parse(cli::SCALE_FLAGS, strs(&["--ful"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        let err = cli::try_parse(cli::SCALE_FLAGS, strs(&["positional"])).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        let err = cli::try_parse(cli::SCALE_FLAGS, strs(&["--full=yes"])).unwrap_err();
        assert!(err.contains("does not take a value"), "{err}");
        const SPECS: &[cli::FlagSpec] = &[cli::FlagSpec {
            name: "--n",
            value_name: Some("N"),
            help: "",
        }];
        let err = cli::try_parse(SPECS, strs(&["--n"])).unwrap_err();
        assert!(err.contains("expects a value"), "{err}");
        let p = cli::try_parse(SPECS, strs(&["--n", "abc"])).unwrap();
        assert!(p.get_or("--n", 0usize).is_err());
        assert_eq!(
            cli::try_parse(SPECS, strs(&["--help"])).unwrap_err(),
            "help"
        );
    }

    #[test]
    fn cli_usage_lists_flags() {
        let u = cli::usage("fig3_matmul", "Regenerates Figure 3.", cli::SCALE_FLAGS);
        assert!(u.contains("--quick"));
        assert!(u.contains("--full"));
        assert!(u.contains("--help"));
        assert!(u.contains("Usage: fig3_matmul"));
    }

    #[test]
    fn print_table_runs() {
        print_table(
            "rows",
            &["a".to_string(), "b".to_string()],
            &["x".to_string()],
            8,
            |r, c| format!("{r}{c}"),
        );
        header("test");
        machine_line(&usf_simsched::Machine::small(2));
    }
}
