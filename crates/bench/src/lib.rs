//! Shared helpers for the experiment harness binaries.
//!
//! Each binary regenerates one table or figure of the paper (see `DESIGN.md` for the
//! per-experiment index) and prints it as a text table/heatmap so the shape can be compared
//! directly with the published results. All binaries accept:
//!
//! * `--quick` (default): reduced problem sizes so the whole harness runs in minutes on a
//!   laptop;
//! * `--full`: the paper-scale parameters (56/112 simulated cores, full sweeps).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Harness scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sweep for quick runs (default).
    Quick,
    /// Paper-scale sweep.
    Full,
}

impl Scale {
    /// Parse the scale from process arguments (`--full` switches to the full sweep).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Print a machine-description line (Table 1 context for every experiment).
pub fn machine_line(machine: &usf_simsched::Machine) {
    println!(
        "simulated machine: {} cores / {} sockets, {:.0} GB/s memory bandwidth, quantum {}",
        machine.cores, machine.sockets, machine.memory_bw_gbps, machine.preemption_quantum
    );
}

/// Render a labelled table: one row per entry of `rows`, one column per entry of `cols`,
/// cell values provided by `value`. Values are printed with `width` characters.
pub fn print_table(
    row_header: &str,
    rows: &[String],
    cols: &[String],
    width: usize,
    mut value: impl FnMut(usize, usize) -> String,
) {
    print!("{row_header:>20} ");
    for c in cols {
        print!("{c:>width$} ");
    }
    println!();
    for (ri, r) in rows.iter().enumerate() {
        print!("{r:>20} ");
        for ci in 0..cols.len() {
            print!("{:>width$} ", value(ri, ci));
        }
        println!();
    }
}

/// Format a throughput in MFLOP/s with a compact width.
pub fn fmt_mflops(v: f64) -> String {
    if v <= 0.0 {
        "-".to_string()
    } else if v >= 10_000.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.1}", v)
    }
}

/// Format a speedup (`×` suffix), or `-` when the baseline is missing.
pub fn fmt_speedup(v: f64) -> String {
    if v <= 0.0 || !v.is_finite() {
        "-".to_string()
    } else {
        format!("{v:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_mflops(0.0), "-");
        assert_eq!(fmt_mflops(123.456), "123.5");
        assert_eq!(fmt_mflops(20000.0), "20000");
        assert_eq!(fmt_speedup(2.0), "2.00x");
        assert_eq!(fmt_speedup(f64::NAN), "-");
    }

    #[test]
    fn scale_defaults_to_quick() {
        assert_eq!(Scale::from_args(), Scale::Quick);
    }

    #[test]
    fn print_table_runs() {
        print_table(
            "rows",
            &["a".to_string(), "b".to_string()],
            &["x".to_string()],
            8,
            |r, c| format!("{r}{c}"),
        );
        header("test");
        machine_line(&usf_simsched::Machine::small(2));
    }
}
