//! Microbenchmarks of the scheduler substrate (supporting §4): cost of the core scheduling
//! operations and of thread creation with and without the thread cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use usf_core::prelude::*;
use usf_nosv::{NosvConfig, NosvInstance};

/// Cost of a submit → pause round trip between two attached workers (a worker swap).
fn bench_pause_submit(c: &mut Criterion) {
    let nosv = NosvInstance::new(NosvConfig::with_cores(2));
    let pid = nosv.register_process("bench");
    c.bench_function("nosv/yield_noop", |b| {
        let handle = nosv.attach(pid, Some("bench-yield"));
        b.iter(|| {
            // With nothing else ready the yield keeps the core: measures the scheduling-point
            // bookkeeping cost itself.
            criterion::black_box(handle.yield_now());
        });
        handle.detach();
    });
}

/// Thread creation cost: raw OS spawn vs. USF spawn (cache cold) vs. USF spawn (cache warm).
fn bench_thread_creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thread_creation");
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);

    group.bench_function("std_spawn_join", |b| {
        b.iter(|| {
            std::thread::spawn(|| criterion::black_box(1 + 1))
                .join()
                .unwrap();
        })
    });

    let usf = Usf::builder().cores(2).cache_capacity(64).build();
    let p = usf.process("bench");
    group.bench_function("usf_spawn_join_cached", |b| {
        // Warm the cache first.
        p.spawn(|| ()).join().unwrap();
        b.iter(|| {
            p.spawn(|| criterion::black_box(1 + 1)).join().unwrap();
        })
    });
    group.finish();
    usf.shutdown();
}

/// Scheduler throughput as oversubscription grows: N threads doing tiny critical sections on
/// a 2-virtual-core instance.
fn bench_oversubscribed_spawn_wave(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn_wave");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for threads in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("usf", threads), &threads, |b, &n| {
            let usf = Usf::builder().cores(2).cache_capacity(64).build();
            let p = usf.process("wave");
            b.iter(|| {
                let handles: Vec<_> = (0..n)
                    .map(|i| p.spawn(move || criterion::black_box(i * 2)))
                    .collect();
                let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                criterion::black_box(sum)
            });
            usf.shutdown();
        });
        group.bench_with_input(BenchmarkId::new("os", threads), &threads, |b, &n| {
            b.iter(|| {
                let handles: Vec<_> = (0..n)
                    .map(|i| std::thread::spawn(move || criterion::black_box(i * 2)))
                    .collect();
                let sum: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                criterion::black_box(sum)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pause_submit,
    bench_thread_creation,
    bench_oversubscribed_spawn_wave
);
criterion_main!(benches);
