//! Microbenchmarks of the unified SCHED_COOP ready-queue (`usf_nosv::readyq`): the cost of
//! `pop_for` across its tiers (affinity hit, NUMA-tier steal, aged-valve service) at the
//! paper's 112-core scale — where the seed's O(cores) oldest-head scans hurt — plus
//! 224/448-core points tracking the per-node-shard scaling work, and a flat-vs-sharded
//! comparison of the affinity hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use usf_nosv::readyq::{CoreMap, ProcQueues, ReadyQueues, ShardedProcQueues};
use usf_nosv::Topology;

const AGING: u64 = 20_000_000; // 20 ms in nanoseconds, the paper's quantum

fn map(cores: usize) -> Arc<CoreMap> {
    Arc::new(CoreMap::from_view(&Topology::new(cores, 2)))
}

/// Steady-state affinity hit: pop the core's own head and push a replacement. This is the
/// hot path of a saturated dispatch loop.
fn bench_affinity_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("readyq_pop_for/affinity_hit");
    for &cores in &[8usize, 112, 224, 448] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let mut q: ProcQueues<u64, u64> = ProcQueues::new(map(cores));
            // Populate every per-core queue plus some unbound backlog.
            let mut now = 0u64;
            for i in 0..(cores as u64 * 8) {
                q.push(i, Some((i as usize) % cores), now);
                now += 1;
            }
            for i in 0..64 {
                q.push(u64::MAX - i, None, now);
            }
            let mut core = 0usize;
            b.iter(|| {
                core = (core + 1) % cores;
                now += 100;
                let item = q.pop_for(core, now, AGING).expect("queues stay populated");
                q.push(item, Some(core), now);
                criterion::black_box(item)
            });
        });
    }
    group.finish();
}

/// NUMA-tier steal: the popping core's own queue is kept empty, so every pop consults the
/// node heap (the seed scanned all same-node heads linearly here).
fn bench_node_steal(c: &mut Criterion) {
    let mut group = c.benchmark_group("readyq_pop_for/node_steal");
    for &cores in &[8usize, 112, 224, 448] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let mut q: ProcQueues<u64, u64> = ProcQueues::new(map(cores));
            let mut now = 0u64;
            // Core 0 stays empty; every other core holds a backlog.
            for i in 0..(cores as u64 * 8) {
                let target = 1 + (i as usize) % (cores - 1);
                q.push(i, Some(target), now);
                now += 1;
            }
            b.iter(|| {
                now += 100;
                let item = q.pop_for(0, now, AGING).expect("queues stay populated");
                // Re-push to the queue it came from conceptually; any non-zero core works
                // for steady state.
                q.push(item, Some(1 + (item as usize) % (cores - 1)), now);
                criterion::black_box(item)
            });
        });
    }
    group.finish();
}

/// Aged-valve service: every entry is older than the window, so each pop within a new
/// window serves the global oldest (the seed's O(cores) full scan, now a heap peek).
fn bench_aged_valve(c: &mut Criterion) {
    let mut group = c.benchmark_group("readyq_pop_for/aged_valve");
    for &cores in &[8usize, 112, 224, 448] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let mut q: ProcQueues<u64, u64> = ProcQueues::new(map(cores));
            let mut seq = 0u64;
            for i in 0..(cores as u64 * 8) {
                q.push(seq, Some((i as usize) % cores), 0);
                seq += 1;
            }
            // Jump far past the window and advance a full window per pop so the valve
            // fires every iteration.
            let mut now = 1 << 40;
            b.iter(|| {
                now += AGING;
                let item = q.pop_for(0, now, AGING).expect("queues stay populated");
                q.push(seq, Some((seq as usize) % cores), 0);
                seq += 1;
                criterion::black_box(item)
            });
        });
    }
    group.finish();
}

/// The sharded backing's steady-state affinity hit: same workload as
/// `bench_affinity_hit`, but through `ShardedProcQueues` — one shared-lock touch for the
/// seq stamp plus one shard-lock touch, both uncontended here. Costs must stay within a
/// small constant of the flat queues at every sweep point, or the shard split is paying
/// for scalability it does not deliver.
fn bench_affinity_hit_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("readyq_pop_for/affinity_hit_sharded");
    for &cores in &[8usize, 112, 224, 448] {
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, &cores| {
            let mut q: ShardedProcQueues<u64, u64> = ShardedProcQueues::new(map(cores));
            let mut now = 0u64;
            for i in 0..(cores as u64 * 8) {
                q.push(i, Some((i as usize) % cores), now);
                now += 1;
            }
            for i in 0..64 {
                q.push(u64::MAX - i, None, now);
            }
            let mut core = 0usize;
            b.iter(|| {
                core = (core + 1) % cores;
                now += 100;
                let (item, _) = q
                    .pop_for_tiered(core, now, AGING)
                    .expect("queues stay populated");
                q.push(item, Some(core), now);
                criterion::black_box(item)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_affinity_hit,
    bench_node_steal,
    bench_aged_valve,
    bench_affinity_hit_sharded
);
criterion_main!(benches);
