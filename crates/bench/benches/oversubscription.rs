//! Real-execution oversubscription benchmark (a laptop-scale slice of §5.3): the nested
//! matmul under the plain OS scheduler vs. USF's SCHED_COOP, and an ablation of the inner
//! runtime's barrier behaviour.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use usf_blas::{BarrierKind, BlasThreading};
use usf_core::prelude::*;
use usf_workloads::matmul::{run_matmul, MatmulConfig};

fn matmul_cfg(exec: ExecMode, inner_threads: usize, barrier: BarrierKind) -> MatmulConfig {
    MatmulConfig {
        matrix_size: 192,
        task_size: 48,
        inner_threads,
        outer_workers: 4,
        inner_threading: BlasThreading::OpenMpLike,
        barrier,
        exec,
        iterations: 1,
    }
}

/// Baseline OS scheduling vs SCHED_COOP for the oversubscribed nested matmul.
fn bench_nested_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_matmul_oversubscribed");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for inner in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("baseline-os", inner),
            &inner,
            |b, &inner| {
                b.iter(|| {
                    let r = run_matmul(&matmul_cfg(
                        ExecMode::Os,
                        inner,
                        BarrierKind::BusyYield { yield_every: 64 },
                    ));
                    criterion::black_box(r.mflops)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sched_coop", inner),
            &inner,
            |b, &inner| {
                b.iter(|| {
                    let usf = Usf::builder()
                        .cores(
                            std::thread::available_parallelism()
                                .map(|n| n.get())
                                .unwrap_or(2),
                        )
                        .build();
                    let p = usf.process("matmul");
                    let r = run_matmul(&matmul_cfg(
                        ExecMode::Usf(p),
                        inner,
                        BarrierKind::BusyYield { yield_every: 64 },
                    ));
                    usf.shutdown();
                    criterion::black_box(r.mflops)
                })
            },
        );
    }
    group.finish();
}

/// Ablation: the three barrier behaviours of the inner runtime under the OS scheduler
/// (the §5.2 interference discussion).
fn bench_barrier_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_barrier_ablation");
    group.measurement_time(Duration::from_secs(5));
    group.sample_size(10);
    for (label, barrier) in [
        ("blocking", BarrierKind::Blocking),
        ("busy_yield", BarrierKind::BusyYield { yield_every: 64 }),
        ("busy_spin", BarrierKind::BusySpin),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let r = run_matmul(&matmul_cfg(ExecMode::Os, 4, barrier));
                criterion::black_box(r.mflops)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested_matmul, bench_barrier_ablation);
criterion_main!(benches);
