//! Microbenchmarks of the USF blocking primitives against their `std` equivalents
//! (supporting §4.3.4): uncontended and contended mutexes, condition-variable signalling and
//! barrier rounds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench_mutex(c: &mut Criterion) {
    let mut group = c.benchmark_group("mutex_uncontended");
    group.bench_function("usf", |b| {
        let m = usf_core::sync::Mutex::new(0u64);
        b.iter(|| {
            *m.lock() += 1;
        })
    });
    group.bench_function("std", |b| {
        let m = std::sync::Mutex::new(0u64);
        b.iter(|| {
            *m.lock().unwrap() += 1;
        })
    });
    group.finish();

    let mut group = c.benchmark_group("mutex_contended_4_threads");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    group.bench_function("usf", |b| {
        b.iter(|| {
            let m = Arc::new(usf_core::sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            *m.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total = *m.lock();
            criterion::black_box(total)
        })
    });
    group.bench_function("std", |b| {
        b.iter(|| {
            let m = Arc::new(std::sync::Mutex::new(0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            *m.lock().unwrap() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let total = *m.lock().unwrap();
            criterion::black_box(total)
        })
    });
    group.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_2_threads_100_rounds");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    group.bench_function("usf_blocking", |b| {
        b.iter(|| {
            let bar = Arc::new(usf_core::sync::Barrier::new(2));
            let b2 = Arc::clone(&bar);
            let t = std::thread::spawn(move || {
                for _ in 0..100 {
                    b2.wait();
                }
            });
            for _ in 0..100 {
                bar.wait();
            }
            t.join().unwrap();
        })
    });
    group.bench_function("usf_busy_yield", |b| {
        b.iter(|| {
            let bar = Arc::new(usf_core::sync::BusyBarrier::new(2, Some(64)));
            let b2 = Arc::clone(&bar);
            let t = std::thread::spawn(move || {
                for _ in 0..100 {
                    b2.wait();
                }
            });
            for _ in 0..100 {
                bar.wait();
            }
            t.join().unwrap();
        })
    });
    group.bench_function("std", |b| {
        b.iter(|| {
            let bar = Arc::new(std::sync::Barrier::new(2));
            let b2 = Arc::clone(&bar);
            let t = std::thread::spawn(move || {
                for _ in 0..100 {
                    b2.wait();
                }
            });
            for _ in 0..100 {
                bar.wait();
            }
            t.join().unwrap();
        })
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_spsc_1000_msgs");
    group.measurement_time(Duration::from_secs(4));
    group.sample_size(10);
    group.bench_function("usf_bounded_64", |b| {
        b.iter(|| {
            let (tx, rx) = usf_core::sync::channel::<u64>(64);
            let t = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            t.join().unwrap();
            criterion::black_box(sum)
        })
    });
    group.bench_function("std_mpsc", |b| {
        b.iter(|| {
            let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(64);
            let t = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            t.join().unwrap();
            criterion::black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mutex, bench_barrier, bench_channel);
criterion_main!(benches);
