//! Worker wait policies (the `OMP_WAIT_POLICY` knob, §5.2).
//!
//! When a runtime worker has no work it can either spin (low wake-up latency, but it burns a
//! core — disastrous when oversubscribed), block immediately (recommended by the paper under
//! oversubscription), or spin briefly and then block (the default hybrid of most OpenMP
//! implementations).

use std::time::Duration;

/// How idle runtime workers wait for work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WaitPolicy {
    /// Block immediately on the runtime's condition variable ("passive"). This is the
    /// setting the paper uses for every oversubscribed experiment.
    #[default]
    Passive,
    /// Busy-wait, optionally yielding every `yield_every` spin iterations ("active").
    Active {
        /// Spin iterations between yields; `None` never yields (the pathological case).
        yield_every: Option<u32>,
    },
    /// Busy-wait for `spin` and then fall back to blocking ("hybrid", the usual default).
    Hybrid {
        /// How long to spin before blocking.
        spin: Duration,
        /// Spin iterations between yields while in the active phase.
        yield_every: Option<u32>,
    },
}

impl WaitPolicy {
    /// The paper's recommended policy for oversubscribed runs.
    pub fn passive() -> Self {
        WaitPolicy::Passive
    }

    /// An active policy that yields every 64 iterations (a busy-wait barrier "with the fix").
    pub fn active_yielding() -> Self {
        WaitPolicy::Active {
            yield_every: Some(64),
        }
    }

    /// An active policy that never yields (the "Original" pathological configuration).
    pub fn active_spinning() -> Self {
        WaitPolicy::Active { yield_every: None }
    }

    /// The common hybrid default: spin ~100 µs, then block.
    pub fn hybrid_default() -> Self {
        WaitPolicy::Hybrid {
            spin: Duration::from_micros(100),
            yield_every: Some(64),
        }
    }

    /// Short label for benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            WaitPolicy::Passive => "passive",
            WaitPolicy::Active {
                yield_every: Some(_),
            } => "active+yield",
            WaitPolicy::Active { yield_every: None } => "active",
            WaitPolicy::Hybrid { .. } => "hybrid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let labels = [
            WaitPolicy::passive().label(),
            WaitPolicy::active_yielding().label(),
            WaitPolicy::active_spinning().label(),
            WaitPolicy::hybrid_default().label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn default_is_passive() {
        assert_eq!(WaitPolicy::default(), WaitPolicy::Passive);
    }
}
