//! OmpSs-like task runtime with data dependencies.
//!
//! This is the *outer* runtime of the paper's nested workloads (Listing 2): the application
//! submits tasks annotated with `in`/`inout` data accesses; the runtime builds the
//! dependency graph, keeps a ready queue, and a team of workers executes ready tasks;
//! `taskwait` blocks until all previously submitted tasks have finished. Workers are created
//! through [`usf_core::ExecMode`], so the whole runtime runs either on plain OS threads
//! (baseline) or as cooperative USF workers (SCHED_COOP).

mod deps;
mod runtime;

pub use deps::{DataKey, DepGraphStats, TaskDeps};
pub use runtime::{TaskRuntime, TaskRuntimeConfig};
