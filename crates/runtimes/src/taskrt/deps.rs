//! Data-dependency tracking (the OmpSs-2 `in`/`inout` model used in Listing 2).
//!
//! Every task declares the data it reads (`in`) and the data it reads **and** writes
//! (`inout`/`out`). The registry serializes writers on the same datum, lets readers of the
//! same version run concurrently, and makes later writers wait for all earlier readers —
//! i.e. the usual read-after-write, write-after-read and write-after-write edges.

use std::collections::HashMap;

/// Key identifying a datum in the dependency domain.
///
/// The paper's pragmas use memory addresses of matrix blocks; [`DataKey::of`] derives a key
/// from a reference's address the same way, and [`DataKey::index2`] builds keys from logical
/// block coordinates when no stable address exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataKey(pub u64);

impl DataKey {
    /// Key derived from the address of `value` (stable while `value` is not moved).
    pub fn of<T: ?Sized>(value: &T) -> DataKey {
        DataKey(value as *const T as *const () as usize as u64)
    }

    /// Key for a logical 2-D block coordinate (e.g. a tile of a blocked matrix).
    pub fn index2(matrix: u64, i: usize, j: usize) -> DataKey {
        // Interleave a matrix tag with the coordinates; collisions across different matrices
        // are avoided by the caller choosing distinct tags.
        DataKey((matrix << 48) ^ ((i as u64) << 24) ^ (j as u64))
    }
}

/// The data accesses declared by one task.
#[derive(Debug, Clone, Default)]
pub struct TaskDeps {
    /// Data read by the task.
    pub ins: Vec<DataKey>,
    /// Data read and written by the task.
    pub inouts: Vec<DataKey>,
}

impl TaskDeps {
    /// No dependencies (an independent task).
    pub fn none() -> Self {
        TaskDeps::default()
    }

    /// Add a read access.
    pub fn input(mut self, key: DataKey) -> Self {
        self.ins.push(key);
        self
    }

    /// Add a read-write access.
    pub fn inout(mut self, key: DataKey) -> Self {
        self.inouts.push(key);
        self
    }

    /// Add several read accesses.
    pub fn inputs(mut self, keys: impl IntoIterator<Item = DataKey>) -> Self {
        self.ins.extend(keys);
        self
    }

    /// Add several read-write accesses.
    pub fn inouts_iter(mut self, keys: impl IntoIterator<Item = DataKey>) -> Self {
        self.inouts.extend(keys);
        self
    }

    /// Whether the task declares no accesses at all.
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.inouts.is_empty()
    }
}

/// Internal id of a task in the dependency graph.
pub(crate) type DepTaskId = u64;

/// Per-datum version state.
#[derive(Debug, Default)]
struct DatumState {
    /// The last task that wrote this datum (if still live).
    last_writer: Option<DepTaskId>,
    /// Tasks that read the current version and have not finished yet.
    readers: Vec<DepTaskId>,
}

/// Per-task node.
#[derive(Debug, Default)]
struct TaskNode {
    /// Number of unfinished predecessors.
    preds: usize,
    /// Tasks that depend on this one.
    succs: Vec<DepTaskId>,
    /// Whether the task has finished (kept until the datum state forgets it).
    finished: bool,
}

/// Aggregate statistics of the dependency graph (diagnostics / tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepGraphStats {
    /// Tasks registered so far.
    pub tasks_registered: u64,
    /// Dependency edges created so far.
    pub edges_created: u64,
    /// Tasks that were immediately ready at registration.
    pub ready_at_registration: u64,
}

/// The dependency registry. All methods are called with the runtime's lock held.
#[derive(Debug, Default)]
pub(crate) struct DepRegistry {
    data: HashMap<DataKey, DatumState>,
    tasks: HashMap<DepTaskId, TaskNode>,
    stats: DepGraphStats,
}

impl DepRegistry {
    pub(crate) fn new() -> Self {
        DepRegistry::default()
    }

    pub(crate) fn stats(&self) -> DepGraphStats {
        self.stats
    }

    /// Register a task with its declared accesses. Returns `true` if the task is immediately
    /// ready (no unfinished predecessors).
    pub(crate) fn register(&mut self, id: DepTaskId, deps: &TaskDeps) -> bool {
        self.stats.tasks_registered += 1;
        self.tasks.entry(id).or_default();
        let mut preds: Vec<DepTaskId> = Vec::new();

        // Read accesses depend on the last writer of the datum.
        for key in &deps.ins {
            let datum = self.data.entry(*key).or_default();
            if let Some(w) = datum.last_writer {
                preds.push(w);
            }
            datum.readers.push(id);
        }
        // Read-write accesses depend on the last writer *and* on all current readers, and
        // become the new last writer.
        for key in &deps.inouts {
            let datum = self.data.entry(*key).or_default();
            if let Some(w) = datum.last_writer {
                preds.push(w);
            }
            preds.extend(datum.readers.iter().copied());
            datum.readers.clear();
            datum.last_writer = Some(id);
        }

        // Deduplicate and drop already-finished predecessors and self-references.
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|p| *p != id);
        let mut live_preds = 0;
        for p in preds {
            let finished = self.tasks.get(&p).map(|n| n.finished).unwrap_or(true);
            if finished {
                continue;
            }
            self.tasks
                .get_mut(&p)
                .expect("live predecessor must exist")
                .succs
                .push(id);
            live_preds += 1;
            self.stats.edges_created += 1;
        }
        let node = self.tasks.get_mut(&id).expect("node just inserted");
        node.preds = live_preds;
        if live_preds == 0 {
            self.stats.ready_at_registration += 1;
            true
        } else {
            false
        }
    }

    /// Mark a task finished; returns the tasks that became ready.
    pub(crate) fn complete(&mut self, id: DepTaskId) -> Vec<DepTaskId> {
        let succs = {
            let node = match self.tasks.get_mut(&id) {
                Some(n) => n,
                None => return Vec::new(),
            };
            node.finished = true;
            std::mem::take(&mut node.succs)
        };
        let mut ready = Vec::new();
        for s in succs {
            if let Some(node) = self.tasks.get_mut(&s) {
                node.preds -= 1;
                if node.preds == 0 {
                    ready.push(s);
                }
            }
        }
        // Clean up datum bookkeeping pointing at the finished task so the maps do not grow
        // without bound in long runs.
        self.data.retain(|_, d| {
            d.readers.retain(|r| *r != id);
            if d.last_writer == Some(id) {
                d.last_writer = None;
            }
            d.last_writer.is_some() || !d.readers.is_empty()
        });
        self.tasks.remove(&id);
        ready
    }

    /// Number of live (registered, unfinished) tasks.
    pub(crate) fn live_tasks(&self) -> usize {
        self.tasks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(k: u64) -> DataKey {
        DataKey(k)
    }

    #[test]
    fn independent_tasks_are_ready_immediately() {
        let mut reg = DepRegistry::new();
        assert!(reg.register(1, &TaskDeps::none()));
        assert!(reg.register(2, &TaskDeps::none().input(key(1))));
        assert!(reg.register(3, &TaskDeps::none().inout(key(2))));
        assert_eq!(reg.stats().ready_at_registration, 3);
    }

    #[test]
    fn write_after_write_serializes() {
        let mut reg = DepRegistry::new();
        assert!(reg.register(1, &TaskDeps::none().inout(key(7))));
        assert!(!reg.register(2, &TaskDeps::none().inout(key(7))));
        assert!(!reg.register(3, &TaskDeps::none().inout(key(7))));
        // Completing 1 readies 2 but not 3.
        assert_eq!(reg.complete(1), vec![2]);
        assert_eq!(reg.complete(2), vec![3]);
        assert_eq!(reg.complete(3), Vec::<DepTaskId>::new());
        assert_eq!(reg.live_tasks(), 0);
    }

    #[test]
    fn readers_run_concurrently_then_block_writer() {
        let mut reg = DepRegistry::new();
        assert!(reg.register(1, &TaskDeps::none().inout(key(1)))); // writer
        assert!(!reg.register(2, &TaskDeps::none().input(key(1)))); // reader
        assert!(!reg.register(3, &TaskDeps::none().input(key(1)))); // reader
        assert!(!reg.register(4, &TaskDeps::none().inout(key(1)))); // next writer

        // Finishing the writer readies both readers but not the next writer.
        let mut ready = reg.complete(1);
        ready.sort_unstable();
        assert_eq!(ready, vec![2, 3]);
        assert_eq!(reg.complete(2), Vec::<DepTaskId>::new());
        assert_eq!(reg.complete(3), vec![4]);
    }

    #[test]
    fn read_after_write_on_different_data_is_independent() {
        let mut reg = DepRegistry::new();
        assert!(reg.register(1, &TaskDeps::none().inout(key(1))));
        assert!(reg.register(2, &TaskDeps::none().input(key(2))));
    }

    #[test]
    fn gemm_like_pattern() {
        // C[i][j] inout, A[i][k] in, B[k][j] in — the Listing 2 pattern: tasks writing the
        // same C block serialize; tasks writing different C blocks are independent.
        let mut reg = DepRegistry::new();
        let c00 = key(100);
        let c01 = key(101);
        let a = key(200);
        let b = key(300);
        assert!(reg.register(1, &TaskDeps::none().inout(c00).input(a).input(b)));
        assert!(reg.register(2, &TaskDeps::none().inout(c01).input(a).input(b)));
        // Second update of C[0][0] must wait for task 1.
        assert!(!reg.register(3, &TaskDeps::none().inout(c00).input(a).input(b)));
        assert_eq!(reg.complete(1), vec![3]);
    }

    #[test]
    fn duplicate_deps_counted_once() {
        let mut reg = DepRegistry::new();
        assert!(reg.register(1, &TaskDeps::none().inout(key(5))));
        // Task 2 reads and writes the same datum twice; it must still need only task 1.
        let deps = TaskDeps::none().input(key(5)).inout(key(5)).inout(key(5));
        assert!(!reg.register(2, &deps));
        assert_eq!(reg.complete(1), vec![2]);
        assert_eq!(reg.stats().edges_created, 1);
    }

    #[test]
    fn data_key_helpers() {
        let x = 5u64;
        let y = 6u64;
        assert_ne!(DataKey::of(&x), DataKey::of(&y));
        assert_eq!(DataKey::of(&x), DataKey::of(&x));
        assert_ne!(DataKey::index2(0, 1, 2), DataKey::index2(0, 2, 1));
        assert_ne!(DataKey::index2(0, 1, 2), DataKey::index2(1, 1, 2));
    }

    #[test]
    fn completing_unknown_task_is_harmless() {
        let mut reg = DepRegistry::new();
        assert!(reg.complete(99).is_empty());
    }
}
