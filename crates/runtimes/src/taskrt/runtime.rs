//! The task runtime: ready queue, worker team, submission and taskwait.

use super::deps::{DepRegistry, DepTaskId, TaskDeps};
use crate::waitpolicy::WaitPolicy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use usf_core::exec::{ExecJoinHandle, ExecMode};
use usf_core::sync::{unbounded, Mutex, Receiver, Sender, WaitGroup};

/// A unit of work submitted to the runtime.
type TaskFn = Box<dyn FnOnce() + Send + 'static>;

/// Items flowing through the ready queue.
enum WorkItem {
    /// Run this ready task.
    Run(DepTaskId, TaskFn),
    /// Worker shutdown sentinel.
    Stop,
}

/// Configuration of a [`TaskRuntime`].
#[derive(Clone, Debug)]
pub struct TaskRuntimeConfig {
    /// Number of worker threads executing ready tasks.
    pub num_workers: usize,
    /// Thread backend (plain OS threads or cooperative USF threads).
    pub exec: ExecMode,
    /// Idle-worker wait policy. The ready queue blocks cooperatively in either case; this
    /// knob exists for parity with the fork-join runtime and is currently advisory.
    pub wait_policy: WaitPolicy,
    /// Worker name prefix.
    pub name: String,
}

impl TaskRuntimeConfig {
    /// `num_workers` workers on the given backend, passive wait policy.
    pub fn new(num_workers: usize, exec: ExecMode) -> Self {
        TaskRuntimeConfig {
            num_workers,
            exec,
            wait_policy: WaitPolicy::Passive,
            name: "taskrt".to_string(),
        }
    }

    /// Set the worker-name prefix.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Aggregate runtime statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskRuntimeStats {
    /// Tasks submitted.
    pub submitted: u64,
    /// Tasks executed to completion.
    pub executed: u64,
    /// Task bodies that panicked (caught; their successors were still released).
    pub panicked: u64,
    /// Dependency edges created.
    pub edges: u64,
    /// Tasks currently registered and unfinished.
    pub live: u64,
}

struct RtState {
    deps: DepRegistry,
    /// Closures of tasks that are registered but not yet ready.
    waiting_jobs: HashMap<DepTaskId, TaskFn>,
    next_id: DepTaskId,
}

struct RtShared {
    state: Mutex<RtState>,
    ready_tx: Sender<WorkItem>,
    /// Unfinished tasks (for `taskwait`).
    pending: WaitGroup,
    submitted: AtomicU64,
    executed: AtomicU64,
    /// Task bodies that panicked (caught; the worker and the dependency graph survive).
    panicked: AtomicU64,
    /// Message of the first caught panic, for [`TaskRuntime::taskwait_result`].
    first_panic: Mutex<Option<String>>,
    shutdown: AtomicBool,
}

/// An OmpSs-like task runtime. See the module documentation.
pub struct TaskRuntime {
    shared: Arc<RtShared>,
    workers: Vec<ExecJoinHandle<()>>,
    config: TaskRuntimeConfig,
}

impl TaskRuntime {
    /// Create a runtime and spawn its workers.
    pub fn new(config: TaskRuntimeConfig) -> Self {
        let (ready_tx, ready_rx) = unbounded::<WorkItem>();
        let shared = Arc::new(RtShared {
            state: Mutex::new(RtState {
                deps: DepRegistry::new(),
                waiting_jobs: HashMap::new(),
                next_id: 1,
            }),
            ready_tx,
            pending: WaitGroup::new(),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            first_panic: Mutex::new(None),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::new();
        for i in 0..config.num_workers.max(1) {
            let shared = Arc::clone(&shared);
            let rx = ready_rx.clone();
            let name = format!("{}-{i}", config.name);
            workers.push(
                config
                    .exec
                    .spawn_named(name, move || worker_loop(shared, rx)),
            );
        }
        TaskRuntime {
            shared,
            workers,
            config,
        }
    }

    /// Convenience constructor.
    pub fn with_workers(num_workers: usize, exec: ExecMode) -> Self {
        TaskRuntime::new(TaskRuntimeConfig::new(num_workers, exec))
    }

    /// The runtime configuration.
    pub fn config(&self) -> &TaskRuntimeConfig {
        &self.config
    }

    /// Submit a task with data dependencies (the `#pragma oss task in(..) inout(..)` analog).
    pub fn submit<F>(&self, deps: TaskDeps, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        assert!(
            !self.shared.shutdown.load(Ordering::Acquire),
            "submit on a TaskRuntime that has been shut down"
        );
        self.shared.pending.add(1);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let job: TaskFn = Box::new(f);
        let ready = {
            let mut st = self.shared.state.lock();
            let id = st.next_id;
            st.next_id += 1;
            if st.deps.register(id, &deps) {
                Some((id, job))
            } else {
                st.waiting_jobs.insert(id, job);
                None
            }
        };
        if let Some((id, job)) = ready {
            if self.shared.ready_tx.send(WorkItem::Run(id, job)).is_err() {
                unreachable!("ready queue must outlive the runtime");
            }
        }
    }

    /// Submit an independent task (no dependencies).
    pub fn submit_independent<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.submit(TaskDeps::none(), f);
    }

    /// Block until every task submitted so far has finished (the `#pragma oss taskwait`
    /// analog). A cooperative scheduling point when called from a USF thread.
    pub fn taskwait(&self) {
        self.shared.pending.wait();
    }

    /// [`TaskRuntime::taskwait`] surfacing task panics: `Err` if any task body panicked
    /// since the last call. A panicking task poisons only itself — its successors were
    /// released and the runtime keeps accepting work — so after consuming the error the
    /// runtime is usable again.
    pub fn taskwait_result(&self) -> Result<(), usf_core::UsfError> {
        self.shared.pending.wait();
        let n = self.shared.panicked.swap(0, Ordering::AcqRel);
        if n == 0 {
            return Ok(());
        }
        let first = self
            .shared
            .first_panic
            .lock()
            .take()
            .unwrap_or_else(|| "<unknown>".to_string());
        Err(usf_core::UsfError::ThreadPanicked(format!(
            "{n} task(s) panicked; first: {first}"
        )))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TaskRuntimeStats {
        let (edges, live) = {
            let st = self.shared.state.lock();
            (st.deps.stats().edges_created, st.deps.live_tasks() as u64)
        };
        TaskRuntimeStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            panicked: self.shared.panicked.load(Ordering::Relaxed),
            edges,
            live,
        }
    }

    /// Wait for outstanding tasks, stop the workers and join them. Called on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        self.shared.pending.wait();
        for _ in 0..self.workers.len() {
            let _ = self.shared.ready_tx.send(WorkItem::Stop);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TaskRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for TaskRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRuntime")
            .field("workers", &self.config.num_workers)
            .field("backend", &self.config.exec.label())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Worker: pull ready tasks, run them, release their successors.
fn worker_loop(shared: Arc<RtShared>, rx: Receiver<WorkItem>) {
    while let Ok(item) = rx.recv() {
        let (id, job) = match item {
            WorkItem::Stop => return,
            WorkItem::Run(id, job) => (id, job),
        };
        // A panicking task body poisons only itself: the completion bookkeeping below
        // must run regardless, or its successors would never release and `taskwait`
        // would hang forever on the never-`done()`d pending count.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)) {
            Ok(()) => {
                shared.executed.fetch_add(1, Ordering::Relaxed);
            }
            Err(payload) => {
                shared.panicked.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let mut first = shared.first_panic.lock();
                if first.is_none() {
                    *first = Some(msg);
                }
            }
        }
        // Release successors that became ready.
        let newly_ready: Vec<(DepTaskId, TaskFn)> = {
            let mut st = self_state(&shared);
            let ready_ids = st.deps.complete(id);
            ready_ids
                .into_iter()
                .filter_map(|rid| st.waiting_jobs.remove(&rid).map(|j| (rid, j)))
                .collect()
        };
        for (rid, rjob) in newly_ready {
            if shared.ready_tx.send(WorkItem::Run(rid, rjob)).is_err() {
                unreachable!("ready queue must outlive the runtime");
            }
        }
        shared.pending.done();
    }
}

fn self_state(shared: &RtShared) -> usf_core::sync::MutexGuard<'_, RtState> {
    shared.state.lock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taskrt::DataKey;
    use std::sync::atomic::AtomicUsize;
    use usf_core::runtime::Usf;

    #[test]
    fn independent_tasks_all_run() {
        let mut rt = TaskRuntime::with_workers(3, ExecMode::Os);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&count);
            rt.submit_independent(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.taskwait();
        assert_eq!(count.load(Ordering::SeqCst), 50);
        let stats = rt.stats();
        assert_eq!(stats.submitted, 50);
        assert_eq!(stats.executed, 50);
        rt.shutdown();
    }

    #[test]
    fn dependent_tasks_run_in_order() {
        let rt = TaskRuntime::with_workers(4, ExecMode::Os);
        let log = Arc::new(Mutex::new(Vec::<u32>::new()));
        let datum = DataKey(42);
        for step in 0..10u32 {
            let log = Arc::clone(&log);
            rt.submit(TaskDeps::none().inout(datum), move || {
                log.lock().push(step);
            });
        }
        rt.taskwait();
        assert_eq!(
            *log.lock(),
            (0..10).collect::<Vec<_>>(),
            "inout chain must serialize in submission order"
        );
    }

    #[test]
    fn readers_between_writers_see_writer_results() {
        let rt = TaskRuntime::with_workers(4, ExecMode::Os);
        let value = Arc::new(Mutex::new(0u64));
        let key = DataKey::of(&*value);
        // writer -> many readers -> writer
        {
            let v = Arc::clone(&value);
            rt.submit(TaskDeps::none().inout(key), move || *v.lock() = 7);
        }
        let observed = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..6 {
            let v = Arc::clone(&value);
            let o = Arc::clone(&observed);
            rt.submit(TaskDeps::none().input(key), move || {
                o.lock().push(*v.lock())
            });
        }
        {
            let v = Arc::clone(&value);
            rt.submit(TaskDeps::none().inout(key), move || *v.lock() = 9);
        }
        rt.taskwait();
        let obs = observed.lock().clone();
        assert_eq!(obs.len(), 6);
        assert!(
            obs.iter().all(|&x| x == 7),
            "readers must observe the first writer and precede the second: {obs:?}"
        );
        assert_eq!(*value.lock(), 9);
    }

    #[test]
    fn taskwait_then_more_tasks() {
        let rt = TaskRuntime::with_workers(2, ExecMode::Os);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            rt.submit_independent(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.taskwait();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        for _ in 0..5 {
            let c = Arc::clone(&count);
            rt.submit_independent(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        rt.taskwait();
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn usf_backend_oversubscribed_task_graph() {
        // 2 virtual cores, 4 workers, a diamond-shaped dependency graph repeated many times.
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("taskrt-test");
        let rt = TaskRuntime::with_workers(4, ExecMode::Usf(p));
        let count = Arc::new(AtomicUsize::new(0));
        for block in 0..8u64 {
            let top = DataKey(1000 + block);
            let left = DataKey(2000 + block);
            let right = DataKey(3000 + block);
            let c = Arc::clone(&count);
            rt.submit(TaskDeps::none().inout(top), move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            for side in [left, right] {
                let c = Arc::clone(&count);
                rt.submit(TaskDeps::none().input(top).inout(side), move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            let c = Arc::clone(&count);
            rt.submit(
                TaskDeps::none().input(left).input(right).inout(top),
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                },
            );
        }
        rt.taskwait();
        assert_eq!(count.load(Ordering::SeqCst), 8 * 4);
        let stats = rt.stats();
        assert_eq!(stats.executed, 32);
        assert_eq!(stats.submitted, 32);
        drop(rt);
        usf.shutdown();
    }

    #[test]
    fn stats_report_counts() {
        let rt = TaskRuntime::with_workers(1, ExecMode::Os);
        let k = DataKey(1);
        rt.submit(TaskDeps::none().inout(k), || {});
        rt.submit(TaskDeps::none().inout(k), || {});
        rt.taskwait();
        let stats = rt.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.live, 0);
        // The write-after-write edge exists only if the second task was registered before
        // the first finished, so it can legitimately be 0 or 1.
        assert!(stats.edges <= 1);
    }

    #[test]
    fn panicking_task_surfaces_err_and_spares_the_rest() {
        let rt = TaskRuntime::with_workers(2, ExecMode::Os);
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let c = Arc::clone(&count);
            rt.submit_independent(move || {
                if i == 3 {
                    panic!("poisoned unit");
                }
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let err = rt.taskwait_result().unwrap_err();
        assert!(
            matches!(&err, usf_core::UsfError::ThreadPanicked(m) if m.contains("poisoned unit")),
            "got {err:?}"
        );
        assert_eq!(count.load(Ordering::SeqCst), 9, "other units complete");
        // The error was consumed: a later wave is healthy again.
        let c = Arc::clone(&count);
        rt.submit_independent(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        rt.taskwait_result().unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicking_task_still_releases_its_successors() {
        // A dependency chain through a panicking middle task: without the completion
        // bookkeeping running on the panic path, the tail would never become ready and
        // taskwait would hang.
        let rt = TaskRuntime::with_workers(2, ExecMode::Os);
        let k = DataKey(7);
        let log = Arc::new(Mutex::new(Vec::<&str>::new()));
        {
            let log = Arc::clone(&log);
            rt.submit(TaskDeps::none().inout(k), move || log.lock().push("head"));
        }
        rt.submit(TaskDeps::none().inout(k), || panic!("middle dies"));
        {
            let log = Arc::clone(&log);
            rt.submit(TaskDeps::none().inout(k), move || log.lock().push("tail"));
        }
        assert!(rt.taskwait_result().is_err());
        assert_eq!(*log.lock(), vec!["head", "tail"]);
        let stats = rt.stats();
        assert_eq!(stats.executed, 2);
        assert_eq!(
            stats.live, 0,
            "the panicked task was retired from the graph"
        );
    }

    #[test]
    #[should_panic]
    fn submit_after_shutdown_panics() {
        let mut rt = TaskRuntime::with_workers(1, ExecMode::Os);
        rt.shutdown();
        rt.submit_independent(|| {});
    }
}
