//! `usf-runtimes` — the parallel runtime substrates used by the paper's evaluation.
//!
//! The paper studies *runtime composition*: an application blocks its work with an **outer**
//! runtime (OmpSs-2/Nanos6 tasks, GNU or LLVM OpenMP, oneTBB) and each block calls a BLAS
//! kernel parallelized by an **inner** runtime (an OpenMP team or a pthread pool). Nesting
//! the two multiplies the thread count and oversubscribes the node (§5.1, §5.3, §5.4).
//!
//! This crate provides from-scratch Rust equivalents of those substrates, all written
//! against the USF primitives so the very same code runs under the plain OS scheduler
//! ([`usf_core::ExecMode::Os`], the baseline) or under SCHED_COOP
//! ([`usf_core::ExecMode::Usf`]):
//!
//! * [`taskrt::TaskRuntime`] — an OmpSs-like task runtime: tasks with `in`/`inout` data
//!   dependencies, a ready queue served by a worker team, and `taskwait`.
//! * [`forkjoin::Team`] — an OpenMP-like fork-join runtime: a persistent worker team,
//!   `parallel` regions, `parallel_for` with static/dynamic/guided schedules, team barriers
//!   and the OMP_WAIT_POLICY-style [`WaitPolicy`] knob (§5.2).
//! * [`threadpool::TransientPool`] — a pthreadpool/BLIS-"pth"-style pool that creates and
//!   destroys threads at every call, the pattern whose cost the USF thread cache removes
//!   (Table 2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod forkjoin;
pub mod taskrt;
pub mod threadpool;
pub mod waitpolicy;

pub use forkjoin::{LoopSchedule, RegionCtx, Team, TeamConfig};
pub use taskrt::{DataKey, TaskDeps, TaskRuntime, TaskRuntimeConfig};
pub use threadpool::TransientPool;
pub use waitpolicy::WaitPolicy;
