//! The persistent worker team (OpenMP-like fork-join execution).

use super::schedule::{IterationDispenser, LoopSchedule};
use crate::waitpolicy::WaitPolicy;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use usf_core::exec::{ExecJoinHandle, ExecMode};
use usf_core::sync::{Barrier, Condvar, Mutex, WaitGroup};
use usf_core::timing::yield_now;

/// Configuration of a fork-join [`Team`].
#[derive(Clone, Debug)]
pub struct TeamConfig {
    /// Team size, including the calling ("master") thread.
    pub num_threads: usize,
    /// How idle workers wait for the next parallel region.
    pub wait_policy: WaitPolicy,
    /// Thread backend: plain OS threads (baseline) or USF cooperative threads (SCHED_COOP).
    pub exec: ExecMode,
    /// Name prefix for worker threads (diagnostics).
    pub name: String,
}

impl TeamConfig {
    /// A team of `num_threads` with the passive wait policy.
    pub fn new(num_threads: usize, exec: ExecMode) -> Self {
        TeamConfig {
            num_threads,
            wait_policy: WaitPolicy::Passive,
            exec,
            name: "fj-team".to_string(),
        }
    }

    /// Set the wait policy.
    pub fn wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.wait_policy = policy;
        self
    }

    /// Set the worker-name prefix.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// Per-thread context passed to parallel-region closures.
pub struct RegionCtx<'a> {
    thread_num: usize,
    num_threads: usize,
    barrier: &'a Barrier,
}

impl RegionCtx<'_> {
    /// The calling thread's index within the region (`0` is the master).
    pub fn thread_num(&self) -> usize {
        self.thread_num
    }

    /// Number of threads participating in the region.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Block at the team barrier until every participant of this region arrives.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Type-erased pointer to the current region's closure. The pointer is only dereferenced by
/// workers participating in the region, all of which finish before `Team::parallel` returns,
/// so the pointee (which lives on the master's stack) is always alive when called.
#[derive(Clone, Copy)]
struct RegionFnPtr(*const (dyn Fn(&RegionCtx<'_>) + Sync));

// Safety: the pointee is `Sync` (shared calls are fine) and the lifetime discipline above
// guarantees validity whenever the pointer is dereferenced.
unsafe impl Send for RegionFnPtr {}
unsafe impl Sync for RegionFnPtr {}

/// Snapshot of the published parallel region that a worker grabs under the state lock.
#[derive(Clone)]
struct Region {
    epoch: u64,
    f: RegionFnPtr,
    barrier: Arc<Barrier>,
    done: Arc<WaitGroup>,
    active: usize,
}

struct TeamShared {
    /// Current region (replaced at each `parallel` call).
    state: Mutex<Option<Region>>,
    cv: Condvar,
    /// Region counter, readable without the lock for active waiters.
    epoch: AtomicU64,
    shutdown: AtomicBool,
    /// Total parallel regions executed (diagnostics).
    regions: AtomicU64,
    /// Worker region-body panics caught so far (the worker and the team survive).
    panics: AtomicU64,
    /// Message of the first caught worker panic, reported by the next region close.
    first_panic: Mutex<Option<String>>,
}

/// A persistent fork-join worker team. See the module documentation.
pub struct Team {
    config: TeamConfig,
    shared: Arc<TeamShared>,
    workers: Vec<ExecJoinHandle<()>>,
    /// Serializes `parallel` calls from different threads on the same team.
    region_lock: Mutex<()>,
}

impl Team {
    /// Create a team: `config.num_threads - 1` workers are spawned immediately (the caller
    /// acts as thread 0 of every region).
    pub fn new(config: TeamConfig) -> Self {
        let shared = Arc::new(TeamShared {
            state: Mutex::new(None),
            cv: Condvar::new(),
            epoch: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            regions: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            first_panic: Mutex::new(None),
        });
        let mut workers = Vec::new();
        for i in 1..config.num_threads.max(1) {
            let shared = Arc::clone(&shared);
            let policy = config.wait_policy;
            let name = format!("{}-{i}", config.name);
            workers.push(
                config
                    .exec
                    .spawn_named(name, move || worker_loop(shared, i, policy)),
            );
        }
        Team {
            config,
            shared,
            workers,
            region_lock: Mutex::new(()),
        }
    }

    /// Convenience constructor with the default (passive) wait policy.
    pub fn with_threads(num_threads: usize, exec: ExecMode) -> Self {
        Team::new(TeamConfig::new(num_threads, exec))
    }

    /// Team size (including the master).
    pub fn size(&self) -> usize {
        self.config.num_threads.max(1)
    }

    /// The team configuration.
    pub fn config(&self) -> &TeamConfig {
        &self.config
    }

    /// Number of parallel regions executed so far.
    pub fn regions_executed(&self) -> u64 {
        self.shared.regions.load(Ordering::Relaxed)
    }

    /// Run `f` on `active` threads of the team (capped to the team size). The calling thread
    /// participates as thread 0; the call returns when every participant has finished.
    ///
    /// A panic in any participant's `f` is caught, the region still closes (every
    /// participant is waited for — the scoped-borrow guarantee holds even on the panic
    /// path), and the panic is then re-raised on the calling thread. The team itself
    /// survives and can run further regions. Use [`Team::try_parallel`] for the
    /// non-panicking `Result` form. (A participant that panics *while others are parked
    /// at a region barrier* still deadlocks that barrier — panics cannot release
    /// co-participants the closure explicitly synchronized.)
    pub fn parallel<F>(&self, active: usize, f: F)
    where
        F: Fn(&RegionCtx<'_>) + Sync,
    {
        let (master, worker_panics) = self.run_region(active, f);
        if let Err(payload) = master {
            std::panic::resume_unwind(payload);
        }
        if worker_panics > 0 {
            let first = self.take_first_panic();
            panic!("{worker_panics} worker(s) panicked in parallel region; first: {first}");
        }
    }

    /// [`Team::parallel`], but panics in the region body (master's or any worker's) are
    /// reported as `Err` instead of re-raised.
    pub fn try_parallel<F>(&self, active: usize, f: F) -> Result<(), usf_core::UsfError>
    where
        F: Fn(&RegionCtx<'_>) + Sync,
    {
        let (master, worker_panics) = self.run_region(active, f);
        if let Err(payload) = master {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            return Err(usf_core::UsfError::ThreadPanicked(msg));
        }
        if worker_panics > 0 {
            let first = self.take_first_panic();
            return Err(usf_core::UsfError::ThreadPanicked(format!(
                "{worker_panics} worker(s) panicked in parallel region; first: {first}"
            )));
        }
        Ok(())
    }

    /// Total region-body panics caught in this team's workers (diagnostics).
    pub fn panics_caught(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    fn take_first_panic(&self) -> String {
        self.shared
            .first_panic
            .lock()
            .take()
            .unwrap_or_else(|| "<unknown>".to_string())
    }

    /// Publish and fully execute one region. Returns the master's own outcome and how
    /// many workers panicked inside this region. The region is ALWAYS closed before
    /// returning — `done.wait()` runs even when the master's `f` panics, because the
    /// erased closure pointer must not outlive the frame that owns `f`.
    fn run_region<F>(&self, active: usize, f: F) -> (Result<(), Box<dyn std::any::Any + Send>>, u64)
    where
        F: Fn(&RegionCtx<'_>) + Sync,
    {
        let active = active.clamp(1, self.size());
        let _serial = self.region_lock.lock();
        let panics_before = self.shared.panics.load(Ordering::Relaxed);
        let barrier = Arc::new(Barrier::new(active));
        let done = Arc::new(WaitGroup::with_count(active.saturating_sub(1)));
        // Erase the closure's lifetime: workers only dereference the pointer before calling
        // `done.done()`, and this function does not return (or drop `f`) until `done.wait()`
        // has observed every participant, so the pointee outlives every dereference.
        let f_borrow: &(dyn Fn(&RegionCtx<'_>) + Sync) = &f;
        let f_erased: &'static (dyn Fn(&RegionCtx<'_>) + Sync) = unsafe {
            std::mem::transmute::<
                &(dyn Fn(&RegionCtx<'_>) + Sync),
                &'static (dyn Fn(&RegionCtx<'_>) + Sync),
            >(f_borrow)
        };
        let fptr = RegionFnPtr(f_erased as *const _);
        let epoch = self.shared.epoch.load(Ordering::Relaxed) + 1;
        {
            let mut st = self.shared.state.lock();
            *st = Some(Region {
                epoch,
                f: fptr,
                barrier: Arc::clone(&barrier),
                done: Arc::clone(&done),
                active,
            });
            self.shared.epoch.store(epoch, Ordering::Release);
            self.shared.cv.notify_all();
        }
        // The master is thread 0 of the region.
        let ctx = RegionCtx {
            thread_num: 0,
            num_threads: active,
            barrier: &barrier,
        };
        let master = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&ctx)));
        // Wait for the other participants; only then may `f` (on our stack) be dropped.
        done.wait();
        self.shared.regions.fetch_add(1, Ordering::Relaxed);
        // Drop the published region so the closure pointer does not outlive this call.
        *self.shared.state.lock() = None;
        let worker_panics = self.shared.panics.load(Ordering::Relaxed) - panics_before;
        (master, worker_panics)
    }

    /// Distribute `range` over the team with the given schedule; `f` is called once per
    /// index. Equivalent to `#pragma omp parallel for schedule(...)`.
    pub fn parallel_for<F>(&self, range: Range<usize>, schedule: LoopSchedule, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = range.start;
        let len = range.end.saturating_sub(range.start);
        if len == 0 {
            return;
        }
        let nthreads = self.size();
        let dispenser = IterationDispenser::new(len, nthreads, schedule);
        self.parallel(nthreads, |ctx| {
            let mut taken = 0;
            while let Some((s, e)) = dispenser.next_chunk(ctx.thread_num(), taken) {
                for i in s..e {
                    f(start + i);
                }
                taken += 1;
            }
        });
    }

    /// Shut the team down and join its workers. Called automatically on drop.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let _st = self.shared.state.lock();
            self.shared.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Team {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Team")
            .field("threads", &self.size())
            .field("wait_policy", &self.config.wait_policy)
            .field("backend", &self.config.exec.label())
            .finish()
    }
}

/// Grab the published region if it is newer than `seen`.
fn try_take_region(shared: &TeamShared, seen: u64) -> Option<Region> {
    let st = shared.state.lock();
    match &*st {
        Some(r) if r.epoch > seen => Some(r.clone()),
        _ => None,
    }
}

/// Worker side: wait for regions according to the wait policy and execute them.
fn worker_loop(shared: Arc<TeamShared>, index: usize, policy: WaitPolicy) {
    let mut seen = 0u64;
    loop {
        let region = match wait_for_region(&shared, seen, policy) {
            Some(r) => r,
            None => return, // shutdown
        };
        seen = region.epoch;
        if index < region.active {
            let ctx = RegionCtx {
                thread_num: index,
                num_threads: region.active,
                barrier: &region.barrier,
            };
            // Safety: see `RegionFnPtr` — the master does not return from `parallel` (and
            // therefore does not drop the closure) until we call `done.done()` below.
            // A panicking region body must be caught HERE: `done.done()` has to run no
            // matter what, or the master waits forever on a participant that is gone.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (&*region.f.0)(&ctx)
            }));
            if let Err(payload) = outcome {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                shared.panics.fetch_add(1, Ordering::Relaxed);
                let mut first = shared.first_panic.lock();
                if first.is_none() {
                    *first = Some(msg);
                }
            }
            region.done.done();
        }
    }
}

/// Wait until a region newer than `seen` is published (returns it) or shutdown (returns
/// `None`), honouring the wait policy.
fn wait_for_region(shared: &TeamShared, seen: u64, policy: WaitPolicy) -> Option<Region> {
    // Fast path.
    if shared.shutdown.load(Ordering::Acquire) {
        return None;
    }
    if let Some(r) = try_take_region(shared, seen) {
        return Some(r);
    }
    match policy {
        WaitPolicy::Active { yield_every } => {
            let mut spins: u32 = 0;
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                if shared.epoch.load(Ordering::Acquire) > seen {
                    if let Some(r) = try_take_region(shared, seen) {
                        return Some(r);
                    }
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if let Some(k) = yield_every {
                    if k > 0 && spins % k == 0 {
                        yield_now();
                    }
                }
            }
        }
        WaitPolicy::Hybrid { spin, yield_every } => {
            let deadline = Instant::now() + spin;
            let mut spins: u32 = 0;
            while Instant::now() < deadline {
                if shared.shutdown.load(Ordering::Acquire) {
                    return None;
                }
                if shared.epoch.load(Ordering::Acquire) > seen {
                    if let Some(r) = try_take_region(shared, seen) {
                        return Some(r);
                    }
                }
                std::hint::spin_loop();
                spins = spins.wrapping_add(1);
                if let Some(k) = yield_every {
                    if k > 0 && spins % k == 0 {
                        yield_now();
                    }
                }
            }
            passive_wait(shared, seen)
        }
        WaitPolicy::Passive => passive_wait(shared, seen),
    }
}

/// Block on the team condition variable until a newer region or shutdown.
fn passive_wait(shared: &TeamShared, seen: u64) -> Option<Region> {
    let mut st = shared.state.lock();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if let Some(r) = &*st {
            if r.epoch > seen {
                return Some(r.clone());
            }
        }
        st = shared.cv.wait(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use usf_core::runtime::Usf;

    fn assert_team_basics(exec: ExecMode, wait: WaitPolicy) {
        let team = Team::new(TeamConfig::new(4, exec).wait_policy(wait));
        let counter = AtomicUsize::new(0);
        let max_tid = AtomicUsize::new(0);
        team.parallel(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            max_tid.fetch_max(ctx.thread_num(), Ordering::SeqCst);
            assert_eq!(ctx.num_threads(), 4);
            ctx.barrier();
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
        assert_eq!(max_tid.load(Ordering::SeqCst), 3);
        assert_eq!(team.regions_executed(), 1);
    }

    #[test]
    fn os_team_runs_region_on_all_threads() {
        assert_team_basics(ExecMode::Os, WaitPolicy::Passive);
    }

    #[test]
    fn os_team_with_hybrid_wait() {
        assert_team_basics(ExecMode::Os, WaitPolicy::hybrid_default());
    }

    #[test]
    fn os_team_with_active_yielding_wait() {
        assert_team_basics(ExecMode::Os, WaitPolicy::active_yielding());
    }

    #[test]
    fn usf_team_runs_region_on_all_threads() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("team-test");
        assert_team_basics(ExecMode::Usf(p), WaitPolicy::Passive);
        usf.shutdown();
    }

    #[test]
    fn parallel_for_sums_correctly_all_schedules() {
        let team = Team::with_threads(3, ExecMode::Os);
        for schedule in [
            LoopSchedule::Static { chunk: 0 },
            LoopSchedule::Static { chunk: 5 },
            LoopSchedule::Dynamic { chunk: 3 },
            LoopSchedule::Guided { min_chunk: 2 },
        ] {
            let sum = AtomicUsize::new(0);
            team.parallel_for(0..1000, schedule, |i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                (0..1000).sum::<usize>(),
                "schedule {schedule:?}"
            );
        }
    }

    #[test]
    fn parallel_with_fewer_active_threads() {
        let team = Team::with_threads(4, ExecMode::Os);
        let count = AtomicUsize::new(0);
        team.parallel(2, |ctx| {
            assert!(ctx.thread_num() < 2);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn regions_are_reusable_and_sequential() {
        let team = Team::with_threads(3, ExecMode::Os);
        let total = AtomicUsize::new(0);
        for _ in 0..10 {
            team.parallel(3, |_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 30);
        assert_eq!(team.regions_executed(), 10);
    }

    #[test]
    fn single_thread_team_degenerates_to_serial() {
        let team = Team::with_threads(1, ExecMode::Os);
        let count = AtomicUsize::new(0);
        team.parallel(1, |ctx| {
            assert_eq!(ctx.num_threads(), 1);
            ctx.barrier();
            count.fetch_add(1, Ordering::SeqCst);
        });
        team.parallel_for(0..10, LoopSchedule::default(), |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn nested_teams_usf_oversubscribed() {
        // Outer team of 2, each member creating an inner team of 2, on a 2-core USF
        // instance: 4+ threads on 2 cores, the composition the paper studies.
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("nested");
        let outer = Team::with_threads(2, ExecMode::Usf(p.clone()));
        let total = Arc::new(AtomicUsize::new(0));
        let total2 = Arc::clone(&total);
        let p_inner = p.clone();
        outer.parallel(2, move |_octx| {
            let inner = Team::with_threads(2, ExecMode::Usf(p_inner.clone()));
            let t = Arc::clone(&total2);
            inner.parallel(2, move |_ictx| {
                t.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 4);
        drop(outer);
        usf.shutdown();
    }

    #[test]
    fn worker_panic_surfaces_as_err_and_team_survives() {
        let team = Team::with_threads(4, ExecMode::Os);
        let err = team
            .try_parallel(4, |ctx| {
                if ctx.thread_num() == 2 {
                    panic!("worker 2 dies");
                }
            })
            .unwrap_err();
        assert!(
            matches!(&err, usf_core::UsfError::ThreadPanicked(m) if m.contains("worker 2 dies")),
            "got {err:?}"
        );
        assert_eq!(team.panics_caught(), 1);
        // The team is intact: the next region runs on every thread again.
        let count = AtomicUsize::new(0);
        team.parallel(4, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn master_panic_still_closes_the_region() {
        // The master's own closure panicking must not skip `done.wait()` (the workers
        // still hold the type-erased pointer into the master's frame) and must not
        // poison the team.
        let team = Team::with_threads(3, ExecMode::Os);
        let workers_ran = AtomicUsize::new(0);
        let raised = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.parallel(3, |ctx| {
                if ctx.thread_num() == 0 {
                    panic!("master dies");
                }
                workers_ran.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(raised.is_err(), "master panic re-raises on the caller");
        assert_eq!(workers_ran.load(Ordering::SeqCst), 2);
        let count = AtomicUsize::new(0);
        team.parallel(3, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn usf_backend_worker_panic_surfaces_as_err() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("team-panic");
        let team = Team::with_threads(3, ExecMode::Usf(p));
        let survivors = AtomicUsize::new(0);
        let err = team
            .try_parallel(3, |ctx| {
                if ctx.thread_num() == 1 {
                    panic!("cooperative worker dies");
                }
                survivors.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        assert!(matches!(err, usf_core::UsfError::ThreadPanicked(_)));
        assert_eq!(survivors.load(Ordering::SeqCst), 2, "other units complete");
        drop(team);
        usf.shutdown();
    }

    #[test]
    fn borrows_local_data_without_arc() {
        let team = Team::with_threads(3, ExecMode::Os);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        // The closure borrows `data` from the caller's stack — the scoped-region guarantee.
        team.parallel(3, |ctx| {
            let part: u64 = data.iter().skip(ctx.thread_num()).step_by(3).sum();
            sum.fetch_add(part as usize, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst) as u64, data.iter().sum::<u64>());
    }
}
