//! OpenMP-like fork-join runtime.
//!
//! A [`Team`] owns a persistent set of worker threads (created once, reused by every
//! parallel region — like an OpenMP thread team). [`Team::parallel`] runs a closure on every
//! team member; [`Team::parallel_for`] distributes an index range with a static, dynamic or
//! guided [`LoopSchedule`]; [`RegionCtx::barrier`] is the team barrier. Idle workers wait
//! for the next region according to the configured [`WaitPolicy`](crate::WaitPolicy), which is exactly the
//! OMP_WAIT_POLICY discussion of §5.2: active waiting wastes the core that another
//! oversubscribed runtime needs.

mod schedule;
mod team;

pub use schedule::LoopSchedule;
pub use team::{RegionCtx, Team, TeamConfig};
