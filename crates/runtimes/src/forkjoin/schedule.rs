//! Loop iteration schedules for [`super::Team::parallel_for`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// How `parallel_for` iterations are distributed over the team.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopSchedule {
    /// Contiguous blocks of `chunk` iterations assigned round-robin at region start
    /// (`schedule(static, chunk)`); `chunk = 0` means one block per thread.
    Static {
        /// Chunk size (0 = range divided evenly into one block per thread).
        chunk: usize,
    },
    /// Chunks of `chunk` iterations claimed on demand from a shared counter
    /// (`schedule(dynamic, chunk)`).
    Dynamic {
        /// Chunk size (minimum 1).
        chunk: usize,
    },
    /// Exponentially decreasing chunks: each claim takes `remaining / (2 * nthreads)`,
    /// bounded below by `min_chunk` (`schedule(guided)`).
    Guided {
        /// Minimum chunk size (minimum 1).
        min_chunk: usize,
    },
}

impl Default for LoopSchedule {
    fn default() -> Self {
        LoopSchedule::Static { chunk: 0 }
    }
}

impl LoopSchedule {
    /// Short label for benchmark tables.
    pub fn label(&self) -> &'static str {
        match self {
            LoopSchedule::Static { .. } => "static",
            LoopSchedule::Dynamic { .. } => "dynamic",
            LoopSchedule::Guided { .. } => "guided",
        }
    }
}

/// Shared iteration dispenser for one `parallel_for` region.
#[derive(Debug)]
pub(crate) struct IterationDispenser {
    len: usize,
    nthreads: usize,
    schedule: LoopSchedule,
    next: AtomicUsize,
}

impl IterationDispenser {
    pub(crate) fn new(len: usize, nthreads: usize, schedule: LoopSchedule) -> Self {
        IterationDispenser {
            len,
            nthreads: nthreads.max(1),
            schedule,
            next: AtomicUsize::new(0),
        }
    }

    /// The chunks a given thread should execute, as an iterator of `(start, end)` pairs.
    /// Static schedules compute chunks locally; dynamic/guided schedules pull from the
    /// shared counter, so this must be called repeatedly (returns `None` when exhausted).
    pub(crate) fn next_chunk(
        &self,
        thread_num: usize,
        already_taken: usize,
    ) -> Option<(usize, usize)> {
        match self.schedule {
            LoopSchedule::Static { chunk } => {
                let chunk = if chunk == 0 {
                    self.len.div_ceil(self.nthreads).max(1)
                } else {
                    chunk
                };
                // The k-th chunk of this thread is (thread_num + k * nthreads) * chunk.
                let k = already_taken;
                let idx = thread_num + k * self.nthreads;
                let start = idx.checked_mul(chunk)?;
                if start >= self.len {
                    return None;
                }
                Some((start, (start + chunk).min(self.len)))
            }
            LoopSchedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                let start = self.next.fetch_add(chunk, Ordering::Relaxed);
                if start >= self.len {
                    return None;
                }
                Some((start, (start + chunk).min(self.len)))
            }
            LoopSchedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                loop {
                    let current = self.next.load(Ordering::Relaxed);
                    if current >= self.len {
                        return None;
                    }
                    let remaining = self.len - current;
                    let chunk = (remaining / (2 * self.nthreads))
                        .max(min_chunk)
                        .min(remaining);
                    if self
                        .next
                        .compare_exchange(
                            current,
                            current + chunk,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        )
                        .is_ok()
                    {
                        return Some((current, current + chunk));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn collect_all(d: &IterationDispenser, nthreads: usize) -> Vec<(usize, usize)> {
        let mut chunks = Vec::new();
        for t in 0..nthreads {
            let mut taken = 0;
            while let Some(c) = d.next_chunk(t, taken) {
                chunks.push(c);
                taken += 1;
            }
        }
        chunks
    }

    fn covers_exactly(chunks: &[(usize, usize)], len: usize) -> bool {
        let mut seen = HashSet::new();
        for &(s, e) in chunks {
            for i in s..e {
                if !seen.insert(i) {
                    return false; // duplicate
                }
            }
        }
        seen.len() == len
    }

    #[test]
    fn static_schedule_covers_range_exactly() {
        for (len, nt, chunk) in [
            (100, 4, 0),
            (100, 4, 7),
            (5, 8, 0),
            (5, 8, 2),
            (0, 3, 0),
            (64, 1, 16),
        ] {
            let d = IterationDispenser::new(len, nt, LoopSchedule::Static { chunk });
            let chunks = collect_all(&d, nt);
            assert!(
                covers_exactly(&chunks, len),
                "static len={len} nt={nt} chunk={chunk}"
            );
        }
    }

    #[test]
    fn dynamic_schedule_covers_range_exactly() {
        // Dynamic pulls from a shared counter, so collecting sequentially still covers all.
        for (len, nt, chunk) in [(100, 4, 3), (7, 2, 10), (0, 2, 1), (33, 5, 1)] {
            let d = IterationDispenser::new(len, nt, LoopSchedule::Dynamic { chunk });
            let chunks = collect_all(&d, nt);
            assert!(
                covers_exactly(&chunks, len),
                "dynamic len={len} nt={nt} chunk={chunk}"
            );
        }
    }

    #[test]
    fn guided_schedule_covers_range_and_shrinks() {
        let len = 1000;
        let d = IterationDispenser::new(len, 4, LoopSchedule::Guided { min_chunk: 4 });
        let chunks = collect_all(&d, 4);
        assert!(covers_exactly(&chunks, len));
        // First chunk should be the largest.
        let first = chunks[0].1 - chunks[0].0;
        let last = chunks.last().unwrap().1 - chunks.last().unwrap().0;
        assert!(first >= last);
    }

    #[test]
    fn labels() {
        assert_eq!(LoopSchedule::default().label(), "static");
        assert_eq!(LoopSchedule::Dynamic { chunk: 1 }.label(), "dynamic");
        assert_eq!(LoopSchedule::Guided { min_chunk: 1 }.label(), "guided");
    }
}
