//! Transient (spawn-per-call) thread pool.
//!
//! Some inner runtimes do not keep a persistent worker pool: the BLIS pthread backend
//! ("pth" in Table 2) and PyTorch's pthreadpool create a fresh set of threads for every
//! parallel kernel and destroy them when it finishes. Under the baseline OS scheduler this
//! pattern pays thread creation/destruction and wake-up costs on every call; under USF the
//! thread cache (§4.3.1) absorbs most of it — which is exactly why the "pth" rows of Table 2
//! show the largest SCHED_COOP speedups.

use std::sync::atomic::{AtomicU64, Ordering};
use usf_core::exec::ExecMode;

/// A pool that spawns `n` threads per call and joins them before returning.
#[derive(Debug, Clone)]
pub struct TransientPool {
    exec: ExecMode,
    calls: std::sync::Arc<AtomicU64>,
    threads_spawned: std::sync::Arc<AtomicU64>,
}

impl TransientPool {
    /// Create a pool using the given thread backend.
    pub fn new(exec: ExecMode) -> Self {
        TransientPool {
            exec,
            calls: std::sync::Arc::new(AtomicU64::new(0)),
            threads_spawned: std::sync::Arc::new(AtomicU64::new(0)),
        }
    }

    /// The thread backend in use.
    pub fn exec(&self) -> &ExecMode {
        &self.exec
    }

    /// Number of `run` calls performed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total threads spawned across all calls.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Run `f(0..n)` on `n` freshly spawned threads (the calling thread does not
    /// participate) and join them all before returning.
    ///
    /// A panicking worker is re-raised on the caller — but only after EVERY worker has
    /// been joined, so the remaining units always complete and no spawned thread can
    /// outlive `f`'s stack frame. Use [`TransientPool::try_run`] for the `Result` form.
    pub fn run<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if let Err(payload) = self.run_inner(n, f) {
            std::panic::resume_unwind(payload);
        }
    }

    /// [`TransientPool::run`], but a worker panic is reported as `Err` instead of
    /// re-raised (the first panic wins; every worker is joined either way).
    pub fn try_run<F>(&self, n: usize, f: F) -> Result<(), usf_core::UsfError>
    where
        F: Fn(usize) + Send + Sync,
    {
        self.run_inner(n, f).map_err(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            usf_core::UsfError::ThreadPanicked(msg)
        })
    }

    fn run_inner<F>(&self, n: usize, f: F) -> Result<(), Box<dyn std::any::Any + Send>>
    where
        F: Fn(usize) + Send + Sync,
    {
        if n == 0 {
            return Ok(());
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.threads_spawned.fetch_add(n as u64, Ordering::Relaxed);
        // Threads created per call must not outlive `f`, which lives on this stack frame; we
        // join every handle before returning, so erasing the lifetime is sound (same
        // discipline as `Team::parallel`). That is also why a panicking worker must NOT
        // short-circuit the join loop: bailing on the first `Err` would drop the
        // remaining handles while their threads still hold the erased pointer.
        let f_ref: &(dyn Fn(usize) + Send + Sync) = &f;
        let f_static: &'static (dyn Fn(usize) + Send + Sync) =
            unsafe { std::mem::transmute(f_ref) };
        let handles: Vec<_> = (0..n)
            .map(|i| {
                self.exec
                    .spawn_named(format!("transient-{i}"), move || f_static(i))
            })
            .collect();
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
        match first_panic {
            Some(payload) => Err(payload),
            None => Ok(()),
        }
    }

    /// Run `f` over `0..len` split into `n` contiguous chunks, one per spawned thread.
    pub fn run_chunked<F>(&self, n: usize, len: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Send + Sync,
    {
        if len == 0 || n == 0 {
            return;
        }
        let n = n.min(len);
        let chunk = len.div_ceil(n);
        self.run(n, |i| {
            let start = i * chunk;
            let end = ((i + 1) * chunk).min(len);
            if start < end {
                f(start..end);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;
    use usf_core::runtime::Usf;

    #[test]
    fn run_spawns_exactly_n_threads() {
        let pool = TransientPool::new(ExecMode::Os);
        let count = AtomicUsize::new(0);
        pool.run(4, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
        assert_eq!(pool.calls(), 1);
        assert_eq!(pool.threads_spawned(), 4);
        pool.run(0, |_| panic!("must not run"));
        assert_eq!(pool.calls(), 1);
    }

    #[test]
    fn run_chunked_covers_range() {
        let pool = TransientPool::new(ExecMode::Os);
        let len = 103;
        let seen = Arc::new((0..len).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>());
        pool.run_chunked(4, len, |range| {
            for i in range {
                seen[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn usf_backend_reuses_threads_via_cache() {
        let usf = Usf::builder().cores(2).cache_capacity(16).build();
        let p = usf.process("transient-test");
        let pool = TransientPool::new(ExecMode::Usf(p));
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            pool.run(3, move |_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            // Let finished workers park in the cache before the next burst.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(count.load(Ordering::SeqCst), 15);
        let stats = usf.thread_cache_stats();
        assert_eq!(stats.created + stats.reused, 15);
        assert!(
            stats.reused > 0,
            "repeated transient-pool calls must reuse cached threads (the Table 2 effect): {stats:?}"
        );
        usf.shutdown();
    }

    #[test]
    fn worker_panic_joins_everyone_before_surfacing() {
        let pool = TransientPool::new(ExecMode::Os);
        let survivors = AtomicUsize::new(0);
        let err = pool
            .try_run(4, |i| {
                if i == 0 {
                    panic!("unit 0 dies");
                }
                // Give the panicking unit a head start so an early-bail join would
                // observe its Err before these units finish.
                std::thread::sleep(std::time::Duration::from_millis(20));
                survivors.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        assert!(
            matches!(&err, usf_core::UsfError::ThreadPanicked(m) if m.contains("unit 0 dies")),
            "got {err:?}"
        );
        assert_eq!(
            survivors.load(Ordering::SeqCst),
            3,
            "remaining units complete before the panic surfaces"
        );
        // The pool is stateless across calls: the next run is healthy.
        let count = AtomicUsize::new(0);
        pool.run(2, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn usf_backend_worker_panic_surfaces_as_err() {
        let usf = Usf::builder().cores(2).build();
        let p = usf.process("transient-panic");
        let pool = TransientPool::new(ExecMode::Usf(p));
        let survivors = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&survivors);
        let err = pool
            .try_run(3, move |i| {
                if i == 1 {
                    panic!("cooperative unit dies");
                }
                s.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        assert!(matches!(err, usf_core::UsfError::ThreadPanicked(_)));
        assert_eq!(survivors.load(Ordering::SeqCst), 2);
        usf.shutdown();
    }

    #[test]
    fn borrows_caller_data() {
        let pool = TransientPool::new(ExecMode::Os);
        let data: Vec<usize> = (0..32).collect();
        let sum = AtomicUsize::new(0);
        pool.run(4, |i| {
            let part: usize = data.iter().skip(i).step_by(4).sum();
            sum.fetch_add(part, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), data.iter().sum::<usize>());
    }
}
